//! A minimal JSON value type, parser, and writer.
//!
//! The serving tier speaks length-prefixed JSON frames, and the build
//! environment has no crates.io access (see the workspace manifest's
//! vendored-deps note), so this is the API subset the wire protocol
//! needs and nothing more: the six JSON value kinds, a recursive-descent
//! parser with a depth bound, and a writer with full string escaping.
//! Objects keep insertion order (a `Vec` of pairs, not a map) so encoded
//! frames are byte-stable — the protocol goldens depend on that.
//!
//! Numbers are `f64`, which is exact for every counter the protocol
//! carries up to 2^53; the writer renders integral values without a
//! fractional part so `u64` counters round-trip textually.

use std::fmt;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting deeper than this is rejected — the parser recurses, and a
/// frame of `[[[[…` must not overflow the server's stack.
const MAX_DEPTH: u32 = 64;

impl Json {
    /// An integer-valued number (exact up to 2^53).
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The field of an object, if this is an object that has it.
    pub fn get(&self, field: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == field).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a
    /// number that is one (rejects fractions, negatives, and values
    /// beyond 2^53 where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        ((0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0).then_some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialization (no whitespace); `to_string()` is the encoder
/// the wire protocol uses.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; the protocol never produces them, but
        // degrade to null rather than emitting an unparseable token.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value from `src`, requiring nothing but whitespace
/// after it.
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first problem.
pub fn parse_json(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `uXXXX` part of a unicode escape (the `\` is already
    /// consumed and `pos` sits on the `u`), including surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hex4 = |p: &mut Parser| -> Result<u32, JsonError> {
            p.pos += 1; // the 'u'
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            let digits = std::str::from_utf8(&p.bytes[p.pos..end])
                .ok()
                .and_then(|s| u32::from_str_radix(s, 16).ok())
                .ok_or_else(|| p.err("invalid \\u escape"))?;
            p.pos = end;
            Ok(digits)
        };
        let first = hex4(self)?;
        let cp = if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a low surrogate must follow.
            if self.peek() != Some(b'\\') {
                return Err(self.err("lone high surrogate"));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(self.err("lone high surrogate"));
            }
            let second = hex4(self)?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
        } else if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("lone low surrogate"));
        } else {
            first
        };
        char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = parse_json(src).expect(src);
            assert_eq!(v.to_string(), src, "{src}");
        }
    }

    #[test]
    fn structures_round_trip_preserving_order() {
        let src = r#"{"b":1,"a":[true,null,{"x":"y"}],"c":-2.5}"#;
        let v = parse_json(src).expect("parses");
        assert_eq!(v.to_string(), src);
        assert_eq!(v.get("b"), Some(&Json::Num(1.0)));
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::str("a\"b\\c\nd\te\u{1}–\u{1F600}");
        let text = v.to_string();
        assert_eq!(parse_json(&text).expect("parses"), v);
        // And escapes written by others (incl. surrogate pairs) parse.
        let parsed = parse_json(r#""\u0041\ud83d\ude00\/""#).expect("parses");
        assert_eq!(parsed, Json::str("A\u{1F600}/"));
    }

    #[test]
    fn malformed_inputs_are_rejected_with_offsets() {
        for src in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "1 2",
            "{a:1}",
            "\"\\u12\"",
            "\"\\ud800\"",
            "01x",
        ] {
            assert!(parse_json(src).is_err(), "{src:?} must not parse");
        }
    }

    #[test]
    fn depth_bound_rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&deep).is_err());
        let ok = "[".repeat(32) + &"]".repeat(32);
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn u64_accessor_rejects_non_integers() {
        assert_eq!(parse_json("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse_json("-1").unwrap().as_u64(), None);
        assert_eq!(parse_json("1.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("\"7\"").unwrap().as_u64(), None);
    }
}
