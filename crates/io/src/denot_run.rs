//! The *semantic* IO runner: the §4.4 labelled transition system executed
//! over denotations.
//!
//! The transition rules implemented here are the paper's, verbatim:
//!
//! ```text
//! (v1 >>= k) → (v2 >>= k)                  if v1 → v2
//! (return v) >>= k → k v
//! getChar  --?c-->  return c
//! putChar c --!c--> return ()
//! getException (Ok v)  → return (OK v)
//! getException (Bad s) → return (Bad x)        if x ∈ s
//! getException (Bad s) → getException (Bad s)  if NonTermination ∈ s
//! getException v --?x--> return (Bad x)        on asynchronous event x
//! ```
//!
//! The non-deterministic choice `x ∈ s` is delegated to an
//! [`ExceptionOracle`], making the confinement of non-determinism to the
//! IO monad (§3.5) literal: the pure layer computes the *set*; only
//! `perform`ing chooses.

use urk_denot::{show_denot, DThunk, Denot, DenotEvaluator, ExnSet, Thunk, Value};
use urk_syntax::{Exception, Symbol};

use crate::oracle::{ExceptionOracle, OracleChoice};
use crate::trace::{Event, Input, Trace};

/// How a semantic run ended.
#[derive(Clone, Debug)]
pub enum SemIoResult {
    /// `main` performed to completion; the final value, rendered.
    Done(String),
    /// The action itself was an exceptional value — an uncaught exception
    /// set.
    Uncaught(ExnSet),
    /// The LTS took the `NonTermination` self-loop (or the action was ⊥).
    Diverged,
    /// `getChar` at end of input.
    OutOfInput,
}

/// One semantic run's result and trace.
#[derive(Clone, Debug)]
pub struct SemRunOutcome {
    pub result: SemIoResult,
    pub trace: Trace,
}

/// Asynchronous events for the semantic runner: delivered at the n-th
/// `getException` transition (0-based).
#[derive(Clone, Debug, Default)]
pub struct AsyncSchedule {
    pub events: Vec<(u64, Exception)>,
}

/// Performs an `IO` denotation under the LTS.
///
/// # Examples
///
/// The headline choice, made explicit by the oracle:
///
/// ```
/// use std::rc::Rc;
/// use urk_denot::{DenotEvaluator, Env, Thunk};
/// use urk_io::{run_denot, AsyncSchedule, SeededOracle, StringInput, SemIoResult};
/// use urk_syntax::{parse_expr_src, desugar_expr, DataEnv};
///
/// let data = DataEnv::new();
/// let ev = DenotEvaluator::new(&data);
/// let action = desugar_expr(
///     &parse_expr_src(r#"getException ((1/0) + raise (UserError "Urk"))"#)?,
///     &data,
/// )?;
/// let mut input = StringInput::new("");
/// let mut oracle = SeededOracle::new(7);
/// let out = run_denot(
///     &ev,
///     Thunk::pending(Rc::new(action), Env::empty()),
///     &mut input,
///     &mut oracle,
///     &AsyncSchedule::default(),
/// );
/// let SemIoResult::Done(v) = out.result else { panic!() };
/// assert!(v == "Bad DivideByZero" || v == "Bad (UserError \"Urk\")");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_denot(
    ev: &DenotEvaluator<'_>,
    action: DThunk,
    input: &mut dyn Input,
    oracle: &mut dyn ExceptionOracle,
    schedule: &AsyncSchedule,
) -> SemRunOutcome {
    let mut trace = Trace::new();
    let mut konts: Vec<DThunk> = Vec::new();
    let mut current = action;
    let mut get_exception_count: u64 = 0;

    loop {
        let d = ev.force(&current);
        let v = match d {
            Denot::Ok(v) => v,
            Denot::Bad(s) => {
                let result = if s.is_all() {
                    SemIoResult::Diverged
                } else {
                    SemIoResult::Uncaught(s)
                };
                return SemRunOutcome { result, trace };
            }
        };
        let Value::Con(con, fields) = &v else {
            panic!("performed a non-IO value (ill-typed program)");
        };
        let con = con.as_str();

        let produced: DThunk = match con.as_str() {
            "Bind" => {
                konts.push(fields[1].clone());
                current = fields[0].clone();
                continue;
            }
            "Return" => fields[0].clone(),
            "GetChar" => match input.get_char() {
                Some(c) => {
                    trace.push(Event::Input(c));
                    Thunk::done(Denot::Ok(Value::Char(c)))
                }
                None => {
                    return SemRunOutcome {
                        result: SemIoResult::OutOfInput,
                        trace,
                    }
                }
            },
            "PutChar" => match ev.force(&fields[0]) {
                Denot::Ok(Value::Char(c)) => {
                    trace.push(Event::Output(c));
                    unit_thunk()
                }
                Denot::Ok(other) => panic!("putChar of a non-character {other:?}"),
                Denot::Bad(s) => {
                    return SemRunOutcome {
                        result: bad_result(s),
                        trace,
                    }
                }
            },
            "PutStr" => match ev.force(&fields[0]) {
                Denot::Ok(Value::Str(s)) => {
                    trace.push(Event::OutputStr(s.to_string()));
                    unit_thunk()
                }
                Denot::Ok(other) => panic!("putStr of a non-string {other:?}"),
                Denot::Bad(s) => {
                    return SemRunOutcome {
                        result: bad_result(s),
                        trace,
                    }
                }
            },
            "GetException" => {
                let n = get_exception_count;
                get_exception_count += 1;
                // §5.1's rule: an asynchronous event may pre-empt the value
                // entirely.
                if let Some((_, exn)) = schedule.events.iter().find(|(at, _)| *at == n) {
                    trace.push(Event::AsyncDelivered(exn.clone()));
                    bad_thunk(ev, exn)
                } else {
                    match ev.force(&fields[0]) {
                        Denot::Ok(v) => Thunk::done(Denot::Ok(Value::Con(
                            Symbol::intern("OK"),
                            vec![Thunk::done(Denot::Ok(v))],
                        ))),
                        Denot::Bad(s) => match oracle.choose(&s) {
                            OracleChoice::Diverge => {
                                return SemRunOutcome {
                                    result: SemIoResult::Diverged,
                                    trace,
                                }
                            }
                            OracleChoice::Exception(exn) => {
                                trace.push(Event::ChoseException(exn.clone()));
                                bad_thunk(ev, &exn)
                            }
                        },
                    }
                }
            }
            other => panic!("performed an unknown IO constructor '{other}'"),
        };

        match konts.pop() {
            None => {
                let d = ev.force(&produced);
                let rendered = show_denot(ev, &d, 32);
                return SemRunOutcome {
                    result: SemIoResult::Done(rendered),
                    trace,
                };
            }
            Some(k) => {
                let kd = ev.force(&k);
                current = Thunk::done(ev.apply_denot(&kd, produced));
            }
        }
    }
}

fn unit_thunk() -> DThunk {
    Thunk::done(Denot::Ok(Value::Con(Symbol::intern("Unit"), vec![])))
}

fn bad_thunk(ev: &DenotEvaluator<'_>, exn: &Exception) -> DThunk {
    let inner = Thunk::done(Denot::Ok(ev.exception_to_value(exn)));
    Thunk::done(Denot::Ok(Value::Con(Symbol::intern("Bad"), vec![inner])))
}

fn bad_result(s: ExnSet) -> SemIoResult {
    if s.is_all() {
        SemIoResult::Diverged
    } else {
        SemIoResult::Uncaught(s)
    }
}
