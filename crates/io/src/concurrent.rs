//! Cooperative concurrency at the IO layer — the extension §4.4 points at
//! ("one advantage of this presentation is that it scales to other
//! extensions, such as adding concurrency", citing Concurrent Haskell).
//!
//! `forkIO :: IO a -> IO Int` spawns a thread performing its argument and
//! returns its thread id; `yield :: IO ()` cedes the scheduler. Scheduling
//! is deterministic round-robin with one IO action per quantum: pure
//! evaluation between actions is atomic (the graph machine is sequential),
//! which is exactly the granularity of the §4.4 transition rules.
//!
//! Thread semantics follow Concurrent Haskell's:
//!
//! * when the main thread finishes, the program finishes (remaining
//!   threads are killed);
//! * an uncaught exception terminates *its own thread only* and is
//!   recorded — `getException` inside the thread can still catch it;
//! * threads share the heap (and therefore thunks: a shared poisoned
//!   thunk re-raises the same representative in every thread);
//! * `MVar`s (`newMVar`/`newEmptyMVar`/`takeMVar`/`putMVar`) block with
//!   Concurrent Haskell's semantics — take blocks on empty, put blocks on
//!   full — and a thread the scheduler can prove will never wake dies with
//!   `BlockedIndefinitely` (GHC's `BlockedIndefinitelyOnMVar`).

use urk_machine::{HValue, Machine, MachineError, NodeId, Outcome, Whnf};
use urk_syntax::{Exception, Symbol};

use crate::machine_run::IoResult;
use crate::trace::{Event, Input, Trace};

/// How one thread ended.
#[derive(Clone, Debug)]
pub enum ThreadResult {
    /// Performed to completion (payload rendered).
    Done(String),
    /// Died on an uncaught exception (§4.4's report, per thread).
    Uncaught(Exception),
    /// Still alive when the main thread finished.
    Killed,
}

/// The outcome of a concurrent run.
#[derive(Clone, Debug)]
pub struct ConcurrentOutcome {
    /// The main thread's result.
    pub main: IoResult,
    /// The interleaved trace of every thread's actions.
    pub trace: Trace,
    /// Per-thread results, indexed by thread id (0 is main).
    pub threads: Vec<(u64, ThreadResult)>,
}

impl ConcurrentOutcome {
    /// True if the main thread completed normally (process exit code).
    pub fn result_exit(&self) -> bool {
        matches!(self.main, IoResult::Done(_))
    }
}

/// A cooperative thread. `current` and `konts` are *root indices* into
/// the machine's root set, not raw node ids: a minor collection rewrites
/// root slots in place when nursery cells move, so every id held across
/// an evaluation is re-read through its slot.
struct Thread {
    tid: u64,
    current: usize,
    konts: Vec<usize>,
}

/// Why a thread is parked.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum BlockKind {
    /// Waiting for the MVar to become full.
    Take,
    /// Waiting for the MVar to become empty.
    Put,
}

/// Performs `root` as the main thread of a cooperative thread group.
pub fn run_concurrent(
    machine: &mut Machine,
    root: NodeId,
    input: &mut dyn Input,
) -> ConcurrentOutcome {
    let mut trace = Trace::new();
    let mut results: Vec<(u64, ThreadResult)> = Vec::new();
    let mut next_tid: u64 = 1;
    let mut total_rooted = 0usize;

    let push_root = |machine: &mut Machine, n: NodeId, total: &mut usize| -> usize {
        *total += 1;
        machine.push_root(n)
    };

    let mut ready: std::collections::VecDeque<Thread> = std::collections::VecDeque::new();
    // MVar slots are tenured cells (allocated with `alloc_hvalue`), so the
    // parked-on id is stable and raw.
    let mut blocked: Vec<(Thread, NodeId, BlockKind)> = Vec::new();
    // Exceptions thrown at threads with `throwTo` (§5.1 directed at the
    // §4.4 threads), delivered at the target's next scheduling point.
    let mut pending_exn: std::collections::HashMap<u64, Exception> =
        std::collections::HashMap::new();
    let root_idx = push_root(machine, root, &mut total_rooted);
    ready.push_back(Thread {
        tid: 0,
        current: root_idx,
        konts: Vec::new(),
    });

    let mut main_result: Option<IoResult> = None;

    'scheduler: while let Some(mut t) = ready.pop_front() {
        // §5.1 delivery point: a pending thrown exception lands when the
        // target is next scheduled. If its next action is a getException,
        // the rule `getException v --?x--> return (Bad x)` applies and the
        // thread recovers; otherwise the thread dies with the exception.
        let thrown = pending_exn.remove(&t.tid);
        let mut thrown = thrown; // consumed below
                                 // Perform ONE effectful action (unwinding Binds does not count).
        loop {
            let cur = machine.root(t.current);
            let whnf = match machine.eval_node(cur, false) {
                Ok(Outcome::Value(n)) => n,
                Ok(Outcome::Uncaught(e)) | Ok(Outcome::Caught(e)) => {
                    if t.tid == 0 {
                        main_result = Some(IoResult::Uncaught(e));
                        break 'scheduler;
                    }
                    results.push((t.tid, ThreadResult::Uncaught(e)));
                    continue 'scheduler;
                }
                Err(e) => {
                    main_result = Some(IoResult::MachineError(e));
                    break 'scheduler;
                }
            };
            let Some(Whnf::Con(con, fields)) = machine.heap().whnf(whnf) else {
                panic!("performed a non-IO value (ill-typed program)");
            };
            let (con, fields) = (con.as_str(), fields.to_vec());

            if let Some(exn) = thrown.take() {
                if con != "GetException" && con != "Bind" {
                    trace.push(Event::AsyncDelivered(exn.clone()));
                    if t.tid == 0 {
                        main_result = Some(IoResult::Uncaught(exn));
                        break 'scheduler;
                    }
                    results.push((t.tid, ThreadResult::Uncaught(exn)));
                    continue 'scheduler;
                }
                // Bind unwinding: keep the exception pending for the real
                // action; getException: handled by the arm above.
                thrown = Some(exn);
            }
            let produced: NodeId = match con.as_str() {
                "Bind" => {
                    t.konts
                        .push(push_root(machine, fields[1], &mut total_rooted));
                    t.current = push_root(machine, fields[0], &mut total_rooted);
                    continue; // unwinding is not an action
                }
                "Return" => fields[0],
                "GetChar" => match input.get_char() {
                    Some(c) => {
                        trace.push(Event::Input(c));
                        machine.alloc_hvalue(HValue::Char(c))
                    }
                    None => {
                        if t.tid == 0 {
                            main_result = Some(IoResult::OutOfInput);
                            break 'scheduler;
                        }
                        results.push((
                            t.tid,
                            ThreadResult::Uncaught(Exception::UserError(
                                "getChar: end of input".into(),
                            )),
                        ));
                        continue 'scheduler;
                    }
                },
                "PutChar" => match force_payload(machine, fields[0]) {
                    Ok(n) => {
                        let Some(Whnf::Char(c)) = machine.heap().whnf(n) else {
                            panic!("putChar of a non-character");
                        };
                        trace.push(Event::Output(c));
                        machine.alloc_hvalue(HValue::Con(Symbol::intern("Unit"), vec![]))
                    }
                    Err(Died::Exception(e)) => {
                        if t.tid == 0 {
                            main_result = Some(IoResult::Uncaught(e));
                            break 'scheduler;
                        }
                        results.push((t.tid, ThreadResult::Uncaught(e)));
                        continue 'scheduler;
                    }
                    Err(Died::Machine(e)) => {
                        main_result = Some(IoResult::MachineError(e));
                        break 'scheduler;
                    }
                },
                "PutStr" => match force_payload(machine, fields[0]) {
                    Ok(n) => {
                        let Some(Whnf::Str(s)) = machine.heap().whnf(n) else {
                            panic!("putStr of a non-string");
                        };
                        trace.push(Event::OutputStr(s.to_string()));
                        machine.alloc_hvalue(HValue::Con(Symbol::intern("Unit"), vec![]))
                    }
                    Err(Died::Exception(e)) => {
                        if t.tid == 0 {
                            main_result = Some(IoResult::Uncaught(e));
                            break 'scheduler;
                        }
                        results.push((t.tid, ThreadResult::Uncaught(e)));
                        continue 'scheduler;
                    }
                    Err(Died::Machine(e)) => {
                        main_result = Some(IoResult::MachineError(e));
                        break 'scheduler;
                    }
                },
                "GetException" if thrown.is_some() => {
                    let exn = thrown.take().expect("checked");
                    trace.push(Event::AsyncDelivered(exn.clone()));
                    let ev = machine.alloc_exception_value(&exn);
                    machine.alloc_hvalue(HValue::Con(Symbol::intern("Bad"), vec![ev]))
                }
                "GetException" => match machine.eval_node(fields[0], true) {
                    Ok(Outcome::Value(n)) => {
                        machine.alloc_hvalue(HValue::Con(Symbol::intern("OK"), vec![n]))
                    }
                    Ok(Outcome::Caught(exn)) | Ok(Outcome::Uncaught(exn)) => {
                        trace.push(if exn.is_asynchronous() {
                            Event::AsyncDelivered(exn.clone())
                        } else {
                            Event::ChoseException(exn.clone())
                        });
                        let ev = machine.alloc_exception_value(&exn);
                        machine.alloc_hvalue(HValue::Con(Symbol::intern("Bad"), vec![ev]))
                    }
                    Err(e) => {
                        main_result = Some(IoResult::MachineError(e));
                        break 'scheduler;
                    }
                },
                "Fork" => {
                    let tid = next_tid;
                    next_tid += 1;
                    trace.push(Event::Forked(tid));
                    let action_idx = push_root(machine, fields[0], &mut total_rooted);
                    ready.push_back(Thread {
                        tid,
                        current: action_idx,
                        konts: Vec::new(),
                    });
                    machine.alloc_hvalue(HValue::Int(tid as i64))
                }
                "Yield" => machine.alloc_hvalue(HValue::Con(Symbol::intern("Unit"), vec![])),
                "ThrowTo" => match force_payload(machine, fields[0]) {
                    Ok(tid_node) => {
                        let Some(Whnf::Int(target)) = machine.heap().whnf(tid_node) else {
                            panic!("throwTo of a non-Int thread id");
                        };
                        let target = target as u64;
                        // Re-read the second field through the (tenured)
                        // action cell: forcing the first field may have
                        // run a minor collection that moved it, and the
                        // remembered set rewrote the parent's slot.
                        let exn_field = con_field(machine, whnf, 1);
                        match force_payload(machine, exn_field) {
                            Ok(exn_node) => {
                                let exn = node_to_exception(machine, exn_node);
                                // Wake the target if it is parked so the
                                // exception can be delivered.
                                let mut i = 0;
                                while i < blocked.len() {
                                    if blocked[i].0.tid == target {
                                        let (bt, _, _) = blocked.remove(i);
                                        ready.push_back(bt);
                                    } else {
                                        i += 1;
                                    }
                                }
                                pending_exn.insert(target, exn);
                                machine.alloc_hvalue(HValue::Con(Symbol::intern("Unit"), vec![]))
                            }
                            Err(Died::Exception(e)) => {
                                if t.tid == 0 {
                                    main_result = Some(IoResult::Uncaught(e));
                                    break 'scheduler;
                                }
                                results.push((t.tid, ThreadResult::Uncaught(e)));
                                continue 'scheduler;
                            }
                            Err(Died::Machine(e)) => {
                                main_result = Some(IoResult::MachineError(e));
                                break 'scheduler;
                            }
                        }
                    }
                    Err(Died::Exception(e)) => {
                        if t.tid == 0 {
                            main_result = Some(IoResult::Uncaught(e));
                            break 'scheduler;
                        }
                        results.push((t.tid, ThreadResult::Uncaught(e)));
                        continue 'scheduler;
                    }
                    Err(Died::Machine(e)) => {
                        main_result = Some(IoResult::MachineError(e));
                        break 'scheduler;
                    }
                },
                "NewMVar" => {
                    let slot = machine
                        .alloc_hvalue(HValue::Con(Symbol::intern("MVarFull"), vec![fields[0]]));
                    push_root(machine, slot, &mut total_rooted);
                    slot
                }
                "NewEmptyMVar" => {
                    let slot =
                        machine.alloc_hvalue(HValue::Con(Symbol::intern("MVarEmpty"), vec![]));
                    push_root(machine, slot, &mut total_rooted);
                    slot
                }
                "TakeMVar" => match force_payload(machine, fields[0]) {
                    Ok(n) => {
                        let slot = machine.resolve_node(n);
                        let (state, first) = match machine.heap().whnf(slot) {
                            Some(Whnf::Con(state, contents)) => (state, contents.first().copied()),
                            _ => panic!("takeMVar of a non-MVar (ill-typed program)"),
                        };
                        if state.as_str() == "MVarFull" {
                            let v = first.expect("a full MVar holds its contents");
                            machine.overwrite_hvalue(
                                slot,
                                HValue::Con(Symbol::intern("MVarEmpty"), vec![]),
                            );
                            wake(&mut blocked, &mut ready, slot);
                            v
                        } else {
                            // Park; the action node is retried on wake.
                            blocked.push((t, slot, BlockKind::Take));
                            continue 'scheduler;
                        }
                    }
                    Err(Died::Exception(e)) => {
                        if t.tid == 0 {
                            main_result = Some(IoResult::Uncaught(e));
                            break 'scheduler;
                        }
                        results.push((t.tid, ThreadResult::Uncaught(e)));
                        continue 'scheduler;
                    }
                    Err(Died::Machine(e)) => {
                        main_result = Some(IoResult::MachineError(e));
                        break 'scheduler;
                    }
                },
                "PutMVar" => match force_payload(machine, fields[0]) {
                    Ok(n) => {
                        let slot = machine.resolve_node(n);
                        let state = match machine.heap().whnf(slot) {
                            Some(Whnf::Con(state, _)) => state,
                            _ => panic!("putMVar of a non-MVar (ill-typed program)"),
                        };
                        if state.as_str() == "MVarEmpty" {
                            // As in ThrowTo: re-read the value field after
                            // the force above.
                            let v = con_field(machine, whnf, 1);
                            machine.overwrite_hvalue(
                                slot,
                                HValue::Con(Symbol::intern("MVarFull"), vec![v]),
                            );
                            wake(&mut blocked, &mut ready, slot);
                            machine.alloc_hvalue(HValue::Con(Symbol::intern("Unit"), vec![]))
                        } else {
                            blocked.push((t, slot, BlockKind::Put));
                            continue 'scheduler;
                        }
                    }
                    Err(Died::Exception(e)) => {
                        if t.tid == 0 {
                            main_result = Some(IoResult::Uncaught(e));
                            break 'scheduler;
                        }
                        results.push((t.tid, ThreadResult::Uncaught(e)));
                        continue 'scheduler;
                    }
                    Err(Died::Machine(e)) => {
                        main_result = Some(IoResult::MachineError(e));
                        break 'scheduler;
                    }
                },
                other => panic!("performed an unknown IO constructor '{other}'"),
            };

            match t.konts.pop() {
                None => {
                    if t.tid == 0 {
                        let rendered = machine.render(produced, 32);
                        main_result = Some(IoResult::Done(rendered));
                        break 'scheduler;
                    }
                    let rendered = machine.render(produced, 8);
                    results.push((t.tid, ThreadResult::Done(rendered)));
                    continue 'scheduler;
                }
                Some(k_idx) => {
                    let k = machine.root(k_idx);
                    let next = apply_node(machine, k, produced);
                    t.current = push_root(machine, next, &mut total_rooted);
                    // One effectful action performed: rotate.
                    ready.push_back(t);
                    break;
                }
            }
        }
    }

    // The ready queue drained with threads still parked: they can never
    // wake (no runnable thread can touch their MVars) — GHC's
    // BlockedIndefinitelyOnMVar.
    if main_result.is_none() {
        for (t, _, _) in blocked.drain(..) {
            if t.tid == 0 {
                main_result = Some(IoResult::Uncaught(Exception::BlockedIndefinitely));
            } else {
                results.push((
                    t.tid,
                    ThreadResult::Uncaught(Exception::BlockedIndefinitely),
                ));
            }
        }
    }
    // Remaining threads die with main (Concurrent Haskell semantics).
    for t in ready {
        results.push((t.tid, ThreadResult::Killed));
    }
    for (t, _, _) in blocked {
        results.push((t.tid, ThreadResult::Killed));
    }
    for _ in 0..total_rooted {
        machine.pop_root();
    }
    results.sort_by_key(|(tid, _)| *tid);

    ConcurrentOutcome {
        main: main_result.unwrap_or(IoResult::Done("Unit".into())),
        trace,
        threads: results,
    }
}

/// Moves every thread parked on `slot` back to the ready queue (their
/// pending action re-runs and re-checks the state).
fn wake(
    blocked: &mut Vec<(Thread, NodeId, BlockKind)>,
    ready: &mut std::collections::VecDeque<Thread>,
    slot: NodeId,
) {
    let mut i = 0;
    while i < blocked.len() {
        if blocked[i].1 == slot {
            let (t, _, _) = blocked.remove(i);
            ready.push_back(t);
        } else {
            i += 1;
        }
    }
}

/// Reads field `i` of the constructor value at `node` (a tenured cell —
/// an evaluation result — whose slots the minor collector keeps current
/// through the remembered set).
fn con_field(machine: &Machine, node: NodeId, i: usize) -> NodeId {
    match machine.heap().whnf(node) {
        Some(Whnf::Con(_, fields)) => fields[i],
        _ => panic!("expected a constructor value"),
    }
}

/// Converts a WHNF in-language `Exception` value to the runtime type,
/// forcing the payload if present.
fn node_to_exception(machine: &mut Machine, node: NodeId) -> Exception {
    let (name, payload_node) = match machine.heap().whnf(node) {
        Some(Whnf::Con(name, fields)) => (name, fields.first().copied()),
        _ => panic!("throwTo of a non-Exception value"),
    };
    let payload = payload_node.map(|f| match machine.eval_node(f, false) {
        Ok(Outcome::Value(n)) => match machine.heap().whnf(n) {
            Some(Whnf::Str(s)) => s.to_string(),
            _ => panic!("exception payload is not a string"),
        },
        _ => String::new(),
    });
    Exception::from_constructor(name, payload.as_deref())
        .unwrap_or_else(|| panic!("unknown exception constructor '{name}'"))
}

enum Died {
    Exception(Exception),
    Machine(MachineError),
}

fn force_payload(machine: &mut Machine, node: NodeId) -> Result<NodeId, Died> {
    match machine.eval_node(node, false) {
        Ok(Outcome::Value(n)) => Ok(n),
        Ok(Outcome::Uncaught(e)) | Ok(Outcome::Caught(e)) => Err(Died::Exception(e)),
        Err(e) => Err(Died::Machine(e)),
    }
}

fn apply_node(machine: &mut Machine, k: NodeId, v: NodeId) -> NodeId {
    let fk = Symbol::fresh("ck");
    let fv = Symbol::fresh("cv");
    let expr = std::rc::Rc::new(urk_syntax::core::Expr::App(
        std::rc::Rc::new(urk_syntax::core::Expr::Var(fk)),
        std::rc::Rc::new(urk_syntax::core::Expr::Var(fv)),
    ));
    let env = urk_machine::MEnv::empty().bind(fk, k).bind(fv, v);
    machine.alloc_thunk(expr, env)
}
