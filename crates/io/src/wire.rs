//! The serving tier's wire protocol: length-prefixed JSON-lines frames.
//!
//! One frame is a 4-byte big-endian length followed by exactly that many
//! bytes of UTF-8 — one JSON object terminated by `\n` (the "JSON-lines"
//! part: a captured stream is also greppable line by line). The length
//! prefix is what makes the protocol self-synchronising: a payload that
//! fails to parse costs exactly one frame — the server answers with an
//! [`Response::Error`] and the connection keeps going — while only a
//! frame whose *length field* is out of bounds (oversized or not
//! arriving) forces a disconnect, because there is no longer a reliable
//! place to resynchronise at.
//!
//! Requests and responses are plain data (strings and counters), so this
//! module sits in `urk-io` below the evaluation stack: the server maps
//! them onto the pool, and clients — the load generator, the tests, or
//! anything that can write a length prefix — need no urk crates at all.
//!
//! Exceptional outcomes cross the wire verbatim: a result carries the
//! `(raise E)` rendering plus the representative exception's display
//! form, never a collapsed error code — the §4 refinement argument is
//! exactly what licenses serving one member of the denoted set to a
//! remote client (see DESIGN.md §12).

use std::fmt;
use std::io::{self, Read, Write};

use crate::json::{parse_json, Json};

/// Frames larger than this are rejected before their payload is read.
/// Big enough for any batch the pool would accept, small enough that a
/// corrupt or hostile length field cannot make the server buffer
/// gigabytes.
pub const MAX_FRAME_LEN: usize = 4 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes an EOF that split a
    /// frame in half).
    Io(io::Error),
    /// The length field exceeds [`MAX_FRAME_LEN`] — the stream can no
    /// longer be trusted, so the connection must close.
    TooLarge(usize),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame transport error: {e}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_LEN}-byte bound")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one frame: 4-byte big-endian length, then the payload.
///
/// # Errors
///
/// Transport errors from the writer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// [`FrameError::Io`] on transport failure or a mid-frame EOF;
/// [`FrameError::TooLarge`] when the length field is out of bounds (the
/// payload is not read — the caller must drop the connection).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A payload that did not decode into a valid message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for WireError {}

/// What a client may ask of the server. Every request carries a
/// client-chosen `id` echoed on every response it provokes, so one
/// connection can interleave requests and still match answers.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Evaluate a batch of expressions; results stream back in
    /// submission order as [`Response::Result`]/[`Response::JobError`]/
    /// [`Response::Overloaded`] frames followed by one
    /// [`Response::BatchDone`].
    Batch {
        id: u64,
        exprs: Vec<String>,
        /// Per-request wall-clock deadline, mapped onto the pool
        /// supervisor's watchdog.
        deadline_ms: Option<u64>,
        /// Per-request machine-step budget.
        max_steps: Option<u64>,
        /// Per-request heap budget in nodes.
        max_heap: Option<u64>,
        /// Per-request stack budget in frames.
        max_stack: Option<u64>,
    },
    /// Snapshot the server's pool/cache/aggregate counters.
    Stats { id: u64 },
    /// Liveness probe.
    Ping { id: u64 },
    /// Ask the server to shut down gracefully (drain, then exit).
    Shutdown { id: u64 },
}

/// Per-result machine counters, the wire slice of
/// [`urk_machine::Stats`](../../urk_machine/struct.Stats.html).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    pub steps: u64,
    pub allocations: u64,
    pub unboxed_hits: u64,
    pub fused_steps: u64,
    pub ic_hits: u64,
    pub ic_misses: u64,
    pub compile_ops: u64,
    pub compile_micros: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Which backend produced the answer (`"tree"` or `"compiled"`).
    pub backend: String,
    /// Which execution tier produced the answer (`"1"` or `"2"`).
    pub tier: String,
}

/// The shared result cache's counters as served by a `stats` request.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub insertions: u64,
    pub entries: u64,
    pub capacity: u64,
    pub hit_rate: f64,
}

/// Whole-server aggregates over every job served so far.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireTotals {
    pub jobs: u64,
    pub steps: u64,
    pub unboxed_hits: u64,
    pub fused_steps: u64,
    pub ic_hits: u64,
    pub ic_misses: u64,
    pub compile_micros: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

/// What the server sends back.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// One finished job (streamed in submission order).
    Result {
        id: u64,
        index: u64,
        /// The rendered value, or `(raise E)` for an exceptional
        /// outcome — byte-identical to an in-process evaluation.
        rendered: String,
        /// The representative exception's display form, if the outcome
        /// raised.
        exception: Option<String>,
        cache_hit: bool,
        attempts: u64,
        timed_out: bool,
        stats: WireStats,
    },
    /// One job that failed with a front-end or pool error.
    JobError {
        id: u64,
        index: u64,
        message: String,
    },
    /// One job shed at admission because the bounded queue was full.
    Overloaded { id: u64, index: u64 },
    /// The batch is fully answered: `jobs` results streamed, of which
    /// `shed` were load-shed.
    BatchDone { id: u64, jobs: u64, shed: u64 },
    /// The `stats` snapshot.
    Stats {
        id: u64,
        workers: u64,
        queue_depth: u64,
        queue_cap: u64,
        connections: u64,
        requests: u64,
        jobs_submitted: u64,
        jobs_shed: u64,
        protocol_errors: u64,
        backend: String,
        cache: WireCacheStats,
        totals: WireTotals,
    },
    /// Answer to a ping.
    Pong { id: u64 },
    /// Acknowledgement of a shutdown request; no more frames follow.
    ShuttingDown { id: u64 },
    /// A request-level failure: the payload was not a valid request
    /// (`id` is whatever could be salvaged). The connection stays open.
    Error { id: Option<u64>, message: String },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn obj(type_tag: &str, id: Json, rest: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![
        ("type".to_string(), Json::str(type_tag)),
        ("id".to_string(), id),
    ];
    pairs.extend(rest);
    Json::Obj(pairs)
}

fn opt_u64(pairs: &mut Vec<(String, Json)>, key: &str, v: Option<u64>) {
    if let Some(n) = v {
        pairs.push((key.to_string(), Json::int(n)));
    }
}

impl Request {
    /// Encodes to a JSON-lines payload (trailing `\n` included), ready
    /// for [`write_frame`].
    pub fn encode(&self) -> Vec<u8> {
        let json = match self {
            Request::Batch {
                id,
                exprs,
                deadline_ms,
                max_steps,
                max_heap,
                max_stack,
            } => {
                let mut rest = vec![(
                    "exprs".to_string(),
                    Json::Arr(exprs.iter().map(Json::str).collect()),
                )];
                opt_u64(&mut rest, "deadline_ms", *deadline_ms);
                opt_u64(&mut rest, "max_steps", *max_steps);
                opt_u64(&mut rest, "max_heap", *max_heap);
                opt_u64(&mut rest, "max_stack", *max_stack);
                obj("batch", Json::int(*id), rest)
            }
            Request::Stats { id } => obj("stats", Json::int(*id), vec![]),
            Request::Ping { id } => obj("ping", Json::int(*id), vec![]),
            Request::Shutdown { id } => obj("shutdown", Json::int(*id), vec![]),
        };
        let mut out = json.to_string().into_bytes();
        out.push(b'\n');
        out
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] describing the first problem (invalid JSON, missing
    /// or ill-typed field, unknown request type).
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let json = parse_payload(payload)?;
        let id = require_id(&json)?;
        match require_type(&json)? {
            "batch" => {
                let exprs = json
                    .get("exprs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| WireError("batch needs an 'exprs' array".into()))?
                    .iter()
                    .map(|e| {
                        e.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| WireError("'exprs' must hold strings".into()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Batch {
                    id,
                    exprs,
                    deadline_ms: field_u64(&json, "deadline_ms")?,
                    max_steps: field_u64(&json, "max_steps")?,
                    max_heap: field_u64(&json, "max_heap")?,
                    max_stack: field_u64(&json, "max_stack")?,
                })
            }
            "stats" => Ok(Request::Stats { id }),
            "ping" => Ok(Request::Ping { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(WireError(format!("unknown request type '{other}'"))),
        }
    }
}

impl WireStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("steps".to_string(), Json::int(self.steps)),
            ("allocations".to_string(), Json::int(self.allocations)),
            ("unboxed_hits".to_string(), Json::int(self.unboxed_hits)),
            ("fused_steps".to_string(), Json::int(self.fused_steps)),
            ("ic_hits".to_string(), Json::int(self.ic_hits)),
            ("ic_misses".to_string(), Json::int(self.ic_misses)),
            ("compile_ops".to_string(), Json::int(self.compile_ops)),
            ("compile_micros".to_string(), Json::int(self.compile_micros)),
            ("cache_hits".to_string(), Json::int(self.cache_hits)),
            ("cache_misses".to_string(), Json::int(self.cache_misses)),
            ("backend".to_string(), Json::str(&self.backend)),
            ("tier".to_string(), Json::str(&self.tier)),
        ])
    }

    fn from_json(json: &Json) -> Result<WireStats, WireError> {
        Ok(WireStats {
            steps: need_u64(json, "steps")?,
            allocations: need_u64(json, "allocations")?,
            unboxed_hits: need_u64(json, "unboxed_hits")?,
            fused_steps: need_u64(json, "fused_steps")?,
            ic_hits: need_u64(json, "ic_hits")?,
            ic_misses: need_u64(json, "ic_misses")?,
            compile_ops: need_u64(json, "compile_ops")?,
            compile_micros: need_u64(json, "compile_micros")?,
            cache_hits: need_u64(json, "cache_hits")?,
            cache_misses: need_u64(json, "cache_misses")?,
            backend: need_str(json, "backend")?,
            tier: need_str(json, "tier")?,
        })
    }
}

impl WireCacheStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("hits".to_string(), Json::int(self.hits)),
            ("misses".to_string(), Json::int(self.misses)),
            ("evictions".to_string(), Json::int(self.evictions)),
            ("insertions".to_string(), Json::int(self.insertions)),
            ("entries".to_string(), Json::int(self.entries)),
            ("capacity".to_string(), Json::int(self.capacity)),
            ("hit_rate".to_string(), Json::Num(self.hit_rate)),
        ])
    }

    fn from_json(json: &Json) -> Result<WireCacheStats, WireError> {
        Ok(WireCacheStats {
            hits: need_u64(json, "hits")?,
            misses: need_u64(json, "misses")?,
            evictions: need_u64(json, "evictions")?,
            insertions: need_u64(json, "insertions")?,
            entries: need_u64(json, "entries")?,
            capacity: need_u64(json, "capacity")?,
            hit_rate: json
                .get("hit_rate")
                .and_then(Json::as_num)
                .ok_or_else(|| WireError("missing 'hit_rate'".into()))?,
        })
    }
}

impl WireTotals {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("jobs".to_string(), Json::int(self.jobs)),
            ("steps".to_string(), Json::int(self.steps)),
            ("unboxed_hits".to_string(), Json::int(self.unboxed_hits)),
            ("fused_steps".to_string(), Json::int(self.fused_steps)),
            ("ic_hits".to_string(), Json::int(self.ic_hits)),
            ("ic_misses".to_string(), Json::int(self.ic_misses)),
            ("compile_micros".to_string(), Json::int(self.compile_micros)),
            ("cache_hits".to_string(), Json::int(self.cache_hits)),
            ("cache_misses".to_string(), Json::int(self.cache_misses)),
        ])
    }

    fn from_json(json: &Json) -> Result<WireTotals, WireError> {
        Ok(WireTotals {
            jobs: need_u64(json, "jobs")?,
            steps: need_u64(json, "steps")?,
            unboxed_hits: need_u64(json, "unboxed_hits")?,
            fused_steps: need_u64(json, "fused_steps")?,
            ic_hits: need_u64(json, "ic_hits")?,
            ic_misses: need_u64(json, "ic_misses")?,
            compile_micros: need_u64(json, "compile_micros")?,
            cache_hits: need_u64(json, "cache_hits")?,
            cache_misses: need_u64(json, "cache_misses")?,
        })
    }
}

impl Response {
    /// Encodes to a JSON-lines payload (trailing `\n` included), ready
    /// for [`write_frame`].
    pub fn encode(&self) -> Vec<u8> {
        let json = match self {
            Response::Result {
                id,
                index,
                rendered,
                exception,
                cache_hit,
                attempts,
                timed_out,
                stats,
            } => obj(
                "result",
                Json::int(*id),
                vec![
                    ("index".to_string(), Json::int(*index)),
                    ("rendered".to_string(), Json::str(rendered)),
                    (
                        "exception".to_string(),
                        exception.as_ref().map_or(Json::Null, Json::str),
                    ),
                    ("cache_hit".to_string(), Json::Bool(*cache_hit)),
                    ("attempts".to_string(), Json::int(*attempts)),
                    ("timed_out".to_string(), Json::Bool(*timed_out)),
                    ("stats".to_string(), stats.to_json()),
                ],
            ),
            Response::JobError { id, index, message } => obj(
                "job_error",
                Json::int(*id),
                vec![
                    ("index".to_string(), Json::int(*index)),
                    ("message".to_string(), Json::str(message)),
                ],
            ),
            Response::Overloaded { id, index } => obj(
                "overloaded",
                Json::int(*id),
                vec![("index".to_string(), Json::int(*index))],
            ),
            Response::BatchDone { id, jobs, shed } => obj(
                "batch_done",
                Json::int(*id),
                vec![
                    ("jobs".to_string(), Json::int(*jobs)),
                    ("shed".to_string(), Json::int(*shed)),
                ],
            ),
            Response::Stats {
                id,
                workers,
                queue_depth,
                queue_cap,
                connections,
                requests,
                jobs_submitted,
                jobs_shed,
                protocol_errors,
                backend,
                cache,
                totals,
            } => obj(
                "stats",
                Json::int(*id),
                vec![
                    ("workers".to_string(), Json::int(*workers)),
                    ("queue_depth".to_string(), Json::int(*queue_depth)),
                    ("queue_cap".to_string(), Json::int(*queue_cap)),
                    ("connections".to_string(), Json::int(*connections)),
                    ("requests".to_string(), Json::int(*requests)),
                    ("jobs_submitted".to_string(), Json::int(*jobs_submitted)),
                    ("jobs_shed".to_string(), Json::int(*jobs_shed)),
                    ("protocol_errors".to_string(), Json::int(*protocol_errors)),
                    ("backend".to_string(), Json::str(backend)),
                    ("cache".to_string(), cache.to_json()),
                    ("totals".to_string(), totals.to_json()),
                ],
            ),
            Response::Pong { id } => obj("pong", Json::int(*id), vec![]),
            Response::ShuttingDown { id } => obj("shutting_down", Json::int(*id), vec![]),
            Response::Error { id, message } => obj(
                "error",
                id.map_or(Json::Null, Json::int),
                vec![("message".to_string(), Json::str(message))],
            ),
        };
        let mut out = json.to_string().into_bytes();
        out.push(b'\n');
        out
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] as for [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let json = parse_payload(payload)?;
        match require_type(&json)? {
            "result" => Ok(Response::Result {
                id: require_id(&json)?,
                index: need_u64(&json, "index")?,
                rendered: need_str(&json, "rendered")?,
                exception: match json.get("exception") {
                    None | Some(Json::Null) => None,
                    Some(Json::Str(s)) => Some(s.clone()),
                    Some(_) => return Err(WireError("'exception' must be a string".into())),
                },
                cache_hit: need_bool(&json, "cache_hit")?,
                attempts: need_u64(&json, "attempts")?,
                timed_out: need_bool(&json, "timed_out")?,
                stats: WireStats::from_json(
                    json.get("stats")
                        .ok_or_else(|| WireError("missing 'stats'".into()))?,
                )?,
            }),
            "job_error" => Ok(Response::JobError {
                id: require_id(&json)?,
                index: need_u64(&json, "index")?,
                message: need_str(&json, "message")?,
            }),
            "overloaded" => Ok(Response::Overloaded {
                id: require_id(&json)?,
                index: need_u64(&json, "index")?,
            }),
            "batch_done" => Ok(Response::BatchDone {
                id: require_id(&json)?,
                jobs: need_u64(&json, "jobs")?,
                shed: need_u64(&json, "shed")?,
            }),
            "stats" => Ok(Response::Stats {
                id: require_id(&json)?,
                workers: need_u64(&json, "workers")?,
                queue_depth: need_u64(&json, "queue_depth")?,
                queue_cap: need_u64(&json, "queue_cap")?,
                connections: need_u64(&json, "connections")?,
                requests: need_u64(&json, "requests")?,
                jobs_submitted: need_u64(&json, "jobs_submitted")?,
                jobs_shed: need_u64(&json, "jobs_shed")?,
                protocol_errors: need_u64(&json, "protocol_errors")?,
                backend: need_str(&json, "backend")?,
                cache: WireCacheStats::from_json(
                    json.get("cache")
                        .ok_or_else(|| WireError("missing 'cache'".into()))?,
                )?,
                totals: WireTotals::from_json(
                    json.get("totals")
                        .ok_or_else(|| WireError("missing 'totals'".into()))?,
                )?,
            }),
            "pong" => Ok(Response::Pong {
                id: require_id(&json)?,
            }),
            "shutting_down" => Ok(Response::ShuttingDown {
                id: require_id(&json)?,
            }),
            "error" => Ok(Response::Error {
                id: match json.get("id") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_u64()
                            .ok_or_else(|| WireError("'id' must be an integer".into()))?,
                    ),
                },
                message: need_str(&json, "message")?,
            }),
            other => Err(WireError(format!("unknown response type '{other}'"))),
        }
    }
}

fn parse_payload(payload: &[u8]) -> Result<Json, WireError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| WireError("payload is not valid UTF-8".into()))?;
    parse_json(text).map_err(|e| WireError(e.to_string()))
}

fn require_type(json: &Json) -> Result<&str, WireError> {
    json.get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError("missing 'type' field".into()))
}

fn require_id(json: &Json) -> Result<u64, WireError> {
    json.get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| WireError("missing or invalid 'id' field".into()))
}

fn field_u64(json: &Json, key: &str) -> Result<Option<u64>, WireError> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| WireError(format!("'{key}' must be a non-negative integer"))),
    }
}

fn need_u64(json: &Json, key: &str) -> Result<u64, WireError> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| WireError(format!("missing or invalid '{key}'")))
}

fn need_str(json: &Json, key: &str) -> Result<String, WireError> {
    json.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| WireError(format!("missing or invalid '{key}'")))
}

fn need_bool(json: &Json, key: &str) -> Result<bool, WireError> {
    json.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| WireError(format!("missing or invalid '{key}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) {
        let payload = req.encode();
        assert_eq!(payload.last(), Some(&b'\n'), "JSON-lines payload");
        let back = Request::decode(&payload).expect("decodes");
        assert_eq!(&back, req);
    }

    fn round_trip_response(resp: &Response) {
        let payload = resp.encode();
        assert_eq!(payload.last(), Some(&b'\n'));
        let back = Response::decode(&payload).expect("decodes");
        assert_eq!(&back, resp);
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(&Request::Batch {
            id: 7,
            exprs: vec!["1 + 1".into(), r#"error "Urk""#.into()],
            deadline_ms: Some(250),
            max_steps: None,
            max_heap: Some(1 << 20),
            max_stack: None,
        });
        round_trip_request(&Request::Batch {
            id: 0,
            exprs: vec![],
            deadline_ms: None,
            max_steps: None,
            max_heap: None,
            max_stack: None,
        });
        round_trip_request(&Request::Stats { id: 1 });
        round_trip_request(&Request::Ping { id: 2 });
        round_trip_request(&Request::Shutdown { id: 3 });
    }

    #[test]
    fn every_response_round_trips() {
        round_trip_response(&Response::Result {
            id: 9,
            index: 2,
            rendered: "(raise DivideByZero)".into(),
            exception: Some("DivideByZero".into()),
            cache_hit: false,
            attempts: 1,
            timed_out: false,
            stats: WireStats {
                steps: 42,
                allocations: 17,
                unboxed_hits: 3,
                fused_steps: 7,
                ic_hits: 5,
                ic_misses: 2,
                compile_ops: 0,
                compile_micros: 0,
                cache_hits: 0,
                cache_misses: 1,
                backend: "tree".into(),
                tier: "1".into(),
            },
        });
        round_trip_response(&Response::Result {
            id: 9,
            index: 0,
            rendered: "55".into(),
            exception: None,
            cache_hit: true,
            attempts: 0,
            timed_out: false,
            stats: WireStats::default(),
        });
        round_trip_response(&Response::JobError {
            id: 1,
            index: 4,
            message: "type error: …".into(),
        });
        round_trip_response(&Response::Overloaded { id: 1, index: 5 });
        round_trip_response(&Response::BatchDone {
            id: 1,
            jobs: 6,
            shed: 1,
        });
        round_trip_response(&Response::Stats {
            id: 2,
            workers: 4,
            queue_depth: 3,
            queue_cap: 256,
            connections: 2,
            requests: 10,
            jobs_submitted: 100,
            jobs_shed: 5,
            protocol_errors: 1,
            backend: "compiled".into(),
            cache: WireCacheStats {
                hits: 90,
                misses: 10,
                evictions: 2,
                insertions: 10,
                entries: 8,
                capacity: 64,
                hit_rate: 0.9,
            },
            totals: WireTotals {
                jobs: 100,
                steps: 12345,
                unboxed_hits: 678,
                fused_steps: 345,
                ic_hits: 21,
                ic_misses: 8,
                compile_micros: 90,
                cache_hits: 90,
                cache_misses: 10,
            },
        });
        round_trip_response(&Response::Pong { id: 3 });
        round_trip_response(&Response::ShuttingDown { id: 4 });
        round_trip_response(&Response::Error {
            id: None,
            message: "invalid JSON at byte 0: unexpected character".into(),
        });
        round_trip_response(&Response::Error {
            id: Some(12),
            message: "unknown request type 'frob'".into(),
        });
    }

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf = Vec::new();
        let a = Request::Ping { id: 1 }.encode();
        let b = Request::Stats { id: 2 }.encode();
        write_frame(&mut buf, &a).expect("writes");
        write_frame(&mut buf, &b).expect("writes");
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).expect("reads"), Some(a));
        assert_eq!(read_frame(&mut r).expect("reads"), Some(b));
        assert_eq!(read_frame(&mut r).expect("clean EOF"), None);
    }

    #[test]
    fn oversized_length_fields_are_rejected_without_reading() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(b"garbage");
        let mut r = io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::TooLarge(n)) if n == u32::MAX as usize
        ));
    }

    #[test]
    fn a_mid_frame_eof_is_an_error_not_a_clean_close() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_be_bytes());
        buf.extend_from_slice(b"1234"); // four of the promised eight
        let mut r = io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn malformed_payloads_decode_to_wire_errors() {
        for payload in [
            &b"not json"[..],
            b"{}",
            b"{\"type\":\"batch\",\"id\":1}",
            b"{\"type\":\"batch\",\"id\":1,\"exprs\":[3]}",
            b"{\"type\":\"frobnicate\",\"id\":1}",
            b"{\"type\":\"batch\",\"id\":-1,\"exprs\":[]}",
            b"{\"type\":\"batch\",\"id\":1,\"exprs\":[],\"deadline_ms\":\"soon\"}",
            b"\xff\xfe",
        ] {
            assert!(Request::decode(payload).is_err(), "{payload:?}");
        }
    }

    #[test]
    fn golden_frame_layout_is_stable() {
        // The exact bytes of a simple request — a cross-version protocol
        // commitment (field order is part of the contract).
        let req = Request::Batch {
            id: 1,
            exprs: vec!["1 + 1".into()],
            deadline_ms: Some(100),
            max_steps: None,
            max_heap: None,
            max_stack: None,
        };
        assert_eq!(
            String::from_utf8(req.encode()).expect("UTF-8"),
            "{\"type\":\"batch\",\"id\":1,\"exprs\":[\"1 + 1\"],\"deadline_ms\":100}\n"
        );
        let resp = Response::BatchDone {
            id: 1,
            jobs: 1,
            shed: 0,
        };
        assert_eq!(
            String::from_utf8(resp.encode()).expect("UTF-8"),
            "{\"type\":\"batch_done\",\"id\":1,\"jobs\":1,\"shed\":0}\n"
        );
        // And the frame header is the payload length, big-endian.
        let mut framed = Vec::new();
        write_frame(&mut framed, &resp.encode()).expect("writes");
        assert_eq!(&framed[..4], &(framed.len() as u32 - 4).to_be_bytes());
    }
}
