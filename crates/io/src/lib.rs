//! # urk-io
//!
//! The IO layer of the PLDI 1999 reproduction — §4.4's two-level design
//! made executable twice over:
//!
//! * [`run_machine`] performs `IO` actions on the graph-reduction machine,
//!   where `getException` is the §3.3 catch-mark/stack-trim implementation
//!   and the chosen exception is "the one encountered first";
//! * [`run_denot`] performs the same actions as a labelled transition
//!   system over *denotations*, where `getException (Bad s)` picks a
//!   member of the set through an explicit [`ExceptionOracle`] — including
//!   the `NonTermination` self-loop and §5.3's fictitious exceptions for
//!   `⊥`.
//!
//! Together they witness the paper's central confinement claim: all the
//! non-determinism lives in the IO layer, and the machine's behaviour is
//! one of the semantic runner's possible behaviours.

pub mod batch;
pub mod chaos;
pub mod concurrent;
pub mod denot_run;
pub mod json;
pub mod machine_run;
pub mod oracle;
pub mod trace;
pub mod wire;

pub use batch::{BatchOutcome, SharedBatch};
pub use chaos::{
    chaos_run, chaos_run_compiled, chaos_run_with_plan, chaos_run_with_plan_compiled, ChaosReport,
};
pub use concurrent::{run_concurrent, ConcurrentOutcome, ThreadResult};
pub use denot_run::{run_denot, AsyncSchedule, SemIoResult, SemRunOutcome};
pub use json::{parse_json, Json, JsonError};
pub use machine_run::{run_machine, run_machine_node, IoResult, RunOutcome};
pub use oracle::{ExceptionOracle, MinOracle, OracleChoice, SeededOracle};
pub use trace::{Event, Input, StringInput, Trace};
pub use wire::{
    read_frame, write_frame, FrameError, Request, Response, WireCacheStats, WireError, WireStats,
    WireTotals, MAX_FRAME_LEN,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::rc::Rc;
    use urk_denot::{DenotEvaluator, Env, Thunk};
    use urk_machine::{MEnv, Machine, MachineConfig, OrderPolicy};
    use urk_syntax::core::Expr;
    use urk_syntax::Exception;
    use urk_syntax::{desugar_expr, parse_expr_src, DataEnv};

    fn core_of(src: &str) -> Rc<Expr> {
        let data = DataEnv::new();
        Rc::new(desugar_expr(&parse_expr_src(src).expect("parses"), &data).expect("desugars"))
    }

    fn run_m(src: &str, input: &str) -> RunOutcome {
        run_m_config(src, input, MachineConfig::default())
    }

    fn run_m_config(src: &str, input: &str, config: MachineConfig) -> RunOutcome {
        let mut m = Machine::new(config);
        let mut inp = StringInput::new(input);
        run_machine(&mut m, &MEnv::empty(), core_of(src), &mut inp)
    }

    fn run_d(src: &str, input: &str, seed: u64) -> SemRunOutcome {
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        let action = Thunk::pending(core_of(src), Env::empty());
        let mut inp = StringInput::new(input);
        let mut oracle = SeededOracle::new(seed);
        run_denot(
            &ev,
            action,
            &mut inp,
            &mut oracle,
            &AsyncSchedule::default(),
        )
    }

    // ------------------------------------------------------------------
    // Basic transitions (machine runner)
    // ------------------------------------------------------------------

    #[test]
    fn echo_program_from_the_paper() {
        // main = getChar >>= \ch -> putChar ch >>= \_ -> return ()
        let out = run_m(r"getChar >>= \ch -> putChar ch >>= \u -> return u", "x");
        assert!(matches!(out.result, IoResult::Done(ref s) if s == "Unit"));
        assert_eq!(out.trace.to_string(), "?x !x");
    }

    #[test]
    fn do_notation_echo_twice() {
        let out = run_m(
            "do { a <- getChar; b <- getChar; putChar b; putChar a; return 0 }",
            "hi",
        );
        assert!(matches!(out.result, IoResult::Done(ref s) if s == "0"));
        assert_eq!(out.trace.output(), "ih");
    }

    #[test]
    fn put_str_and_pure_results() {
        let out = run_m(r#"putStr "Urk" >> return 42"#, "");
        assert!(matches!(out.result, IoResult::Done(ref s) if s == "42"));
        assert_eq!(out.trace.output(), "Urk");
    }

    #[test]
    fn out_of_input_is_reported() {
        let out = run_m("getChar", "");
        assert!(matches!(out.result, IoResult::OutOfInput));
    }

    // ------------------------------------------------------------------
    // getException on the machine (§3.3 / §3.5)
    // ------------------------------------------------------------------

    #[test]
    fn get_exception_catches_and_scrutinises() {
        let src = r#"getException (1/0) >>= \v ->
                       case v of
                         { Bad e -> putStr "caught"
                         ; OK x -> putStr "no" }"#;
        let out = run_m(src, "");
        assert!(matches!(out.result, IoResult::Done(_)));
        assert_eq!(out.trace.output(), "caught");
        assert!(out
            .trace
            .events()
            .contains(&Event::ChoseException(Exception::DivideByZero)));
    }

    #[test]
    fn get_exception_wraps_normal_values() {
        let out = run_m("getException (6 * 7)", "");
        assert!(matches!(out.result, IoResult::Done(ref s) if s == "OK 42"));
    }

    #[test]
    fn machine_representative_depends_on_order_policy() {
        let src = r#"getException ((1/0) + raise (UserError "Urk"))"#;
        let l = run_m_config(src, "", MachineConfig::default());
        let r = run_m_config(
            src,
            "",
            MachineConfig {
                order: OrderPolicy::RightToLeft,
                ..MachineConfig::default()
            },
        );
        let IoResult::Done(ld) = l.result else {
            panic!()
        };
        let IoResult::Done(rd) = r.result else {
            panic!()
        };
        assert_eq!(ld, "Bad DivideByZero");
        assert_eq!(rd, "Bad (UserError \"Urk\")");
    }

    #[test]
    fn uncaught_exception_aborts_the_program() {
        let out = run_m("putStr (showInt (1/0))", "");
        assert!(matches!(
            out.result,
            IoResult::Uncaught(Exception::DivideByZero)
        ));
    }

    #[test]
    fn main_itself_exceptional_is_uncaught() {
        let out = run_m(r#"raise (UserError "Urk")"#, "");
        assert!(matches!(
            out.result,
            IoResult::Uncaught(Exception::UserError(_))
        ));
    }

    // ------------------------------------------------------------------
    // §5.1 async events through getException (machine)
    // ------------------------------------------------------------------

    #[test]
    fn async_interrupt_lands_in_get_exception() {
        let src = r#"getException (let f = \n -> if n == 0 then 1 else f (n - 1) in f 1000000)"#;
        let out = run_m_config(
            src,
            "",
            MachineConfig {
                event_schedule: vec![(5_000, Exception::Interrupt)],
                ..MachineConfig::default()
            },
        );
        let IoResult::Done(d) = &out.result else {
            panic!("{:?}", out.result)
        };
        assert_eq!(d, "Bad Interrupt");
        assert!(out
            .trace
            .events()
            .contains(&Event::AsyncDelivered(Exception::Interrupt)));
    }

    // ------------------------------------------------------------------
    // The semantic LTS (§4.4)
    // ------------------------------------------------------------------

    #[test]
    fn semantic_runner_echoes() {
        let out = run_d(r"getChar >>= \c -> putChar c", "z", 0);
        assert!(matches!(out.result, SemIoResult::Done(ref s) if s == "Unit"));
        assert_eq!(out.trace.to_string(), "?z !z");
    }

    #[test]
    fn semantic_get_exception_chooses_from_the_set() {
        // Over many seeds, the oracle should return both members.
        let src = r#"getException ((1/0) + raise (UserError "Urk"))"#;
        let results: BTreeSet<String> = (0..32)
            .map(|seed| match run_d(src, "", seed).result {
                SemIoResult::Done(s) => s,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(
            results,
            BTreeSet::from([
                "Bad DivideByZero".to_string(),
                "Bad (UserError \"Urk\")".to_string()
            ])
        );
    }

    #[test]
    fn machine_choice_is_a_member_of_the_semantic_set() {
        // The implementation's representative must be one of the
        // semantically possible choices — the central soundness link.
        let src = r#"getException ((1/0) + raise (UserError "Urk"))"#;
        let IoResult::Done(machine_choice) = run_m(src, "").result else {
            panic!()
        };
        let semantic: BTreeSet<String> = (0..32)
            .map(|seed| match run_d(src, "", seed).result {
                SemIoResult::Done(s) => s,
                other => panic!("{other:?}"),
            })
            .collect();
        assert!(semantic.contains(&machine_choice));
    }

    #[test]
    fn get_exception_of_loop_diverges_or_lies() {
        // §5.3: getException loop may diverge — or return a quite
        // fictitious exception.
        let data = DataEnv::new();
        let ev = DenotEvaluator::with_config(
            &data,
            urk_denot::DenotConfig {
                fuel: 50_000,
                ..Default::default()
            },
        );
        let action = Thunk::pending(
            Rc::new(Expr::con("GetException", [Expr::diverge()])),
            Env::empty(),
        );
        let mut inp = StringInput::new("");
        let mut honest = SeededOracle::new(0);
        let out = run_denot(
            &ev,
            action.clone(),
            &mut inp,
            &mut honest,
            &AsyncSchedule::default(),
        );
        assert!(matches!(out.result, SemIoResult::Diverged));

        let ev2 = DenotEvaluator::with_config(
            &data,
            urk_denot::DenotConfig {
                fuel: 50_000,
                ..Default::default()
            },
        );
        let action2 = Thunk::pending(
            Rc::new(Expr::con("GetException", [Expr::diverge()])),
            Env::empty(),
        );
        let mut liar = SeededOracle::with_fictitious(0, Exception::DivideByZero);
        let out2 = run_denot(
            &ev2,
            action2,
            &mut inp,
            &mut liar,
            &AsyncSchedule::default(),
        );
        assert!(
            matches!(out2.result, SemIoResult::Done(ref s) if s == "Bad DivideByZero"),
            "{:?}",
            out2.result
        );
    }

    #[test]
    fn semantic_async_schedule_preempts_values() {
        // getException 42 can still return Bad Interrupt when the event
        // arrives (§5.1: "v might not be an exceptional value").
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        let action = Thunk::pending(core_of("getException 42"), Env::empty());
        let mut inp = StringInput::new("");
        let mut oracle = MinOracle;
        let schedule = AsyncSchedule {
            events: vec![(0, Exception::Interrupt)],
        };
        let out = run_denot(&ev, action, &mut inp, &mut oracle, &schedule);
        assert!(matches!(out.result, SemIoResult::Done(ref s) if s == "Bad Interrupt"));
    }

    #[test]
    fn semantic_put_char_of_exceptional_value_is_uncaught() {
        let out = run_d("putChar (chr (1/0))", "", 0);
        let SemIoResult::Uncaught(set) = out.result else {
            panic!("{:?}", out.result)
        };
        assert!(set.contains(&Exception::DivideByZero));
    }

    #[test]
    fn semantic_put_str_of_bottom_diverges() {
        let data = DataEnv::new();
        let ev = DenotEvaluator::with_config(
            &data,
            urk_denot::DenotConfig {
                fuel: 20_000,
                ..Default::default()
            },
        );
        let action = Thunk::pending(
            Rc::new(Expr::con("PutStr", [Expr::diverge()])),
            Env::empty(),
        );
        let mut inp = StringInput::new("");
        let mut oracle = MinOracle;
        let out = run_denot(
            &ev,
            action,
            &mut inp,
            &mut oracle,
            &AsyncSchedule::default(),
        );
        assert!(matches!(out.result, SemIoResult::Diverged));
    }

    #[test]
    fn semantic_out_of_input() {
        let out = run_d("getChar", "", 0);
        assert!(matches!(out.result, SemIoResult::OutOfInput));
    }

    #[test]
    fn min_oracle_makes_the_semantic_runner_deterministic() {
        let src = r#"getException ((1/0) + raise (UserError "Urk"))"#;
        let data = DataEnv::new();
        let run = || {
            let ev = DenotEvaluator::new(&data);
            let action = Thunk::pending(core_of(src), Env::empty());
            let mut inp = StringInput::new("");
            let mut oracle = MinOracle;
            run_denot(
                &ev,
                action,
                &mut inp,
                &mut oracle,
                &AsyncSchedule::default(),
            )
        };
        let a = run();
        let b = run();
        let (SemIoResult::Done(x), SemIoResult::Done(y)) = (a.result, b.result) else {
            panic!()
        };
        assert_eq!(x, y);
        assert_eq!(x, "Bad DivideByZero"); // least member in the Ord
    }

    #[test]
    fn async_schedule_targets_the_nth_get_exception() {
        // The event fires at the second getException only.
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        let action = Thunk::pending(
            core_of(
                r"getException 1 >>= \a ->
                  getException 2 >>= \b -> return (a, b)",
            ),
            Env::empty(),
        );
        let mut inp = StringInput::new("");
        let mut oracle = MinOracle;
        let schedule = AsyncSchedule {
            events: vec![(1, Exception::Timeout)],
        };
        let out = run_denot(&ev, action, &mut inp, &mut oracle, &schedule);
        let SemIoResult::Done(v) = out.result else {
            panic!("{:?}", out.result)
        };
        assert_eq!(v, "Pair (OK 1) (Bad Timeout)");
    }

    // ------------------------------------------------------------------
    // §3.5: beta reduction is valid at the IO level
    // ------------------------------------------------------------------

    #[test]
    fn beta_reduction_preserves_outcome_distributions() {
        // let x = (1/0) + error "Urk"
        // in getException x >>= \v1 -> getException x >>= \v2 -> return (v1, v2)
        let shared = r#"let x = (1/0) + raise (UserError "Urk")
                        in getException x >>= \v1 ->
                           getException x >>= \v2 -> return (v1, v2)"#;
        let substituted = r#"getException ((1/0) + raise (UserError "Urk")) >>= \v1 ->
                             getException ((1/0) + raise (UserError "Urk")) >>= \v2 ->
                             return (v1, v2)"#;
        let outcomes = |src: &str| -> BTreeSet<String> {
            (0..64)
                .map(|seed| match run_d(src, "", seed).result {
                    SemIoResult::Done(s) => s,
                    other => panic!("{other:?}"),
                })
                .collect()
        };
        let a = outcomes(shared);
        let b = outcomes(substituted);
        // The paper: "whether or not this substitution is made,
        // getException will be performed twice, making an independent
        // non-deterministic choice each time". Same outcome sets — four
        // combinations each.
        assert_eq!(a, b);
        assert_eq!(a.len(), 4, "{a:?}");
    }

    #[test]
    fn machine_runner_gives_equal_components_under_sharing_and_substitution() {
        // On the deterministic machine both versions agree (and both
        // components match), because the policy fixes the representative.
        let shared = r#"let x = (1/0) + raise (UserError "Urk")
                        in getException x >>= \v1 ->
                           getException x >>= \v2 -> return (v1, v2)"#;
        let substituted = r#"getException ((1/0) + raise (UserError "Urk")) >>= \v1 ->
                             getException ((1/0) + raise (UserError "Urk")) >>= \v2 ->
                             return (v1, v2)"#;
        let IoResult::Done(a) = run_m(shared, "").result else {
            panic!()
        };
        let IoResult::Done(b) = run_m(substituted, "").result else {
            panic!()
        };
        assert_eq!(a, b);
        assert_eq!(a, "Pair (Bad DivideByZero) (Bad DivideByZero)");
    }

    #[test]
    fn poisoned_thunks_keep_get_exception_consistent() {
        // Under sharing, the machine's second getException sees the
        // poisoned thunk and reports the *same* exception even under a
        // randomising policy.
        let shared = r#"let x = (1/0) + raise (UserError "Urk")
                        in getException x >>= \v1 ->
                           getException x >>= \v2 -> return (v1, v2)"#;
        for seed in 0..8 {
            let out = run_m_config(
                shared,
                "",
                MachineConfig {
                    order: OrderPolicy::Seeded(seed),
                    ..MachineConfig::default()
                },
            );
            let IoResult::Done(s) = out.result else {
                panic!()
            };
            assert!(
                s == "Pair (Bad DivideByZero) (Bad DivideByZero)"
                    || s == "Pair (Bad (UserError \"Urk\")) (Bad (UserError \"Urk\"))",
                "components must agree under sharing: {s}"
            );
        }
    }
}
