//! Oracles for `getException`'s non-deterministic choice.
//!
//! §3.5: "`getException` is free (although absolutely not required) to
//! consult some external oracle" when choosing which member of the
//! exception set to return. The *semantic* runner makes that choice
//! explicit through [`ExceptionOracle`]; the *machine* runner never needs
//! one — its choice is whichever exception the stack-trimming
//! implementation encountered first (the "single representative" trick).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use urk_syntax::Exception;

use urk_denot::ExnSet;

/// What the oracle decided for an exceptional value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OracleChoice {
    /// Return `Bad x` for this member.
    Exception(Exception),
    /// Take the §4.4 self-loop: `getException (Bad s) → getException (Bad
    /// s)` when `NonTermination ∈ s` — i.e. diverge.
    Diverge,
}

/// Chooses a member of an exception set.
pub trait ExceptionOracle {
    /// Chooses from `s`, which is guaranteed non-empty or `All`.
    fn choose(&mut self, s: &ExnSet) -> OracleChoice;
}

/// A seeded pseudo-random oracle.
///
/// For a finite set it picks a uniformly random member. For `⊥` (the set of
/// all exceptions) it diverges by default — or, when `fictitious` is set,
/// returns that exception, exhibiting §5.3's observation that
/// `getException loop` is "justified in returning `Bad DivideByZero`, or
/// some other quite fictitious exception".
#[derive(Clone, Debug)]
pub struct SeededOracle {
    rng: SmallRng,
    /// The fictitious exception to report for `⊥`, if any.
    pub fictitious: Option<Exception>,
}

impl SeededOracle {
    /// Creates an oracle from a seed.
    pub fn new(seed: u64) -> SeededOracle {
        SeededOracle {
            rng: SmallRng::seed_from_u64(seed),
            fictitious: None,
        }
    }

    /// Creates an oracle that reports `exn` for `⊥` instead of diverging.
    pub fn with_fictitious(seed: u64, exn: Exception) -> SeededOracle {
        SeededOracle {
            rng: SmallRng::seed_from_u64(seed),
            fictitious: Some(exn),
        }
    }
}

impl ExceptionOracle for SeededOracle {
    fn choose(&mut self, s: &ExnSet) -> OracleChoice {
        match s.members() {
            Some(members) if !members.is_empty() => {
                let i = self.rng.gen_range(0..members.len());
                OracleChoice::Exception(members.get(i).expect("index in range").clone())
            }
            Some(_) => {
                // Bad {} cannot be the denotation of any term (§4.1); if it
                // ever reaches getException something is deeply wrong.
                unreachable!("getException applied to Bad {{}}")
            }
            None => match &self.fictitious {
                Some(e) => OracleChoice::Exception(e.clone()),
                None => OracleChoice::Diverge,
            },
        }
    }
}

/// A deterministic oracle: always the least member (or divergence for ⊥).
#[derive(Clone, Debug, Default)]
pub struct MinOracle;

impl ExceptionOracle for MinOracle {
    fn choose(&mut self, s: &ExnSet) -> OracleChoice {
        match s.some_member() {
            Some(e) => OracleChoice::Exception(e.clone()),
            None if s.is_all() => OracleChoice::Diverge,
            None => unreachable!("getException applied to Bad {{}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_oracle_is_reproducible_and_covers_the_set() {
        let s = ExnSet::from_iter([
            Exception::DivideByZero,
            Exception::Overflow,
            Exception::UserError("Urk".into()),
        ]);
        let run = |seed: u64| {
            let mut o = SeededOracle::new(seed);
            (0..8).map(|_| o.choose(&s)).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        let mut seen = std::collections::BTreeSet::new();
        let mut o = SeededOracle::new(0);
        for _ in 0..64 {
            if let OracleChoice::Exception(e) = o.choose(&s) {
                seen.insert(e.to_string());
            }
        }
        assert_eq!(seen.len(), 3, "all members should eventually be chosen");
    }

    #[test]
    fn bottom_diverges_unless_fictitious() {
        let mut o = SeededOracle::new(0);
        assert_eq!(o.choose(&ExnSet::bottom()), OracleChoice::Diverge);
        let mut f = SeededOracle::with_fictitious(0, Exception::DivideByZero);
        assert_eq!(
            f.choose(&ExnSet::bottom()),
            OracleChoice::Exception(Exception::DivideByZero)
        );
    }

    #[test]
    fn min_oracle_is_deterministic() {
        let s = ExnSet::from_iter([Exception::Overflow, Exception::DivideByZero]);
        let mut o = MinOracle;
        assert_eq!(
            o.choose(&s),
            OracleChoice::Exception(Exception::DivideByZero)
        );
        assert_eq!(o.choose(&ExnSet::bottom()), OracleChoice::Diverge);
    }
}
