//! The *operational* IO runner: performs an `IO` value on the
//! graph-reduction machine.
//!
//! This is the implementation §3.5 promises: "the stack-trimming
//! implementation does not have to change. The set of exceptions
//! associated with an exceptional value is represented by a single member,
//! namely the exception that happens to be encountered first." So
//! `getException` here simply evaluates its argument under a catch mark
//! and reports whatever exception surfaces — no oracle required.

use std::rc::Rc;

use urk_machine::{HValue, MEnv, Machine, MachineError, NodeId, Outcome, Whnf};
use urk_syntax::core::Expr;
use urk_syntax::{Exception, Symbol};

use crate::trace::{Event, Input, Trace};

/// How a program run ended.
#[derive(Clone, Debug)]
pub enum IoResult {
    /// `main` performed to completion; the payload is the final `Return`ed
    /// value, rendered.
    Done(String),
    /// An exception escaped with no handler — "an uncaught exception,
    /// which the implementation should report" (§4.4).
    Uncaught(Exception),
    /// `getChar` at end of input.
    OutOfInput,
    /// The machine hit a hard limit.
    MachineError(MachineError),
}

impl IoResult {
    /// True if the run completed normally.
    pub fn is_done(&self) -> bool {
        matches!(self, IoResult::Done(_))
    }
}

/// One run's result and its observable trace.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    pub result: IoResult,
    pub trace: Trace,
}

/// Performs the `IO` action denoted by `action` (typically `main`).
///
/// # Examples
///
/// ```
/// use std::rc::Rc;
/// use urk_io::{run_machine, StringInput, IoResult};
/// use urk_machine::{Machine, MachineConfig, MEnv};
/// use urk_syntax::{parse_expr_src, desugar_expr, DataEnv};
///
/// let data = DataEnv::new();
/// let action = desugar_expr(
///     &parse_expr_src(r"getChar >>= \c -> putChar c")?,
///     &data,
/// )?;
/// let mut machine = Machine::new(MachineConfig::default());
/// let mut input = StringInput::new("x");
/// let out = run_machine(&mut machine, &MEnv::empty(), Rc::new(action), &mut input);
/// assert!(matches!(out.result, IoResult::Done(_)));
/// assert_eq!(out.trace.to_string(), "?x !x");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_machine(
    machine: &mut Machine,
    env: &MEnv,
    action: Rc<Expr>,
    input: &mut dyn Input,
) -> RunOutcome {
    let root = machine.alloc_expr(&action, env);
    run_machine_node(machine, root, input)
}

/// Performs an `IO` action already in the heap.
pub fn run_machine_node(machine: &mut Machine, root: NodeId, input: &mut dyn Input) -> RunOutcome {
    let mut trace = Trace::new();
    // Pending continuations from `Bind` (innermost last), held as *root
    // indices*: a minor collection rewrites the machine's root slots in
    // place when nursery cells move, so the runner re-reads each node
    // through its index instead of caching a raw id across evaluations.
    let mut konts: Vec<usize> = Vec::new();
    let mut current = machine.push_root(root);
    let mut rooted: usize = 1;

    loop {
        // Force the action itself to WHNF. An exception *here* means the
        // action value was exceptional (e.g. `main = raise E`): uncaught.
        let cur = machine.root(current);
        let whnf = match machine.eval_node(cur, false) {
            Ok(Outcome::Value(n)) => n,
            Ok(Outcome::Uncaught(e)) | Ok(Outcome::Caught(e)) => {
                return finish(machine, rooted, IoResult::Uncaught(e), trace)
            }
            Err(e) => return finish(machine, rooted, IoResult::MachineError(e), trace),
        };
        let Some(Whnf::Con(con, fields)) = machine.heap().whnf(whnf) else {
            panic!("performed a non-IO value (ill-typed program)");
        };
        let (con, fields) = (con.as_str(), fields.to_vec());

        // The value an action step produced, handed to the continuation.
        let produced: NodeId = match con.as_str() {
            "Bind" => {
                konts.push(machine.push_root(fields[1]));
                current = machine.push_root(fields[0]);
                rooted += 2;
                continue;
            }
            "Return" => fields[0],
            "GetChar" => match input.get_char() {
                Some(c) => {
                    trace.push(Event::Input(c));
                    alloc_value(machine, HValue::Char(c))
                }
                None => return finish(machine, rooted, IoResult::OutOfInput, trace),
            },
            "PutChar" => {
                // Forcing the character may raise; with no handler in
                // sight, that is an uncaught exception.
                match machine.eval_node(fields[0], false) {
                    Ok(Outcome::Value(n)) => {
                        let Some(Whnf::Char(c)) = machine.heap().whnf(n) else {
                            panic!("putChar of a non-character (ill-typed program)");
                        };
                        trace.push(Event::Output(c));
                        alloc_value(machine, HValue::Con(Symbol::intern("Unit"), vec![]))
                    }
                    Ok(Outcome::Uncaught(e)) | Ok(Outcome::Caught(e)) => {
                        return finish(machine, rooted, IoResult::Uncaught(e), trace)
                    }
                    Err(e) => return finish(machine, rooted, IoResult::MachineError(e), trace),
                }
            }
            "PutStr" => match machine.eval_node(fields[0], false) {
                Ok(Outcome::Value(n)) => {
                    let Some(Whnf::Str(s)) = machine.heap().whnf(n) else {
                        panic!("putStr of a non-string (ill-typed program)");
                    };
                    trace.push(Event::OutputStr(s.to_string()));
                    alloc_value(machine, HValue::Con(Symbol::intern("Unit"), vec![]))
                }
                Ok(Outcome::Uncaught(e)) | Ok(Outcome::Caught(e)) => {
                    return finish(machine, rooted, IoResult::Uncaught(e), trace)
                }
                Err(e) => return finish(machine, rooted, IoResult::MachineError(e), trace),
            },
            "GetException" => {
                // §3.3: mark the stack, evaluate the argument.
                match machine.eval_node(fields[0], true) {
                    Ok(Outcome::Value(n)) => {
                        alloc_value(machine, HValue::Con(Symbol::intern("OK"), vec![n]))
                    }
                    Ok(Outcome::Caught(exn)) => {
                        trace.push(if exn.is_asynchronous() {
                            Event::AsyncDelivered(exn.clone())
                        } else {
                            Event::ChoseException(exn.clone())
                        });
                        let ev = machine.alloc_exception_value(&exn);
                        alloc_value(machine, HValue::Con(Symbol::intern("Bad"), vec![ev]))
                    }
                    Ok(Outcome::Uncaught(exn)) => {
                        // Cannot happen: the catch mark is at the episode
                        // base. Defensive:
                        return finish(machine, rooted, IoResult::Uncaught(exn), trace);
                    }
                    Err(e) => return finish(machine, rooted, IoResult::MachineError(e), trace),
                }
            }
            other => panic!("performed an unknown IO constructor '{other}'"),
        };

        match konts.pop() {
            None => {
                let rendered = machine.render(produced, 32);
                return finish(machine, rooted, IoResult::Done(rendered), trace);
            }
            Some(k_idx) => {
                // Re-read the continuation through its root slot: the id
                // cached at push time may have been rewritten by a minor
                // collection during the evaluations above.
                let k = machine.root(k_idx);
                let next = apply_node(machine, k, produced);
                current = machine.push_root(next);
                rooted += 1;
            }
        }
    }
}

/// Unregisters this run's roots and packages the outcome.
fn finish(machine: &mut Machine, rooted: usize, result: IoResult, trace: Trace) -> RunOutcome {
    for _ in 0..rooted {
        machine.pop_root();
    }
    RunOutcome { result, trace }
}

fn alloc_value(machine: &mut Machine, v: HValue) -> NodeId {
    // Machine has no public alloc-value; route through a thunk-free
    // expression would be wasteful, so we expose it via alloc_expr of a
    // literal... instead, use the dedicated helper below.
    machine.alloc_hvalue(v)
}

/// Builds the application node `k v` in the heap.
fn apply_node(machine: &mut Machine, k: NodeId, v: NodeId) -> NodeId {
    let fk = Symbol::fresh("k");
    let fv = Symbol::fresh("v");
    let expr = Rc::new(Expr::App(Rc::new(Expr::Var(fk)), Rc::new(Expr::Var(fv))));
    let env = MEnv::empty().bind(fk, k).bind(fv, v);
    machine.alloc_thunk(expr, env)
}
