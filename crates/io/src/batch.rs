//! Submission-order result collection for batched evaluation.
//!
//! A worker pool completes jobs in whatever order scheduling happens to
//! produce; callers care about the order they *submitted*. This is the
//! serving-layer face of the paper's central claim: the choice of
//! representative exception (and of completion interleaving) is confined
//! non-determinism — a [`BatchOutcome`] nails each result to its
//! submission index so the observable answer is a pure function of the
//! submitted batch, not of which worker got there first.
//!
//! [`BatchOutcome`] is the plain single-threaded collector;
//! [`SharedBatch`] wraps it in a `Mutex`/`Condvar` pair so pool workers
//! can fulfil slots from any thread while the submitter blocks in
//! [`SharedBatch::wait`] — or streams results one submission index at a
//! time with [`SharedBatch::take`], which is how the network tier sends
//! each answer as soon as it (and everything before it) is ready.
//!
//! Lock poisoning is recovered, not propagated: a slot table is a plain
//! value (no invariant spans the lock), so if a fulfilling thread dies
//! mid-call the next locker resumes with the state as it stands rather
//! than cascading the panic into every waiter.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Recovers the guard from a poisoned lock: the protected state is a
/// plain value, safe to resume (see the module docs).
fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// Results indexed by submission order, fulfilled in completion order.
#[derive(Debug)]
pub struct BatchOutcome<T> {
    slots: Vec<Option<T>>,
    remaining: usize,
}

impl<T> BatchOutcome<T> {
    /// A batch expecting `n` results.
    pub fn new(n: usize) -> BatchOutcome<T> {
        BatchOutcome {
            slots: (0..n).map(|_| None).collect(),
            remaining: n,
        }
    }

    /// Number of submitted jobs.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Records the result for submission index `index`. Returns `false`
    /// (dropping `value`) if the index is out of range or already
    /// fulfilled — the first completion wins, so a racing duplicate
    /// cannot overwrite an observed result.
    pub fn fulfil(&mut self, index: usize, value: T) -> bool {
        match self.slots.get_mut(index) {
            Some(slot @ None) => {
                *slot = Some(value);
                self.remaining -= 1;
                true
            }
            _ => false,
        }
    }

    /// True once every slot is fulfilled.
    pub fn is_complete(&self) -> bool {
        self.remaining == 0
    }

    /// The result at a submission index, if fulfilled.
    pub fn get(&self, index: usize) -> Option<&T> {
        self.slots.get(index).and_then(|s| s.as_ref())
    }

    /// Consumes the batch, returning results in submission order.
    ///
    /// # Panics
    ///
    /// Panics if the batch is incomplete — callers gate on
    /// [`BatchOutcome::is_complete`] (or go through [`SharedBatch::wait`],
    /// which blocks until completion).
    pub fn into_ordered(self) -> Vec<T> {
        assert!(self.remaining == 0, "batch is incomplete");
        self.slots
            .into_iter()
            .map(|s| s.expect("complete batch has no empty slot"))
            .collect()
    }
}

/// A [`BatchOutcome`] shared between a submitter and pool workers.
///
/// Cloning shares the underlying batch. Exactly one caller should
/// [`wait`](SharedBatch::wait) — it drains the slots on completion.
#[derive(Debug)]
pub struct SharedBatch<T> {
    inner: Arc<(Mutex<BatchOutcome<T>>, Condvar)>,
}

impl<T> Clone for SharedBatch<T> {
    fn clone(&self) -> SharedBatch<T> {
        SharedBatch {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> SharedBatch<T> {
    /// A shared batch expecting `n` results.
    pub fn new(n: usize) -> SharedBatch<T> {
        SharedBatch {
            inner: Arc::new((Mutex::new(BatchOutcome::new(n)), Condvar::new())),
        }
    }

    /// Fulfils one slot (any thread); wakes every waiter (the batch
    /// waiter checks completion, a [`SharedBatch::take`] streamer checks
    /// its index). Returns `false` for an out-of-range or duplicate
    /// index.
    pub fn fulfil(&self, index: usize, value: T) -> bool {
        let (lock, cond) = &*self.inner;
        let mut batch = relock(lock);
        let ok = batch.fulfil(index, value);
        if ok {
            cond.notify_all();
        }
        ok
    }

    /// Blocks until every slot is fulfilled, then returns the results in
    /// submission order, draining the slots (single-consumer).
    pub fn wait(&self) -> Vec<T> {
        let (lock, cond) = &*self.inner;
        let mut batch = relock(lock);
        while !batch.is_complete() {
            batch = cond.wait(batch).unwrap_or_else(|e| e.into_inner());
        }
        drain(&mut batch)
    }

    /// Blocks until the slot at `index` is fulfilled, then takes its
    /// value. This is the streaming consumer: calling it for
    /// `0, 1, …, n-1` yields results in submission order, each as soon
    /// as it and its predecessors are ready, without waiting for the
    /// whole batch. Mixing `take` with [`SharedBatch::wait`] on the same
    /// batch is not supported (both consume slots).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or was already taken.
    pub fn take(&self, index: usize) -> T {
        let (lock, cond) = &*self.inner;
        let mut batch = relock(lock);
        assert!(index < batch.slots.len(), "take: index out of range");
        loop {
            if batch.remaining == 0 || batch.slots[index].is_some() {
                return batch.slots[index]
                    .take()
                    .expect("take: slot already consumed");
            }
            batch = cond.wait(batch).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// As [`SharedBatch::wait`] with a deadline; `None` if the batch is
    /// still incomplete when it passes (no slots are drained).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Vec<T>> {
        let (lock, cond) = &*self.inner;
        let deadline = std::time::Instant::now() + timeout;
        let mut batch = relock(lock);
        while !batch.is_complete() {
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = cond
                .wait_timeout(batch, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            batch = guard;
        }
        Some(drain(&mut batch))
    }
}

fn drain<T>(batch: &mut BatchOutcome<T>) -> Vec<T> {
    batch.remaining = batch.slots.len();
    batch
        .slots
        .iter_mut()
        .map(|s| s.take().expect("complete batch has no empty slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let mut b = BatchOutcome::new(3);
        assert!(!b.is_complete());
        assert!(b.fulfil(2, "c"));
        assert!(b.fulfil(0, "a"));
        assert!(b.fulfil(1, "b"));
        assert!(b.is_complete());
        assert_eq!(b.into_ordered(), vec!["a", "b", "c"]);
    }

    #[test]
    fn first_completion_wins_and_bad_indices_are_rejected() {
        let mut b = BatchOutcome::new(2);
        assert!(b.fulfil(0, 1));
        assert!(!b.fulfil(0, 2), "duplicate fulfilment must be rejected");
        assert!(!b.fulfil(5, 3), "out-of-range index must be rejected");
        assert!(b.fulfil(1, 4));
        assert_eq!(b.into_ordered(), vec![1, 4]);
    }

    #[test]
    fn empty_batches_are_trivially_complete() {
        let b: BatchOutcome<i32> = BatchOutcome::new(0);
        assert!(b.is_complete());
        assert!(b.is_empty());
        assert_eq!(b.into_ordered(), Vec::<i32>::new());
        assert_eq!(SharedBatch::<i32>::new(0).wait(), Vec::<i32>::new());
    }

    #[test]
    fn shared_batch_collects_across_threads() {
        let batch: SharedBatch<usize> = SharedBatch::new(8);
        let workers: Vec<_> = (0..8)
            .map(|i| {
                let b = batch.clone();
                std::thread::spawn(move || b.fulfil(i, i * 10))
            })
            .collect();
        let out = batch.wait();
        assert_eq!(out, (0..8).map(|i| i * 10).collect::<Vec<_>>());
        for w in workers {
            assert!(w.join().expect("no panic"));
        }
    }

    #[test]
    fn take_streams_results_in_submission_order() {
        let batch: SharedBatch<usize> = SharedBatch::new(4);
        // Fulfil out of order from another thread, with pauses, while the
        // consumer takes 0..4 in order.
        let producer = {
            let b = batch.clone();
            std::thread::spawn(move || {
                for i in [2, 0, 3, 1] {
                    b.fulfil(i, i * 10);
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let got: Vec<usize> = (0..4).map(|i| batch.take(i)).collect();
        assert_eq!(got, vec![0, 10, 20, 30]);
        producer.join().expect("no panic");
    }

    #[test]
    fn take_can_consume_an_early_slot_before_the_batch_completes() {
        let batch: SharedBatch<i32> = SharedBatch::new(2);
        batch.fulfil(0, 7);
        // Slot 1 is still pending; taking slot 0 must not block on it.
        assert_eq!(batch.take(0), 7);
        batch.fulfil(1, 8);
        assert_eq!(batch.take(1), 8);
    }

    #[test]
    fn a_poisoned_batch_lock_recovers_instead_of_cascading() {
        let batch: SharedBatch<i32> = SharedBatch::new(2);
        // Poison the lock: panic while holding it on another thread.
        let poisoner = {
            let b = batch.clone();
            std::thread::spawn(move || {
                let (lock, _) = &*b.inner;
                let _guard = lock.lock().expect("first lock");
                panic!("deliberate poison");
            })
        };
        assert!(poisoner.join().is_err(), "the poisoner must panic");
        // The batch still works end to end.
        assert!(batch.fulfil(0, 1));
        assert!(batch.fulfil(1, 2));
        assert_eq!(batch.wait(), vec![1, 2]);
    }

    #[test]
    fn wait_timeout_reports_incomplete_batches() {
        let batch: SharedBatch<i32> = SharedBatch::new(1);
        assert_eq!(batch.wait_timeout(Duration::from_millis(10)), None);
        batch.fulfil(0, 7);
        assert_eq!(batch.wait_timeout(Duration::from_millis(10)), Some(vec![7]));
    }
}
