//! The differential chaos driver: §5.1's robustness claim, checked.
//!
//! The claim: delivering an asynchronous exception at *any* machine step can
//! only add members to the set of behaviours the denotational semantics
//! already allows. A [`chaos_run`] makes that executable for one seed:
//!
//! 1. evaluate the query **denotationally** (the oracle — no faults exist
//!    at this level; an expression simply *has* an exception set);
//! 2. run the machine once undisturbed to learn the episode's step count,
//!    and derive a [`FaultPlan`] whose faults land inside it;
//! 3. run a fresh machine under the plan and check **soundness under
//!    faults**: a caught exception must be a member of the denotational set
//!    ∪ the plan's injectable asynchrony, and a normal value must render
//!    exactly as the oracle says;
//! 4. check **heap consistency**: [`urk_machine::Machine::audit_heap`]
//!    must find no stranded black holes — every thunk interrupted by the
//!    trim was restored (§5.1) or poisoned (§3.3);
//! 5. disarm the plan and **re-evaluate on the same machine**: the answer
//!    must agree with the oracle again (restored thunks resume; poisoned
//!    thunks re-raise members of the set), and the heap must still audit
//!    clean.
//!
//! Any failing seed reproduces exactly, because every fault in the plan is
//! derived from the seed.

use std::rc::Rc;
use std::sync::Arc;

use urk_denot::{show_denot, Denot, DenotConfig, DenotEvaluator, Env};
use urk_machine::{Code, FaultPlan, MEnv, Machine, MachineConfig, Outcome};
use urk_syntax::core::Expr;
use urk_syntax::{DataEnv, Symbol};

/// The verdict of one fault-injected differential run.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The plan that was executed (carries its seed).
    pub plan: FaultPlan,
    /// Human-readable description of the fault-injected run's outcome.
    pub outcome: String,
    /// The oracle's rendering of the denotation.
    pub oracle: String,
    /// Invariant (a): the observed behaviour is a member of the
    /// denotational set ∪ the plan's injectable asynchrony.
    pub sound: bool,
    /// Invariant (b): zero stranded black holes and a coherent free list,
    /// both right after the fault-injected episode and after re-evaluation.
    pub heap_consistent: bool,
    /// The same machine, chaos disarmed, agrees with the oracle again.
    pub reeval_ok: bool,
    /// Asynchronous deliveries + forced collections actually performed.
    pub faults_fired: u64,
}

impl ChaosReport {
    /// True if every invariant held.
    pub fn passed(&self) -> bool {
        self.sound && self.heap_consistent && self.reeval_ok
    }
}

/// Runs the full differential check for one seed. The fault plan's horizon
/// is calibrated from an undisturbed baseline run, so the faults land
/// mid-evaluation rather than after the answer is already computed.
pub fn chaos_run(
    data: &DataEnv,
    binds: &[(Symbol, Rc<Expr>)],
    query: &Rc<Expr>,
    base: &MachineConfig,
    denot_fuel: u64,
    seed: u64,
) -> ChaosReport {
    let horizon = baseline_steps(binds, query, base);
    let plan = FaultPlan::generate(seed, horizon);
    chaos_run_with_plan(data, binds, query, base, denot_fuel, plan)
}

/// As [`chaos_run`], but the fault-injected machine executes the
/// *compiled* backend: the program image in `code` is linked and the
/// query runs through [`Machine::eval_code_expr`]. The oracle is the
/// same denotational evaluator — the whole point is that §5.1's
/// robustness claim is representation-independent, so the compiled
/// executor must satisfy exactly the invariants the tree-walker does.
pub fn chaos_run_compiled(
    data: &DataEnv,
    binds: &[(Symbol, Rc<Expr>)],
    code: &Arc<Code>,
    query: &Rc<Expr>,
    base: &MachineConfig,
    denot_fuel: u64,
    seed: u64,
) -> ChaosReport {
    let horizon = baseline_steps_compiled(code, query, base);
    let plan = FaultPlan::generate(seed, horizon);
    chaos_run_with_plan_compiled(data, binds, code, query, base, denot_fuel, plan)
}

/// As [`chaos_run`], but with a caller-supplied plan — used by the tests
/// that arm `sabotage_async_restore` to prove the audit catches a broken
/// restore, and usable to replay a hand-written fault schedule.
pub fn chaos_run_with_plan(
    data: &DataEnv,
    binds: &[(Symbol, Rc<Expr>)],
    query: &Rc<Expr>,
    base: &MachineConfig,
    denot_fuel: u64,
    plan: FaultPlan,
) -> ChaosReport {
    chaos_run_inner(data, binds, None, query, base, denot_fuel, plan)
}

/// As [`chaos_run_compiled`] with a caller-supplied plan.
pub fn chaos_run_with_plan_compiled(
    data: &DataEnv,
    binds: &[(Symbol, Rc<Expr>)],
    code: &Arc<Code>,
    query: &Rc<Expr>,
    base: &MachineConfig,
    denot_fuel: u64,
    plan: FaultPlan,
) -> ChaosReport {
    chaos_run_inner(data, binds, Some(code), query, base, denot_fuel, plan)
}

/// The shared driver: the oracle and every invariant check are identical
/// for both backends; only how the machine is prepared and entered
/// differs (recursive environment + tree `eval` vs linked image +
/// `eval_code_expr`).
#[allow(clippy::too_many_arguments)]
fn chaos_run_inner(
    data: &DataEnv,
    binds: &[(Symbol, Rc<Expr>)],
    code: Option<&Arc<Code>>,
    query: &Rc<Expr>,
    base: &MachineConfig,
    denot_fuel: u64,
    plan: FaultPlan,
) -> ChaosReport {
    // The oracle: faults do not exist at this level. The depth guard is
    // raised above the default so moderately deep recursion (the kind the
    // chaos corpus uses to give faults room to land) doesn't bottom out —
    // but kept low enough for a 2 MiB test-thread stack.
    let ev = DenotEvaluator::with_config(
        data,
        DenotConfig {
            fuel: denot_fuel,
            max_depth: 2_000,
            ..DenotConfig::default()
        },
    );
    let denv = ev.bind_recursive(binds, &Env::empty());
    let denot = ev.eval(query, &denv);
    let oracle = show_denot(&ev, &denot, 16);

    // The fault-injected run.
    let mut m = Machine::new(MachineConfig {
        chaos: Some(plan.clone()),
        ..base.clone()
    });
    let menv = match code {
        Some(code) => {
            m.link_code(Arc::clone(code));
            MEnv::empty()
        }
        None => m.bind_recursive(binds, &MEnv::empty()),
    };
    let chaos_out = match code {
        Some(_) => m.eval_code_expr(query, true),
        None => m.eval(query.clone(), &menv, true),
    };
    let faults_fired = m.stats().async_injected + m.stats().forced_gcs;

    let (outcome, sound) = match &chaos_out {
        Ok(Outcome::Value(n)) => {
            // Rendering forces lazy fields; keep the plan out of it.
            m.disarm_chaos();
            let rendered = m.render(*n, 16);
            let ok = match &denot {
                Denot::Ok(_) => renders_agree(&rendered, &oracle),
                Denot::Bad(_) => false,
            };
            (rendered, ok)
        }
        Ok(Outcome::Caught(e)) => {
            let in_set = matches!(&denot, Denot::Bad(set) if set.contains(e));
            (format!("Caught({e})"), in_set || plan.allows(e))
        }
        Ok(Outcome::Uncaught(e)) => (format!("Uncaught({e})"), false),
        Err(err) => (format!("machine error: {err}"), false),
    };

    // Invariant (b): the machine must be reusable — no black hole survived
    // the trim, and the allocator's books balance.
    let first_audit = m.audit_heap();

    // Same machine, faults disarmed: must agree with the oracle again.
    m.disarm_chaos();
    let reeval_out = match code {
        Some(_) => m.eval_code_expr(query, true),
        None => m.eval(query.clone(), &menv, true),
    };
    let reeval_ok = match reeval_out {
        Ok(Outcome::Value(n)) => {
            let rendered = m.render(n, 16);
            matches!(&denot, Denot::Ok(_)) && renders_agree(&rendered, &oracle)
        }
        Ok(Outcome::Caught(e)) => matches!(&denot, Denot::Bad(set) if set.contains(&e)),
        _ => false,
    };
    let heap_consistent = first_audit.is_consistent() && m.audit_heap().is_consistent();

    ChaosReport {
        plan,
        outcome,
        oracle,
        sound,
        heap_consistent,
        reeval_ok,
        faults_fired,
    }
}

/// Step count of one undisturbed episode, for calibrating the horizon.
/// Falls back to whatever was spent if the baseline itself hits a limit.
fn baseline_steps(binds: &[(Symbol, Rc<Expr>)], query: &Rc<Expr>, base: &MachineConfig) -> u64 {
    let mut m = Machine::new(base.clone());
    let menv = m.bind_recursive(binds, &MEnv::empty());
    let _ = m.eval(query.clone(), &menv, true);
    m.stats().steps
}

/// As [`baseline_steps`], on the compiled backend (each backend gets its
/// own horizon: their step counts differ, and the faults must land inside
/// the episode actually being disturbed).
fn baseline_steps_compiled(code: &Arc<Code>, query: &Rc<Expr>, base: &MachineConfig) -> u64 {
    let mut m = Machine::new(base.clone());
    m.link_code(Arc::clone(code));
    let _ = m.eval_code_expr(query, true);
    m.stats().steps
}

/// Machine and oracle spell buried exceptional fields differently
/// (`raise {...}` vs `Bad {...}`); compare spines only in that case, full
/// renderings otherwise — the same normalization the soundness suite uses.
fn renders_agree(machine: &str, denot: &str) -> bool {
    if denot.contains("Bad {") {
        machine.split_whitespace().next() == denot.split_whitespace().next()
    } else {
        machine == denot.replace("(Bad {", "(raise {")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urk_syntax::{desugar_expr, parse_expr_src, Exception};

    fn core_of(data: &DataEnv, src: &str) -> Rc<Expr> {
        Rc::new(desugar_expr(&parse_expr_src(src).expect("parses"), data).expect("desugars"))
    }

    #[test]
    fn clean_plan_reproduces_the_oracle_exactly() {
        let data = DataEnv::new();
        let query = core_of(
            &data,
            "let f = \\n -> if n == 0 then 0 else n + f (n - 1) in f 50",
        );
        let plan = FaultPlan {
            horizon: 64,
            ..FaultPlan::default()
        };
        let r = chaos_run_with_plan(&data, &[], &query, &MachineConfig::default(), 200_000, plan);
        assert!(r.passed(), "{r:?}");
        assert_eq!(r.outcome, "1275");
        assert_eq!(r.oracle, "1275");
    }

    #[test]
    fn injected_interrupt_is_allowed_and_the_machine_recovers() {
        let data = DataEnv::new();
        let query = core_of(
            &data,
            "let f = \\n -> if n == 0 then 0 else n + f (n - 1) in f 200",
        );
        let plan = FaultPlan {
            horizon: 10_000,
            injections: vec![(100, Exception::Interrupt)],
            ..FaultPlan::default()
        };
        let r = chaos_run_with_plan(&data, &[], &query, &MachineConfig::default(), 400_000, plan);
        assert!(r.passed(), "{r:?}");
        assert_eq!(r.outcome, "Caught(Interrupt)");
        assert!(r.faults_fired >= 1);
    }

    #[test]
    fn seeded_runs_hold_both_invariants() {
        let data = DataEnv::new();
        let query = core_of(
            &data,
            "let f = \\n -> if n == 0 then 1 else n * f (n - 1) in f 12",
        );
        for seed in 0..16 {
            let r = chaos_run(&data, &[], &query, &MachineConfig::default(), 400_000, seed);
            assert!(r.passed(), "seed {seed}: {r:?}");
        }
    }

    #[test]
    fn sabotaged_restore_is_caught_by_the_audit() {
        let data = DataEnv::new();
        // The outer `s + 1` forces the thunk `s`, so an update frame for it
        // is on the stack for the whole inner loop — the injected interrupt
        // trims past it, and the sabotaged restore strands the black hole.
        let query = core_of(
            &data,
            "let s = (let g = \\n -> if n == 0 then 0 else n + g (n - 1) in g 300) in s + 1",
        );
        let plan = FaultPlan {
            horizon: 50_000,
            injections: vec![(200, Exception::Interrupt)],
            sabotage_async_restore: true,
            ..FaultPlan::default()
        };
        let r = chaos_run_with_plan(&data, &[], &query, &MachineConfig::default(), 400_000, plan);
        assert!(
            !r.heap_consistent,
            "a deliberately-broken restore must fail the audit: {r:?}"
        );
    }

    #[test]
    fn sabotaged_forwarding_is_caught_by_the_generational_audit() {
        let data = DataEnv::new();
        let query = core_of(
            &data,
            "let g = \\n -> if n == 0 then 0 else n + g (n - 1) in g 300",
        );
        // Force a minor collection mid-run; the armed sabotage then plants
        // a stale Forwarded cell in the tenured space. The cell is
        // unreachable, so soundness holds — but the audit must fail.
        let plan = FaultPlan {
            horizon: 50_000,
            force_minor_at: vec![150],
            sabotage_forwarding: true,
            ..FaultPlan::default()
        };
        let r = chaos_run_with_plan(&data, &[], &query, &MachineConfig::default(), 400_000, plan);
        assert!(
            !r.heap_consistent,
            "a planted stale forwarding pointer must fail the audit: {r:?}"
        );
        assert!(r.sound, "the planted cell is unreachable: {r:?}");
    }
}
