//! Release-mode smoke for CI: the interrupt-poll hook adds no per-step
//! allocation and changes no behaviour when nothing fires.
//!
//! Unlike the wall-clock benches this is exact — machine counters are
//! deterministic, so "no overhead" is an equality over `Stats`, not a
//! noise-bounded timing comparison.

use urk_bench::{compile, run, workloads};
use urk_machine::{FaultPlan, InterruptHandle, MachineConfig};

#[test]
fn unarmed_interrupt_handle_changes_no_counter() {
    for w in workloads() {
        let c = compile(&w);
        let (base_render, base) = run(&c, MachineConfig::default());
        let (ext_render, ext) = run(
            &c,
            MachineConfig {
                interrupt: Some(InterruptHandle::new()),
                ..MachineConfig::default()
            },
        );
        assert_eq!(base_render, w.expected, "workload {}", w.name);
        assert_eq!(ext_render, w.expected, "workload {}", w.name);
        // The whole Stats struct: identical steps, allocations, GC work —
        // the poll is one relaxed load, not an allocation.
        assert_eq!(base, ext, "workload {}: polling must be free", w.name);
    }
}

#[test]
fn idle_chaos_plan_changes_no_counter() {
    // An armed but empty plan exercises the per-step chaos bookkeeping
    // with nothing to deliver; it must not allocate or change behaviour.
    for w in workloads() {
        let c = compile(&w);
        let (base_render, base) = run(&c, MachineConfig::default());
        let (chaos_render, chaos) = run(
            &c,
            MachineConfig {
                chaos: Some(FaultPlan {
                    horizon: u64::MAX,
                    ..FaultPlan::default()
                }),
                ..MachineConfig::default()
            },
        );
        assert_eq!(base_render, w.expected, "workload {}", w.name);
        assert_eq!(chaos_render, w.expected, "workload {}", w.name);
        assert_eq!(
            base, chaos,
            "workload {}: an empty fault plan must be free",
            w.name
        );
    }
}
