//! Regenerates every experiment table deterministically (machine step and
//! allocation counts rather than wall-clock time), for `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p urk-bench --bin experiment_report
//! ```

use urk_bench::{
    apply_cbv, compile, deep_propagate, deep_raise, encode, lower, lower_t2, pipeline_workload,
    run, run_caught, run_flat, workloads,
};
use urk_machine::{MachineConfig, OrderPolicy};
use urk_transform::{classify_all, render_table};

fn main() {
    println!("# Experiment report (deterministic counters)");
    println!();

    // ------------------------------------------------------------------
    // E4: the law table (§4.5).
    // ------------------------------------------------------------------
    println!("## E4 — transformation laws (§3.4, §4.5)");
    println!();
    print!("{}", render_table(&classify_all()));
    println!();

    // ------------------------------------------------------------------
    // E5: no-exception programs run unchanged; the explicit encoding
    // pays test-and-propagate everywhere (§2.2, §2.3, §3.3).
    // ------------------------------------------------------------------
    println!("## E5 — zero-cost claim vs the explicit ExVal encoding (§2.2/§3.3)");
    println!();
    println!("| workload | native steps | +catch mark | encoded steps | step ratio | native size | encoded size | size ratio |");
    println!("|---|---|---|---|---|---|---|---|");
    for w in workloads() {
        let c = compile(&w);
        let (got, native) = run(&c, MachineConfig::default());
        assert_eq!(got, w.expected);
        let (_, caught) = run_caught(&c, MachineConfig::default());
        let e = encode(&c);
        let (egot, enc) = run(&e, MachineConfig::default());
        assert_eq!(egot, format!("OK {}", w.expected));
        println!(
            "| {} | {} | {} | {} | {:.2}x | {} | {} | {:.2}x |",
            w.name,
            native.steps,
            caught.steps,
            enc.steps,
            enc.steps as f64 / native.steps as f64,
            c.program.size(),
            e.program.size(),
            e.program.size() as f64 / c.program.size() as f64,
        );
    }
    println!();

    // ------------------------------------------------------------------
    // E6: raise = stack trimming, O(frames), vs explicit propagation.
    // ------------------------------------------------------------------
    println!("## E6 — the cost of raising (§3.3 stack trimming)");
    println!();
    println!("| depth | raise: steps | raise: allocs | frames trimmed | explicit: steps | explicit: allocs | alloc ratio |");
    println!("|---|---|---|---|---|---|---|");
    for depth in [100u64, 1_000, 10_000] {
        let r = deep_raise(depth);
        let (_, rs) = run_caught(&r, MachineConfig::default());
        let p = deep_propagate(depth);
        let (_, ps) = run(&p, MachineConfig::default());
        println!(
            "| {} | {} | {} | {} | {} | {} | {:.2}x |",
            depth,
            rs.steps,
            rs.allocations,
            rs.frames_trimmed,
            ps.steps,
            ps.allocations,
            ps.allocations as f64 / rs.allocations as f64
        );
    }
    println!();
    println!("(The whole trim is a single machine transition; the explicit encoding");
    println!("allocates a `Bad` cell and pattern-matches at every level on the way out.)");
    println!();

    // ------------------------------------------------------------------
    // E7: evaluation order is a policy; results agree, costs agree.
    // ------------------------------------------------------------------
    println!("## E7 — evaluation-order policies (§3.5)");
    println!();
    println!("| workload | L→R steps | R→L steps | seeded steps | all results equal |");
    println!("|---|---|---|---|---|");
    for w in workloads() {
        let c = compile(&w);
        let (g1, s1) = run(&c, MachineConfig::default());
        let (g2, s2) = run(
            &c,
            MachineConfig {
                order: OrderPolicy::RightToLeft,
                ..MachineConfig::default()
            },
        );
        let (g3, s3) = run(
            &c,
            MachineConfig {
                order: OrderPolicy::Seeded(0xC0FFEE),
                ..MachineConfig::default()
            },
        );
        println!(
            "| {} | {} | {} | {} | {} |",
            w.name,
            s1.steps,
            s2.steps,
            s3.steps,
            g1 == g2 && g2 == g3
        );
        assert_eq!(g1, w.expected);
        assert_eq!(g2, w.expected);
        assert_eq!(g3, w.expected);
    }
    println!();

    // ------------------------------------------------------------------
    // E9: strictness-driven call-by-value pays off (§3.4).
    // ------------------------------------------------------------------
    println!("## E9 — strictness analysis payoff (§3.4)");
    println!();
    println!("| workload | rewrites | lazy: allocs | cbv: allocs | lazy: updates | cbv: updates | lazy steps | cbv steps |");
    println!("|---|---|---|---|---|---|---|---|");
    for w in workloads() {
        let c = compile(&w);
        let (t, n) = apply_cbv(&c);
        let (g1, lazy) = run(&c, MachineConfig::default());
        let (g2, cbv) = run(&t, MachineConfig::default());
        assert_eq!(g1, g2, "cbv must preserve results on {}", w.name);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            w.name,
            n,
            lazy.allocations,
            cbv.allocations,
            lazy.thunk_updates,
            cbv.thunk_updates,
            lazy.steps,
            cbv.steps,
        );
    }
    println!();

    // ------------------------------------------------------------------
    // E13: the whole pipeline — what §2.3's "keep the transformations"
    // goal buys once a compiler actually uses them.
    // ------------------------------------------------------------------
    println!("## E13 — the optimisation pipeline end to end (§2.3)");
    println!();
    println!("| workload | rewrites | size before | size after | steps before | steps after | allocs before | allocs after |");
    println!("|---|---|---|---|---|---|---|---|");
    // Sugar-heavy programs: redexes for every simplifier pass.
    let sugary = vec![
        urk_bench::Workload {
            name: "poly-sum",
            program: "poly x = (\\k -> k * k + k) (let y = x + 1 in y)\n\
                      compute n acc = if n == 0 then acc else compute (n - 1) (acc + poly n)",
            query: "compute 3000 0".into(),
            expected: "",
            first_order: false,
        },
        urk_bench::Workload {
            name: "known-cons",
            program:
                "step p = case Just p of { Just q -> case (q, q * 2) of { (a, b) -> a + b } }\n\
                      walk n acc = if n == 0 then acc else walk (n - 1) (acc + step n)",
            query: "walk 3000 0".into(),
            expected: "",
            first_order: false,
        },
    ];
    for w in sugary.into_iter().chain(workloads()) {
        let c = compile(&w);
        let optimizer = urk_transform::Optimizer::new();
        let (opt_prog, report) = optimizer.optimize(&c.program);
        let opt = urk_bench::Compiled {
            data: c.data.clone(),
            program: opt_prog,
            query: c.query.clone(),
        };
        let (g1, before) = run(&c, MachineConfig::default());
        let (g2, after) = run(&opt, MachineConfig::default());
        assert_eq!(g1, g2, "pipeline must preserve results on {}", w.name);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            w.name,
            report.total_rewrites(),
            report.size_before,
            report.size_after,
            before.steps,
            after.steps,
            before.allocations,
            after.allocations,
        );
    }
    println!();

    // ------------------------------------------------------------------
    // E19: the generational nursery heap and tagged unboxed values.
    // ------------------------------------------------------------------
    println!("## E19 — generational heap: allocations and collection gauges");
    println!();
    println!("| workload | backend | allocations | unboxed hits | steps | minor gcs | promoted |");
    println!("|---|---|---|---|---|---|---|");
    let mut suite = workloads();
    suite.push(pipeline_workload());
    for w in suite {
        let c = compile(&w);
        let code = lower(&c);
        let (got, tree) = run(&c, MachineConfig::default());
        assert_eq!(got, w.expected);
        let (fgot, flat) = run_flat(&c, &code, MachineConfig::default());
        assert_eq!(fgot, w.expected);
        for (backend, s) in [("tree", &tree), ("flat", &flat)] {
            println!(
                "| {} | {} | {} | {} | {} | {} | {} |",
                w.name,
                backend,
                s.allocations,
                s.unboxed_hits,
                s.steps,
                s.minor_gcs,
                s.nodes_promoted,
            );
        }
    }
    println!();
    println!(
        "(Step/allocation counts are deterministic; wall-clock equivalents live in `cargo bench`.)"
    );

    // ------------------------------------------------------------------
    // E20: tier-2 superinstruction codegen vs direct lowering.
    // ------------------------------------------------------------------
    println!();
    println!("## E20 — tier-2 codegen: steps retired and optimisation gauges");
    println!();
    println!("| workload | t1 steps | t2 steps | step delta | fused steps | ic hits | ic misses |");
    println!("|---|---|---|---|---|---|---|");
    let mut suite = workloads();
    suite.push(pipeline_workload());
    for w in suite {
        let c = compile(&w);
        let t1 = lower(&c);
        let t2 = lower_t2(&c);
        let (got1, s1) = run_flat(&c, &t1, MachineConfig::default());
        assert_eq!(got1, w.expected);
        let (got2, s2) = run_flat(&c, &t2, MachineConfig::default());
        assert_eq!(got2, w.expected);
        println!(
            "| {} | {} | {} | {:+.1}% | {} | {} | {} |",
            w.name,
            s1.steps,
            s2.steps,
            100.0 * (s2.steps as f64 - s1.steps as f64) / s1.steps as f64,
            s2.fused_steps,
            s2.ic_hits,
            s2.ic_misses,
        );
    }
    println!();
    println!("(Same machine, same flat executor; only the image differs. Wall-clock medians live in `BENCH_codegen.json`.)");
}
