//! # urk-bench
//!
//! Shared workloads and measurement helpers for the benchmark harness.
//!
//! The paper's evaluation is a set of performance *claims* rather than
//! numeric tables (§2.2, §2.3, §3.3); each claim is regenerated twice:
//!
//! * deterministically, as machine step/allocation counts, by the
//!   `experiment_report` binary (`cargo run -p urk-bench --bin
//!   experiment_report`), whose output is recorded in `EXPERIMENTS.md`;
//! * as wall-clock timings, by the Criterion benches in `benches/`.

use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::Arc;

use urk_machine::{compile_program, Code, MEnv, Machine, MachineConfig, Outcome, Stats};
use urk_syntax::core::{CoreProgram, Expr};
use urk_syntax::{desugar_expr, desugar_program, parse_expr_src, parse_program, DataEnv, Symbol};

/// One benchmark workload: an Urk program, a query, and its expected
/// rendering (used to verify every measured run actually computed the
/// right thing).
#[derive(Clone, Debug)]
pub struct Workload {
    pub name: &'static str,
    pub program: &'static str,
    pub query: String,
    pub expected: &'static str,
    /// Whether the workload is first-order (encodable with the §2.2
    /// explicit `ExVal` transformation).
    pub first_order: bool,
}

/// The standard workload suite.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "fib",
            program: "fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)",
            query: "fib 16".into(),
            expected: "987",
            first_order: true,
        },
        Workload {
            name: "sumto",
            program: "sumTo n acc = if n == 0 then acc else sumTo (n - 1) (acc + n)",
            query: "sumTo 4000 0".into(),
            expected: "8002000",
            first_order: true,
        },
        Workload {
            name: "primes",
            program: "isPrime p = allFrom 2 p\n\
                      allFrom d p = if d * d > p then True else (if p % d == 0 then False else allFrom (d + 1) p)\n\
                      countPrimes lo hi acc = if lo > hi then acc else countPrimes (lo + 1) hi (if isPrime lo then acc + 1 else acc)",
            query: "countPrimes 2 2000 0".into(),
            expected: "303",
            first_order: true,
        },
        Workload {
            name: "sortlist",
            program: "ins x ys = case ys of { [] -> [x]; z:zs -> if x <= z then x : z : zs else z : ins x zs }\n\
                      isort xs = case xs of { [] -> []; y:ys -> ins y (isort ys) }\n\
                      mklist n = if n == 0 then [] else (n * 37 % 101) : mklist (n - 1)\n\
                      lsum xs = case xs of { [] -> 0; y:ys -> y + lsum ys }\n\
                      checksum n = lsum (isort (mklist n))",
            query: "checksum 120".into(),
            expected: "6020",
            first_order: true,
        },
    ]
}

/// A lazy first-order pipeline (build / map / filter / fold over a list):
/// the interpretive-overhead-dominated shape the flat-code backend is
/// built for. Self-contained like the standard workloads.
pub fn pipeline_workload() -> Workload {
    Workload {
        name: "pipeline",
        program: "upto n = if n == 0 then [] else n : upto (n - 1)\n\
                  mapmul xs = case xs of { [] -> []; y:ys -> (y * 3) : mapmul ys }\n\
                  keepeven xs = case xs of { [] -> []; y:ys -> if y % 2 == 0 then y : keepeven ys else keepeven ys }\n\
                  total xs = case xs of { [] -> 0; y:ys -> y + total ys }\n\
                  pipe n = total (keepeven (mapmul (upto n)))",
        query: "pipe 400".into(),
        expected: "120600",
        first_order: true,
    }
}

/// A compiled workload: data environment plus core program.
pub struct Compiled {
    pub data: DataEnv,
    pub program: CoreProgram,
    pub query: Rc<Expr>,
}

/// Compiles a workload (no Prelude: workloads are self-contained so the
/// explicit encoder can see every function).
///
/// # Panics
///
/// Panics on malformed workloads — a bug in this crate.
pub fn compile(w: &Workload) -> Compiled {
    let mut data = DataEnv::new();
    let program = desugar_program(
        &parse_program(w.program).expect("workload parses"),
        &mut data,
    )
    .expect("workload desugars");
    let query = Rc::new(
        desugar_expr(&parse_expr_src(&w.query).expect("query parses"), &data)
            .expect("query desugars"),
    );
    Compiled {
        data,
        program,
        query,
    }
}

fn run_inner(c: &Compiled, config: MachineConfig, catch: bool) -> (String, Stats) {
    let mut m = Machine::new(config);
    let env = m.bind_recursive(&c.program.binds, &MEnv::empty());
    let out = m
        .eval(c.query.clone(), &env, catch)
        .expect("workload within limits");
    let rendered = match out {
        Outcome::Value(n) => m.render(n, 16),
        Outcome::Caught(e) | Outcome::Uncaught(e) => format!("(raise {e})"),
    };
    (rendered, m.stats().clone())
}

/// Runs a compiled workload on a fresh machine; returns the rendering and
/// the stats.
///
/// # Panics
///
/// Panics if the machine hits a hard limit.
pub fn run(c: &Compiled, config: MachineConfig) -> (String, Stats) {
    run_inner(c, config, false)
}

/// Runs under a catch mark (as `getException` would evaluate it).
///
/// # Panics
///
/// Panics if the machine hits a hard limit.
pub fn run_caught(c: &Compiled, config: MachineConfig) -> (String, Stats) {
    run_inner(c, config, true)
}

/// Lowers a workload's program to the flat code image once, for sharing
/// across measured runs (as the pool shares one `Arc<Code>` per program).
pub fn lower(c: &Compiled) -> Arc<Code> {
    Arc::new(compile_program(&c.program.binds))
}

/// Lowers a workload at tier 2: the exception-effect analysis run over
/// the program and handed to the superinstruction pass as its licence —
/// the same pipeline `urk --tier 2` drives.
pub fn lower_t2(c: &Compiled) -> Arc<Code> {
    let base = compile_program(&c.program.binds);
    let analysis = urk::analyze_program(&c.program, &c.data);
    let facts = urk::tier2_facts_for(analysis, &c.program.binds);
    Arc::new(urk::tier2_optimize(&base, &facts))
}

/// Runs a workload through the flat-code executor. The image is linked
/// per run (cheap: an `Arc` clone plus the query lowering), mirroring a
/// pool worker picking up a job.
///
/// # Panics
///
/// Panics if the machine hits a hard limit.
pub fn run_flat(c: &Compiled, code: &Arc<Code>, config: MachineConfig) -> (String, Stats) {
    let mut m = Machine::new(config);
    m.link_code(Arc::clone(code));
    let out = m
        .eval_code_expr(&c.query, false)
        .expect("workload within limits");
    let rendered = match out {
        Outcome::Value(n) => m.render(n, 16),
        Outcome::Caught(e) | Outcome::Uncaught(e) => format!("(raise {e})"),
    };
    (rendered, m.stats().clone())
}

/// The §2.2 explicit encoding of a compiled workload (program and query).
///
/// # Panics
///
/// Panics if the workload is not first-order.
pub fn encode(c: &Compiled) -> Compiled {
    let program = urk_transform::encode_program(&c.program).expect("first-order workload");
    let known: BTreeSet<Symbol> = c.program.binds.iter().map(|(n, _)| *n).collect();
    let query = Rc::new(urk_transform::encode_expr(&c.query, &known).expect("first-order query"));
    Compiled {
        data: c.data.clone(),
        program,
        query,
    }
}

/// Applies the strictness-analysis-driven call-by-value transformation to
/// every binding of a compiled workload. Returns the rewritten workload
/// and the number of let-to-case rewrites performed.
pub fn apply_cbv(c: &Compiled) -> (Compiled, usize) {
    let sigs = urk_transform::analyze_program(&c.program);
    let pred = |x: Symbol, b: &Expr| urk_transform::strict_in(x, b, &sigs);
    let let_to_case = urk_transform::LetToCase { is_strict: &pred };
    let call_sites = urk_transform::StrictCallSites {
        sigs: &sigs,
        arg_safe: None,
    };
    let mut program = CoreProgram::default();
    let mut total = 0;
    let rewrite = |e: &Expr, total: &mut usize| -> Expr {
        let (out, n1) = urk_transform::apply_to_fixpoint(&call_sites, e, 8);
        let (out, n2) = urk_transform::apply_to_fixpoint(&let_to_case, &out, 4);
        *total += n1 + n2;
        out
    };
    for (name, rhs) in &c.program.binds {
        let out = rewrite(rhs, &mut total);
        program.binds.push((*name, Rc::new(out)));
    }
    let query = rewrite(&c.query, &mut total);
    (
        Compiled {
            data: c.data.clone(),
            program,
            query: Rc::new(query),
        },
        total,
    )
}

/// A deep-raise workload for the E6 stack-trimming benchmark: `deep n`
/// builds `n` stack frames and then raises.
pub fn deep_raise(n: u64) -> Compiled {
    compile(&Workload {
        name: "deep-raise",
        program: "deep n = if n == 0 then raise Overflow else 1 + deep (n - 1)",
        query: format!("deep {n}"),
        expected: "(raise Overflow)",
        first_order: true,
    })
}

/// The equivalent explicit-propagation workload: every level tests and
/// propagates by hand, §2.2-style.
pub fn deep_propagate(n: u64) -> Compiled {
    compile(&Workload {
        name: "deep-propagate",
        program: "deep n = if n == 0 then Bad Overflow else case deep (n - 1) of { Bad e -> Bad e; OK v -> OK (1 + v) }",
        query: format!("deep {n}"),
        expected: "Bad Overflow",
        first_order: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_computes_its_expected_answer() {
        for w in workloads() {
            let c = compile(&w);
            let (got, _) = run(&c, MachineConfig::default());
            assert_eq!(got, w.expected, "workload {}", w.name);
        }
    }

    #[test]
    fn encoded_workloads_agree_modulo_ok() {
        for w in workloads().into_iter().filter(|w| w.first_order) {
            let c = compile(&w);
            let e = encode(&c);
            let (got, _) = run(&e, MachineConfig::default());
            assert_eq!(got, format!("OK {}", w.expected), "workload {}", w.name);
        }
    }

    #[test]
    fn cbv_transformed_workloads_agree() {
        for w in workloads() {
            let c = compile(&w);
            let (t, _) = apply_cbv(&c);
            let (got, _) = run(&t, MachineConfig::default());
            assert_eq!(got, w.expected, "workload {}", w.name);
        }
    }

    #[test]
    fn the_flat_executor_computes_every_expected_answer() {
        let mut all = workloads();
        all.push(pipeline_workload());
        for w in all {
            let c = compile(&w);
            let code = lower(&c);
            let (got, _) = run_flat(&c, &code, MachineConfig::default());
            assert_eq!(got, w.expected, "workload {}", w.name);
            // And it agrees with the tree-walker byte for byte.
            let (tree, _) = run(&c, MachineConfig::default());
            assert_eq!(got, tree, "workload {}", w.name);
        }
    }

    #[test]
    fn deep_raise_and_propagate_agree() {
        let (a, _) = run(&deep_raise(500), MachineConfig::default());
        assert_eq!(a, "(raise Overflow)");
        let (b, _) = run(&deep_propagate(500), MachineConfig::default());
        assert_eq!(b, "Bad Overflow");
    }
}
