//! E5 — §2.2/§2.3/§3.3: programs that don't raise run at full speed under
//! the imprecise design (a catch mark costs one frame), while the explicit
//! `ExVal` encoding pays test-and-propagate at every call site.
//!
//! Expected shape (the paper's claim): `native` ≈ `native+catch`, and
//! `encoded` slower by a substantial constant factor (ours: ~2–3×).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urk_bench::{compile, encode, run, run_caught, workloads};
use urk_machine::MachineConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exval_overhead");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));

    for w in workloads() {
        let compiled = compile(&w);
        let encoded = encode(&compiled);

        group.bench_with_input(BenchmarkId::new("native", w.name), &compiled, |b, c| {
            b.iter(|| run(c, MachineConfig::default()))
        });
        group.bench_with_input(
            BenchmarkId::new("native+catch", w.name),
            &compiled,
            |b, c| b.iter(|| run_caught(c, MachineConfig::default())),
        );
        group.bench_with_input(BenchmarkId::new("encoded", w.name), &encoded, |b, c| {
            b.iter(|| run(c, MachineConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
