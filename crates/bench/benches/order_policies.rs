//! E7 — §3.5: the evaluation-order policy (the machine's stand-in for
//! "compiler optimisation settings") affects which exception surfaces but
//! neither results nor, materially, cost.
//!
//! Expected shape: all three policies within noise of each other on every
//! workload (the seeded policy pays one RNG draw per binary primitive).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urk_bench::{compile, run, workloads};
use urk_machine::{MachineConfig, OrderPolicy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("order_policies");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));

    let policies = [
        ("left-to-right", OrderPolicy::LeftToRight),
        ("right-to-left", OrderPolicy::RightToLeft),
        ("seeded", OrderPolicy::Seeded(0xC0FFEE)),
    ];

    for w in workloads() {
        let compiled = compile(&w);
        for (name, policy) in policies {
            group.bench_with_input(BenchmarkId::new(name, w.name), &compiled, |b, c| {
                b.iter(|| {
                    run(
                        c,
                        MachineConfig {
                            order: policy,
                            ..MachineConfig::default()
                        },
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
