//! E15 — the flat-code backend vs the tree-walker.
//!
//! The tree-walker re-traverses `Rc<Expr>` nodes, hashes variable names
//! into chunked environments, and scans case alternatives linearly; the
//! flat backend executes u32-indexed `Copy` ops with slot-resolved
//! variables and pre-lowered dispatch tables. Same semantics machinery
//! (stack marks, trimming, GC, interrupt polling) on both sides, so the
//! difference is pure dispatch-and-lookup overhead.
//!
//! Two groups:
//!
//! * `exec` — fib / primes / pipeline (and the rest of the standard
//!   suite) on a fresh machine per run: `tree` walks the core term,
//!   `flat` links a pre-lowered `Arc<Code>` and lowers only the query.
//! * `pool` — end-to-end batch throughput at 4 workers, caching
//!   disabled, tree vs compiled backend sharing one `Arc<Code>`. On a
//!   single-CPU host the workers timeshare one core, so this measures
//!   per-job cost, not parallel speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urk::{Backend, EvalPool, Options, PoolConfig};
use urk_bench::{compile, lower, pipeline_workload, run, run_flat, workloads};
use urk_machine::MachineConfig;

fn bench(c: &mut Criterion) {
    {
        let mut group = c.benchmark_group("compiled_dispatch/exec");
        group
            .sample_size(20)
            .warm_up_time(std::time::Duration::from_millis(300))
            .measurement_time(std::time::Duration::from_millis(1500));

        let mut suite = workloads();
        suite.push(pipeline_workload());
        for w in suite {
            let compiled = compile(&w);
            let code = lower(&compiled);
            // Guard: both executors must produce the expected answer
            // before either is timed.
            assert_eq!(run(&compiled, MachineConfig::default()).0, w.expected);
            assert_eq!(
                run_flat(&compiled, &code, MachineConfig::default()).0,
                w.expected
            );

            group.bench_with_input(BenchmarkId::new("tree", w.name), &compiled, |b, c| {
                b.iter(|| run(c, MachineConfig::default()))
            });
            group.bench_with_input(
                BenchmarkId::new("flat", w.name),
                &(&compiled, &code),
                |b, (c, code)| b.iter(|| run_flat(c, code, MachineConfig::default())),
            );
        }
        group.finish();
    }

    // End-to-end: the serving pool on both backends, cache off so every
    // job runs a machine. The compiled pool lowers the Prelude once and
    // shares the image across workers.
    {
        let mut group = c.benchmark_group("compiled_dispatch/pool");
        group
            .sample_size(15)
            .warm_up_time(std::time::Duration::from_millis(500))
            .measurement_time(std::time::Duration::from_secs(3));

        let jobs: Vec<String> = (0..8).map(|i| format!("sum [1 .. {}]", 2000 + i)).collect();
        for backend in [Backend::Tree, Backend::Compiled] {
            let pool = EvalPool::start(
                &[],
                Options {
                    backend,
                    ..Options::default()
                },
                PoolConfig {
                    workers: 4,
                    cache_cap: 0,
                    ..PoolConfig::default()
                },
            )
            .expect("pool starts");
            group.bench_with_input(
                BenchmarkId::from_parameter(backend.name()),
                &pool,
                |b, p| b.iter(|| p.eval_batch(&jobs)),
            );
            pool.shutdown();
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
