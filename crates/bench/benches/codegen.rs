//! E20 — tier-2 superinstruction codegen vs direct tier-1 lowering.
//!
//! Both sides execute the same flat `Code` arena on the same machine;
//! the only difference is the image. Tier 2 reruns the exception-effect
//! analysis over the workload program and uses it as a licence to fuse
//! call-free prim regions into atomic superinstructions, speculate lazy
//! value forms and regions at allocation time (raises stored as poison,
//! §3.3), substitute proven constants, fold known cases, and install
//! monomorphic inline caches at known-global call sites. So the delta is
//! pure administrative-transition count: thunk/Update round-trips and
//! per-op step prologues the licence proved away.
//!
//! The differential battery (`tests/tier2.rs`) proves the two images
//! agree observationally before this harness times them; the bench
//! re-asserts the expected answer on both sides anyway.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urk_bench::{compile, lower, lower_t2, pipeline_workload, run_flat, workloads};
use urk_machine::MachineConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("codegen/exec");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));

    let mut suite = workloads();
    suite.push(pipeline_workload());
    for w in suite {
        let compiled = compile(&w);
        let t1 = lower(&compiled);
        let t2 = lower_t2(&compiled);
        // Guard: both images must produce the expected answer before
        // either is timed, and the tier-2 gauges must show the
        // optimisations actually fired.
        assert_eq!(
            run_flat(&compiled, &t1, MachineConfig::default()).0,
            w.expected
        );
        let (got, stats) = run_flat(&compiled, &t2, MachineConfig::default());
        assert_eq!(got, w.expected);
        assert!(
            stats.fused_steps > 0 && stats.ic_hits > 0,
            "{}: {stats:?}",
            w.name
        );

        group.bench_with_input(
            BenchmarkId::new("tier1", w.name),
            &(&compiled, &t1),
            |b, (c, code)| b.iter(|| run_flat(c, code, MachineConfig::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("tier2", w.name),
            &(&compiled, &t2),
            |b, (c, code)| b.iter(|| run_flat(c, code, MachineConfig::default())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
