//! E14 — scheduler overhead of the §4.4 concurrency extension: the same
//! total work run sequentially, under the thread scheduler with one
//! thread, and split across four threads communicating through an MVar.
//!
//! Expected shape: the scheduler costs a small constant per IO action; the
//! machine and semantics are untouched.

use criterion::{criterion_group, criterion_main, Criterion};
use urk::Session;
use urk_io::IoResult;

fn session(src: &str) -> Session {
    let mut s = Session::new();
    s.load(src).expect("loads");
    s
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrency_overhead");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));

    let sequential = session(
        "work n acc = if n == 0 then return acc else work (n - 1) (acc + n)\n\
         main = work 2000 0",
    );
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let out = sequential.run_main("").expect("runs");
            assert!(matches!(out.result, IoResult::Done(_)));
        })
    });

    let single_thread = session(
        "work n acc = if n == 0 then return acc else work (n - 1) (acc + n)\n\
         main = work 2000 0",
    );
    group.bench_function("scheduler-one-thread", |b| {
        b.iter(|| {
            let out = single_thread.run_main_concurrent("").expect("runs");
            assert!(matches!(out.main, IoResult::Done(_)));
        })
    });

    let four_threads = session(
        "work m n acc = if n == 0 then putMVar m acc else work m (n - 1) (acc + n)\n\
         collect m k acc = if k == 0 then return acc\n                   else takeMVar m >>= \\v -> collect m (k - 1) (acc + v)\n\
         main = do\n  m <- newEmptyMVar\n  forkIO (work m 500 0)\n  forkIO (work m 500 0)\n  forkIO (work m 500 0)\n  forkIO (work m 500 0)\n  collect m 4 0",
    );
    group.bench_function("four-threads-mvar", |b| {
        b.iter(|| {
            let out = four_threads.run_main_concurrent("").expect("runs");
            assert!(matches!(out.main, IoResult::Done(_)));
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
