//! E16 — cost of the static exception-effect analysis and its consumers.
//!
//! Three prices are measured, all off the evaluation hot path:
//!
//! * `analyze`: the whole-program fixpoint (`analyze_program`) over the
//!   Prelude plus the lint demo program;
//! * `lint`: a full `urk lint` pass (analysis plus the per-binding
//!   diagnostic walk), as the CLI runs it;
//! * `verify`: `Code::verify` over the session's compiled arena — the
//!   check that debug builds (and `--verify-code`) run on every link.
//!
//! Expected shape: all three are microseconds-to-low-milliseconds,
//! one-shot costs; none of them touch the per-step evaluation loop.

use criterion::{criterion_group, criterion_main, Criterion};
use urk::Session;

const DEMO: &str = include_str!("../../../examples/lint_demo.urk");

fn bench(c: &mut Criterion) {
    let mut session = Session::new();
    session.load(DEMO).expect("lint demo loads");

    let mut group = c.benchmark_group("analysis_cost");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));

    group.bench_function("analyze", |b| b.iter(|| session.analyze()));

    group.bench_function("lint", |b| {
        b.iter(|| {
            let findings = session.lint();
            assert_eq!(findings.len(), 9, "the demo's finding count is fixed");
            findings
        })
    });

    let code = session.compiled_code();
    group.bench_function("verify", |b| {
        b.iter(|| code.verify().expect("compiler output verifies"))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
