//! E21 — cost of tier-2 translation validation (DESIGN.md §16).
//!
//! The validation gate is three one-shot passes, all off the evaluation
//! hot path; this bench prices each against the certifying compilation
//! itself so the overhead claim ("validation costs about as much as the
//! compilation it checks") stays measured, not asserted:
//!
//! * `certify`: `tier2_optimize_certified` — the tier-2 pass emitting
//!   its rewrite certificate alongside the image;
//! * `validate`: `validate_tier2` — the independent lockstep walk
//!   discharging every certificate entry against re-derived
//!   obligations;
//! * `audit`: `audit_binding_facts` — the analysis-side fresh
//!   recomputation refusing non-reproducible facts (dominated by
//!   `analyze_program`, cf. `analysis_cost/analyze`).
//!
//! The subject is the Prelude plus `examples/lint_demo.urk`, the same
//! program `analysis_cost` prices, so the two recorded runs
//! (`BENCH_analysis.json`, `BENCH_validate.json`) compare directly.

use criterion::{criterion_group, criterion_main, Criterion};
use urk::{tier2_facts_for, Session};
use urk_analysis::audit_binding_facts;
use urk_machine::{compile_program, tier2_optimize_certified, validate_tier2};

const DEMO: &str = include_str!("../../../examples/lint_demo.urk");

fn bench(c: &mut Criterion) {
    let mut session = Session::new();
    session.load(DEMO).expect("lint demo loads");
    let binds = session.program().binds.clone();
    let base = compile_program(&binds);
    let facts = tier2_facts_for(session.analyze(), &binds);
    let (t2, cert) = tier2_optimize_certified(&base, &facts);
    assert!(
        !cert.entries.is_empty(),
        "the subject must produce rewrites"
    );
    let claimed = session.analyze().binding_facts(&binds);

    let mut group = c.benchmark_group("validator_cost");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));

    group.bench_function("certify", |b| {
        b.iter(|| tier2_optimize_certified(&base, &facts))
    });

    group.bench_function("validate", |b| {
        b.iter(|| validate_tier2(&base, &t2, &cert, &facts).expect("validates"))
    });

    group.bench_function("audit", |b| {
        b.iter(|| audit_binding_facts(session.program(), session.data(), &claimed).expect("audits"))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
