//! E19 — the generational nursery heap and tagged unboxed values.
//!
//! The PR 4 numbers in BENCH_compiled_dispatch.json were taken on the
//! single-space mark-sweep heap with the interned literal pool. This
//! bench re-times the same workloads on the generational heap: a
//! bump-allocated nursery with copying minor collections, a tenured old
//! space with the mark-sweep collector as fallback, and small integers /
//! nullary constructors unboxed into tagged `NodeId` words (never heap
//! cells at all). Behavioural agreement is asserted before anything is
//! timed.
//!
//! Groups:
//!
//! * `exec` — the standard suite on both executors with the default
//!   config, directly comparable to `compiled_dispatch/exec`;
//! * `churn` — a list-heavy workload under real collection pressure
//!   (nursery crossings and major thresholds), timed at several nursery
//!   sizes on the flat backend, so the minor-collection cost curve is
//!   visible rather than inferred.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urk_bench::{compile, lower, pipeline_workload, run, run_flat, workloads, Workload};
use urk_machine::MachineConfig;

/// Allocation-heavy churn: builds, sorts, and folds short-lived lists so
/// most cells die in the nursery while the sorted spine survives.
fn churn_workload() -> Workload {
    Workload {
        name: "churn",
        program: "ins x ys = case ys of { [] -> [x]; z:zs -> if x <= z then x : z : zs else z : ins x zs }\n\
                  isort xs = case xs of { [] -> []; y:ys -> ins y (isort ys) }\n\
                  mklist n = if n == 0 then [] else (n * 37 % 101) : mklist (n - 1)\n\
                  lsum xs = case xs of { [] -> 0; y:ys -> y + lsum ys }\n\
                  rounds k acc = if k == 0 then acc else rounds (k - 1) (acc + lsum (isort (mklist 60)))",
        query: "rounds 12 0".into(),
        expected: "36840",
        first_order: true,
    }
}

fn bench(c: &mut Criterion) {
    {
        let mut group = c.benchmark_group("gc_heap/exec");
        group
            .sample_size(20)
            .warm_up_time(std::time::Duration::from_millis(300))
            .measurement_time(std::time::Duration::from_millis(1500));

        let mut suite = workloads();
        suite.push(pipeline_workload());
        for w in suite {
            let compiled = compile(&w);
            let code = lower(&compiled);
            assert_eq!(run(&compiled, MachineConfig::default()).0, w.expected);
            assert_eq!(
                run_flat(&compiled, &code, MachineConfig::default()).0,
                w.expected
            );

            group.bench_with_input(BenchmarkId::new("tree", w.name), &compiled, |b, c| {
                b.iter(|| run(c, MachineConfig::default()))
            });
            group.bench_with_input(
                BenchmarkId::new("flat", w.name),
                &(&compiled, &code),
                |b, (c, code)| b.iter(|| run_flat(c, code, MachineConfig::default())),
            );
        }
        group.finish();
    }

    {
        let mut group = c.benchmark_group("gc_heap/churn");
        group
            .sample_size(20)
            .warm_up_time(std::time::Duration::from_millis(300))
            .measurement_time(std::time::Duration::from_millis(1500));

        let w = churn_workload();
        let compiled = compile(&w);
        let code = lower(&compiled);
        for nursery in [512usize, 2_048, 8_192] {
            let config = MachineConfig {
                nursery_size: nursery,
                gc_threshold: 4_000,
                ..MachineConfig::default()
            };
            let (out, stats) = run_flat(&compiled, &code, config.clone());
            assert_eq!(out, w.expected);
            // The pressure must be real: this workload has to cross the
            // nursery at every size being timed.
            assert!(stats.minor_gcs > 0, "nursery {nursery}: {stats:?}");

            group.bench_with_input(
                BenchmarkId::from_parameter(format!("nursery-{nursery}")),
                &(&compiled, &code, config),
                |b, (c, code, config)| b.iter(|| run_flat(c, code, (*config).clone())),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
