//! Pool throughput: how batch latency scales with worker count, and
//! what the shared result cache buys.
//!
//! Three groups:
//!
//! * `cpu` — a CPU-bound batch (cache disabled) at 1/2/4 workers. On a
//!   multi-core host this scales with the worker count; on a single-CPU
//!   host (CI containers) it is honestly flat — worker threads
//!   timeshare one core.
//! * `deadline` — a batch of diverging jobs cancelled by 25 ms
//!   wall-clock deadlines, at 1 vs 4 workers. Deadline-bound work
//!   overlaps genuinely even on one core: four concurrent 25 ms waits
//!   cost ~max, not ~sum, so 4 workers approach a 4× speedup
//!   regardless of core count. This is the realistic serving shape —
//!   a pool exists to stop one slow request from queueing the rest.
//! * `cache` — the same batch against a warm shared cache vs caching
//!   disabled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urk::{EvalPool, Options, PoolConfig, Supervisor};

fn pool(workers: usize, cache_cap: usize, supervisor: Supervisor) -> EvalPool {
    EvalPool::start(
        &[],
        Options::default(),
        PoolConfig {
            workers,
            cache_cap,
            supervisor,
            ..PoolConfig::default()
        },
    )
    .expect("pool starts")
}

fn bench(c: &mut Criterion) {
    // CPU-bound: eight distinct summations, no cache, so every job runs
    // a machine to completion.
    let cpu_jobs: Vec<String> = (0..8).map(|i| format!("sum [1 .. {}]", 2000 + i)).collect();
    {
        let mut group = c.benchmark_group("pool_throughput/cpu");
        group
            .sample_size(15)
            .warm_up_time(std::time::Duration::from_millis(500))
            .measurement_time(std::time::Duration::from_secs(3));
        for workers in [1usize, 2, 4] {
            let p = pool(workers, 0, Supervisor::default());
            group.bench_with_input(BenchmarkId::from_parameter(workers), &p, |b, p| {
                b.iter(|| p.eval_batch(&cpu_jobs))
            });
            p.shutdown();
        }
        group.finish();
    }

    // Deadline-bound: four runaway jobs, each cancelled at 25 ms. The
    // batch costs ~sum of deadlines on one worker, ~max on four.
    let runaway_jobs = vec!["let f = \\n -> f (n + 1) in f 0"; 4];
    {
        let mut group = c.benchmark_group("pool_throughput/deadline");
        group
            .sample_size(15)
            .warm_up_time(std::time::Duration::from_millis(500))
            .measurement_time(std::time::Duration::from_secs(4));
        for workers in [1usize, 4] {
            let p = pool(workers, 0, Supervisor::with_deadline(25));
            group.bench_with_input(BenchmarkId::from_parameter(workers), &p, |b, p| {
                b.iter(|| p.eval_batch(&runaway_jobs))
            });
            p.shutdown();
        }
        group.finish();
    }

    // Cache: the same batch served from a warm shared cache vs with
    // caching disabled.
    {
        let mut group = c.benchmark_group("pool_throughput/cache");
        group
            .sample_size(15)
            .warm_up_time(std::time::Duration::from_millis(500))
            .measurement_time(std::time::Duration::from_secs(3));

        let warm = pool(4, 256, Supervisor::default());
        warm.eval_batch(&cpu_jobs); // populate
        group.bench_with_input(BenchmarkId::from_parameter("warm"), &warm, |b, p| {
            b.iter(|| p.eval_batch(&cpu_jobs))
        });
        assert!(warm.cache_stats().hits > 0, "the warm pool must be hitting");
        warm.shutdown();

        let cold = pool(4, 0, Supervisor::default());
        group.bench_with_input(BenchmarkId::from_parameter("nocache"), &cold, |b, p| {
            b.iter(|| p.eval_batch(&cpu_jobs))
        });
        cold.shutdown();
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
