//! E4 / cross-layer — the cost of the semantic machinery itself: the
//! denotational evaluator (including exception-finding mode), the precise
//! baseline, outcome-set enumeration for the non-deterministic baseline,
//! and a full law-table classification.
//!
//! These are not claims from the paper so much as an honest accounting of
//! what the reproduction's validator costs.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion};
use urk_denot::{DenotEvaluator, NondetConfig, PreciseConfig, PreciseEvaluator};
use urk_syntax::{desugar_expr, parse_expr_src, DataEnv};
use urk_transform::{classify, standard_laws};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("semantics_layers");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));

    let data = DataEnv::new();
    let term = Rc::new(
        desugar_expr(
            &parse_expr_src(
                r#"case raise Overflow of
                     { (a, b) -> case (1/0) + raise (UserError "Urk") of
                         { (p, q) -> a + p } }"#,
            )
            .expect("parses"),
            &data,
        )
        .expect("desugars"),
    );

    group.bench_function("imprecise-denotation", |b| {
        b.iter(|| {
            let ev = DenotEvaluator::new(&data);
            ev.eval_closed(&term)
        })
    });

    group.bench_function("precise-denotation", |b| {
        b.iter(|| {
            let ev = PreciseEvaluator::new(PreciseConfig::default());
            ev.eval_closed(&term)
        })
    });

    group.bench_function("nondet-outcome-enumeration", |b| {
        b.iter(|| urk_denot::enumerate_outcomes(&term, &NondetConfig::default()))
    });

    let laws = standard_laws();
    group.bench_function("law-classification-one", |b| b.iter(|| classify(&laws[0])));

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
