//! E6 — §3.3: `raise` is a stack trim. Compared against the §2.2 explicit
//! encoding, which allocates and pattern-matches a `Bad` cell at every
//! level on the way out.
//!
//! Expected shape: both are linear in depth (the work to *build* the stack
//! dominates), but the trim allocates nothing, so `raise` stays ahead and
//! the gap widens with depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urk_bench::{deep_propagate, deep_raise, run, run_caught};
use urk_machine::MachineConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("raise_cost");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));

    for depth in [100u64, 1_000, 10_000] {
        let trim = deep_raise(depth);
        let explicit = deep_propagate(depth);
        group.bench_with_input(BenchmarkId::new("stack-trim", depth), &trim, |b, c| {
            b.iter(|| run_caught(c, MachineConfig::default()))
        });
        group.bench_with_input(
            BenchmarkId::new("explicit-propagation", depth),
            &explicit,
            |b, c| b.iter(|| run(c, MachineConfig::default())),
        );
    }

    // Re-raising a poisoned thunk is O(1) regardless of the original
    // depth (§3.3: the thunk was overwritten with `raise ex`).
    group.bench_function("re-raise-poisoned", |b| {
        use std::rc::Rc;
        use urk_machine::{MEnv, Machine};
        use urk_syntax::core::Expr;
        let mut m = Machine::new(MachineConfig::default());
        let t = m.alloc_thunk(
            Rc::new(Expr::div(Expr::int(1), Expr::int(0))),
            MEnv::empty(),
        );
        let _ = m.eval_node(t, true).expect("first raise");
        b.iter(|| m.eval_node(t, true).expect("re-raise"));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
