//! E9 — §3.4: strictness analysis turns call-by-need into call-by-value,
//! the "crucial transformation" that only the imprecise semantics
//! licenses.
//!
//! Expected shape: the transformed workloads allocate fewer thunks and
//! perform (orders of magnitude) fewer updates; wall-clock improves on the
//! thunk-heavy workloads (accumulating loops most of all).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urk_bench::{apply_cbv, compile, run, workloads};
use urk_machine::MachineConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("strictness_payoff");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));

    for w in workloads() {
        let lazy = compile(&w);
        let (cbv, rewrites) = apply_cbv(&lazy);
        assert!(rewrites > 0, "cbv should fire on {}", w.name);

        group.bench_with_input(BenchmarkId::new("call-by-need", w.name), &lazy, |b, c| {
            b.iter(|| run(c, MachineConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("call-by-value", w.name), &cbv, |b, c| {
            b.iter(|| run(c, MachineConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
