//! Interrupt-poll overhead: the wall-clock cancellation hook must be free
//! when nothing fires.
//!
//! Three configurations per workload:
//!
//! * `baseline`  — the machine's private (never-armed) handle;
//! * `external`  — an externally attached `InterruptHandle` shared with a
//!   (never-firing) watchdog, i.e. the supervised-evaluation setup;
//! * `idle-chaos` — an armed but *empty* fault plan, so the per-step chaos
//!   bookkeeping runs with nothing to deliver.
//!
//! Expected shape: all three within noise of each other — the per-step cost
//! is one relaxed atomic load (plus cursor checks for `idle-chaos`), and no
//! configuration allocates per step (asserted by
//! `crates/bench/tests/poll_overhead.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urk_bench::{compile, run, workloads};
use urk_machine::{FaultPlan, InterruptHandle, MachineConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("interrupt_poll");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200));

    for w in workloads() {
        if w.name != "fib" && w.name != "primes" {
            continue;
        }
        let compiled = compile(&w);

        group.bench_with_input(BenchmarkId::new("baseline", w.name), &compiled, |b, c| {
            b.iter(|| run(c, MachineConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("external", w.name), &compiled, |b, c| {
            b.iter(|| {
                run(
                    c,
                    MachineConfig {
                        interrupt: Some(InterruptHandle::new()),
                        ..MachineConfig::default()
                    },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("idle-chaos", w.name), &compiled, |b, c| {
            b.iter(|| {
                run(
                    c,
                    MachineConfig {
                        chaos: Some(FaultPlan {
                            horizon: u64::MAX,
                            ..FaultPlan::default()
                        }),
                        ..MachineConfig::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
