//! The cross-product differential oracle for one candidate term.
//!
//! Every candidate is evaluated:
//!
//! * **denotationally** — the ground truth: a value, or an imprecise
//!   exception *set*;
//! * on the **tree machine** and the **compiled backend at both tiers**
//!   (direct lowering and the analysis-licensed tier-2 image), under
//!   left-to-right, right-to-left, and a seeded order — nine machine
//!   runs whose renderings must agree pairwise (tree vs compiled is the
//!   PR 4 invariant; tree vs tier 2 is the tier-2 license check) and
//!   individually refine the denotation (§3.5: any member of the set is
//!   a correct answer);
//! * under seeded [`FaultPlan`] **chaos** on the tree backend and both
//!   compiled tiers (the §5.1 robustness claim, via
//!   `urk_io::chaos_run_with_plan*`);
//! * optionally under a **wall-clock interrupt** delivered from a real
//!   watchdog thread mid-run.
//!
//! Every machine is audited after its episode ([`Machine::audit_heap`]) —
//! the structured [`urk_machine::HeapAudit`] report lands in the failure
//! detail. Runs that hit the step limit are *skipped*, not failed: the
//! two backends count steps differently, so a limit on one side proves
//! nothing (and the generator's grammar terminates; limits only trip on
//! pathological mutants).

use std::rc::Rc;
use std::sync::Arc;

use urk_denot::{show_denot, Denot, DenotConfig, DenotEvaluator, Env};
use urk_io::{chaos_run_with_plan, chaos_run_with_plan_compiled};
use urk_machine::{FaultPlan, MEnv, Machine, MachineConfig, MachineError, Outcome};
use urk_syntax::core::Expr;
use urk_syntax::Exception;

use crate::coverage::Fingerprint;
use crate::ctx::FuzzCtx;

/// Which invariant a failing candidate broke. Shrinking preserves the
/// kind: the minimized term fails the *same* check as the original.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CheckKind {
    /// Tree and compiled backends disagreed under the same order.
    BackendDivergence,
    /// A machine produced a value the denotation does not justify.
    UnsoundValue,
    /// A machine raised an exception outside the denoted set.
    UnsoundException,
    /// An exception escaped the episode's catch mark.
    UncaughtEscape,
    /// `Heap::audit()` found the machine unsafe to reuse after a clean run.
    AuditFailure,
    /// A chaos-injected run broke soundness, heap consistency, or
    /// post-fault re-evaluation (`ChaosReport::passed() == false`).
    ChaosFailure,
    /// A wall-clock interrupt produced an unjustified outcome or left the
    /// machine unusable.
    InterruptFailure,
    /// The machine died with an internal error.
    MachineInternal,
}

impl std::fmt::Display for CheckKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CheckKind::BackendDivergence => "backend-divergence",
            CheckKind::UnsoundValue => "unsound-value",
            CheckKind::UnsoundException => "unsound-exception",
            CheckKind::UncaughtEscape => "uncaught-escape",
            CheckKind::AuditFailure => "audit-failure",
            CheckKind::ChaosFailure => "chaos-failure",
            CheckKind::InterruptFailure => "interrupt-failure",
            CheckKind::MachineInternal => "machine-internal",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for CheckKind {
    type Err = String;
    fn from_str(s: &str) -> Result<CheckKind, String> {
        Ok(match s {
            "backend-divergence" => CheckKind::BackendDivergence,
            "unsound-value" => CheckKind::UnsoundValue,
            "unsound-exception" => CheckKind::UnsoundException,
            "uncaught-escape" => CheckKind::UncaughtEscape,
            "audit-failure" => CheckKind::AuditFailure,
            "chaos-failure" => CheckKind::ChaosFailure,
            "interrupt-failure" => CheckKind::InterruptFailure,
            "machine-internal" => CheckKind::MachineInternal,
            other => return Err(format!("unknown check kind '{other}'")),
        })
    }
}

/// A broken invariant, with enough detail to diagnose without replaying.
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: CheckKind,
    pub detail: String,
}

/// What one oracle pass concluded.
#[derive(Clone, Debug, Default)]
pub struct Verdict {
    /// The first invariant violation, if any.
    pub failure: Option<Failure>,
    /// True when the candidate was inconclusive (step-limit or
    /// denotational fuel exhaustion) — not counted as covered or failing.
    pub skipped: bool,
    /// Coverage features from the compiled runs.
    pub fingerprint: Fingerprint,
    /// Compiled left-to-right step count (the coverage-signal run).
    pub steps: u64,
}

impl Verdict {
    fn fail(kind: CheckKind, detail: String) -> Verdict {
        Verdict {
            failure: Some(Failure { kind, detail }),
            ..Verdict::default()
        }
    }

    fn skip() -> Verdict {
        Verdict {
            skipped: true,
            ..Verdict::default()
        }
    }
}

/// Oracle tunables. `machine` is the base configuration every run derives
/// from (order, chaos, coverage, and interrupts are overridden per run).
#[derive(Clone, Debug)]
pub struct OracleConfig {
    pub machine: MachineConfig,
    pub denot_fuel: u64,
    /// One chaos round per seed, each run on both backends.
    pub chaos_seeds: Vec<u64>,
    /// Arm `FaultPlan::sabotage_async_restore` on every chaos plan (the
    /// seeded-bug acceptance switch: the audit must catch it).
    pub sabotage: bool,
    /// Also run one wall-clock interrupt check (a real watchdog thread;
    /// the verdict is deterministic — any landing point is acceptable —
    /// but its timing is not, so it never feeds the fingerprint).
    pub wallclock_interrupt: bool,
    /// The seed for the `OrderPolicy::Seeded` run.
    pub seeded_order: u64,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            machine: MachineConfig {
                max_steps: 400_000,
                gc_threshold: 20_000,
                ..MachineConfig::default()
            },
            denot_fuel: 2_000_000,
            chaos_seeds: vec![],
            sabotage: false,
            wallclock_interrupt: false,
            seeded_order: 11,
        }
    }
}

/// Machine and oracle spell buried exceptional fields differently
/// (`raise {...}` vs `Bad {...}`); compare spines only in that case —
/// the same normalization `urk_io::chaos` and the soundness suite use.
pub fn renders_agree(machine: &str, denot: &str) -> bool {
    if denot.contains("Bad {") {
        machine.split_whitespace().next() == denot.split_whitespace().next()
    } else {
        machine == denot.replace("(Bad {", "(raise {")
    }
}

/// One machine episode's observable behaviour, normalized for comparison.
enum Observed {
    Rendered(String),
    Caught(Exception),
}

/// Which execution engine one oracle run drives: the tree walker, or the
/// compiled backend linked with the tier-1 or tier-2 image.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Engine {
    Tree,
    Tier1,
    Tier2,
}

impl Engine {
    fn name(self) -> &'static str {
        match self {
            Engine::Tree => "tree",
            Engine::Tier1 => "compiled",
            Engine::Tier2 => "compiled-t2",
        }
    }
}

/// Runs one engine/order combination; `Err` is a verdict-ending
/// condition (skip or failure).
#[allow(clippy::too_many_arguments)]
fn run_one(
    ctx: &FuzzCtx,
    query: &Rc<Expr>,
    base: &MachineConfig,
    order: urk_machine::OrderPolicy,
    engine: Engine,
    with_coverage: bool,
    fp: &mut Fingerprint,
    steps_out: &mut u64,
) -> Result<Observed, Verdict> {
    let mut m = Machine::new(MachineConfig {
        order,
        coverage: with_coverage,
        ..base.clone()
    });
    let out = match engine {
        Engine::Tree => {
            let menv = m.bind_recursive(&ctx.binds, &MEnv::empty());
            m.eval(Rc::clone(query), &menv, true)
        }
        Engine::Tier1 => {
            m.link_code(Arc::clone(&ctx.code));
            m.eval_code_expr(query, true)
        }
        Engine::Tier2 => {
            m.link_code(Arc::clone(&ctx.code_t2));
            m.eval_code_expr(query, true)
        }
    };
    let outcome = match out {
        Ok(o) => o,
        Err(MachineError::StepLimit) => return Err(Verdict::skip()),
        Err(e) => {
            return Err(Verdict::fail(
                CheckKind::MachineInternal,
                format!("{} {}: {e}", engine.name(), order_name(order)),
            ))
        }
    };
    let observed = match &outcome {
        Outcome::Value(n) => Observed::Rendered(m.render(*n, 16)),
        Outcome::Caught(e) => Observed::Caught(e.clone()),
        Outcome::Uncaught(e) => {
            return Err(Verdict::fail(
                CheckKind::UncaughtEscape,
                format!("{} {}: uncaught {e}", engine.name(), order_name(order)),
            ))
        }
    };
    let audit = m.audit_heap();
    if !audit.is_consistent() {
        return Err(Verdict::fail(
            CheckKind::AuditFailure,
            format!("{} {}: {audit}", engine.name(), order_name(order)),
        ));
    }
    if with_coverage {
        *steps_out = m.stats().steps;
    }
    fp.merge(&Fingerprint::collect(
        m.coverage(),
        m.stats(),
        Some(&outcome),
    ));
    Ok(observed)
}

fn order_name(order: urk_machine::OrderPolicy) -> &'static str {
    match order {
        urk_machine::OrderPolicy::LeftToRight => "l2r",
        urk_machine::OrderPolicy::RightToLeft => "r2l",
        urk_machine::OrderPolicy::Seeded(_) => "seeded",
    }
}

fn observed_text(o: &Observed) -> String {
    match o {
        Observed::Rendered(s) => format!("value {s}"),
        Observed::Caught(e) => format!("caught {e}"),
    }
}

/// The full cross-product check for one candidate.
pub fn run_oracle(ctx: &FuzzCtx, query: &Rc<Expr>, cfg: &OracleConfig) -> Verdict {
    // The ground truth. The depth guard is deliberately lower than the
    // chaos driver's 2,000: the evaluator recurses on the Rust stack, and
    // mutants splice in huge literals (`fzsum 3037000499`) that would
    // blow a 2 MiB test-thread stack before fuel runs out. Exhaustion
    // denotes ⊥, which the verdict below counts as a skip.
    let ev = DenotEvaluator::with_config(
        &ctx.data,
        DenotConfig {
            fuel: cfg.denot_fuel,
            max_depth: 256,
            ..DenotConfig::default()
        },
    );
    let denv = ev.bind_recursive(&ctx.binds, &Env::empty());
    let denot = ev.eval(query, &denv);
    if matches!(&denot, Denot::Bad(s) if s.is_all()) {
        // Fuel or depth exhaustion approximates from below by ⊥ (the full
        // set): everything refines it, so the candidate proves nothing.
        return Verdict::skip();
    }
    let oracle = show_denot(&ev, &denot, 16);

    let orders = [
        urk_machine::OrderPolicy::LeftToRight,
        urk_machine::OrderPolicy::RightToLeft,
        urk_machine::OrderPolicy::Seeded(cfg.seeded_order),
    ];
    let mut fp = Fingerprint::default();
    let mut steps = 0u64;
    let mut tree_steps = 0u64;
    for order in orders {
        let tree = match run_one(
            ctx,
            query,
            &cfg.machine,
            order,
            Engine::Tree,
            false,
            &mut fp,
            &mut steps,
        ) {
            Ok(o) => o,
            Err(v) => return v,
        };
        let compiled = match run_one(
            ctx,
            query,
            &cfg.machine,
            order,
            Engine::Tier1,
            true,
            &mut fp,
            &mut steps,
        ) {
            Ok(o) => o,
            Err(v) => return v,
        };
        let tier2 = match run_one(
            ctx,
            query,
            &cfg.machine,
            order,
            Engine::Tier2,
            false,
            &mut fp,
            &mut steps,
        ) {
            Ok(o) => o,
            Err(v) => return v,
        };
        // PR 4's invariant: same order ⇒ byte-identical behaviour across
        // backends. Tier 2 must preserve it too — the analysis license
        // never buys observable divergence, only fewer steps.
        let (t, c) = (observed_text(&tree), observed_text(&compiled));
        if t != c {
            return Verdict::fail(
                CheckKind::BackendDivergence,
                format!("{}: tree={t} compiled={c}", order_name(order)),
            );
        }
        let c2 = observed_text(&tier2);
        if t != c2 {
            return Verdict::fail(
                CheckKind::BackendDivergence,
                format!("{}: tree={t} compiled-t2={c2}", order_name(order)),
            );
        }
        // §3.5 refinement against the denoted set.
        match &tree {
            Observed::Rendered(r) => {
                let ok = matches!(&denot, Denot::Ok(_)) && renders_agree(r, &oracle);
                if !ok {
                    return Verdict::fail(
                        CheckKind::UnsoundValue,
                        format!("{}: machine value {r}, oracle {oracle}", order_name(order)),
                    );
                }
            }
            Observed::Caught(e) => {
                let ok = matches!(&denot, Denot::Bad(set) if set.contains(e));
                if !ok {
                    return Verdict::fail(
                        CheckKind::UnsoundException,
                        format!("{}: caught {e} not in oracle {oracle}", order_name(order)),
                    );
                }
            }
        }
        if order == urk_machine::OrderPolicy::LeftToRight {
            tree_steps = baseline_tree_steps(ctx, query, &cfg.machine);
        }
    }

    // Chaos rounds: both backends, per-backend horizons, seeded plans.
    for &seed in &cfg.chaos_seeds {
        let mut plan = FaultPlan::generate(seed, tree_steps);
        plan.sabotage_async_restore = cfg.sabotage;
        let rep = chaos_run_with_plan(
            &ctx.data,
            &ctx.binds,
            query,
            &cfg.machine,
            cfg.denot_fuel,
            plan,
        );
        if !rep.passed() {
            return Verdict::fail(
                CheckKind::ChaosFailure,
                format!(
                    "tree chaos seed {seed}: sound={} heap={} reeval={} outcome={} oracle={}",
                    rep.sound, rep.heap_consistent, rep.reeval_ok, rep.outcome, rep.oracle
                ),
            );
        }
        let mut plan = FaultPlan::generate(seed, steps.max(64));
        plan.sabotage_async_restore = cfg.sabotage;
        let rep = chaos_run_with_plan_compiled(
            &ctx.data,
            &ctx.binds,
            &ctx.code,
            query,
            &cfg.machine,
            cfg.denot_fuel,
            plan,
        );
        if !rep.passed() {
            return Verdict::fail(
                CheckKind::ChaosFailure,
                format!(
                    "compiled chaos seed {seed}: sound={} heap={} reeval={} outcome={} oracle={}",
                    rep.sound, rep.heap_consistent, rep.reeval_ok, rep.outcome, rep.oracle
                ),
            );
        }
        // The tier-2 image under the same plan: fused regions must leave
        // every suspension restorable (§5.1), so asynchronous injection
        // mid-superinstruction has to behave exactly like injection at
        // the equivalent unfused step boundary.
        let mut plan = FaultPlan::generate(seed, steps.max(64));
        plan.sabotage_async_restore = cfg.sabotage;
        let rep = chaos_run_with_plan_compiled(
            &ctx.data,
            &ctx.binds,
            &ctx.code_t2,
            query,
            &cfg.machine,
            cfg.denot_fuel,
            plan,
        );
        if !rep.passed() {
            return Verdict::fail(
                CheckKind::ChaosFailure,
                format!(
                    "compiled-t2 chaos seed {seed}: sound={} heap={} reeval={} outcome={} oracle={}",
                    rep.sound, rep.heap_consistent, rep.reeval_ok, rep.outcome, rep.oracle
                ),
            );
        }
    }

    if cfg.wallclock_interrupt {
        if let Some(f) = wallclock_interrupt_check(ctx, query, &cfg.machine, &denot, &oracle) {
            return Verdict::fail(CheckKind::InterruptFailure, f);
        }
    }

    // Value-profile feature: the shape of the candidate's denoted
    // exception set (which imprecise members combined, or "a value").
    fp.add_exn_set_shape(match &denot {
        Denot::Ok(_) => None,
        Denot::Bad(set) => Some(set),
    });

    Verdict {
        failure: None,
        skipped: false,
        fingerprint: fp,
        steps,
    }
}

/// Tree-backend step count of one undisturbed run (the tree chaos
/// horizon; the compiled horizon reuses the coverage run's count).
fn baseline_tree_steps(ctx: &FuzzCtx, query: &Rc<Expr>, base: &MachineConfig) -> u64 {
    let mut m = Machine::new(base.clone());
    let menv = m.bind_recursive(&ctx.binds, &MEnv::empty());
    let _ = m.eval(Rc::clone(query), &menv, true);
    m.stats().steps.max(64)
}

/// Delivers a real wall-clock `Interrupt` mid-run and checks §5.1's
/// contract: the outcome is either the undisturbed answer or
/// `Caught(Interrupt)`, the heap audits clean, and the *same machine*
/// re-evaluates to an oracle-justified answer afterwards.
fn wallclock_interrupt_check(
    ctx: &FuzzCtx,
    query: &Rc<Expr>,
    base: &MachineConfig,
    denot: &Denot,
    oracle: &str,
) -> Option<String> {
    let mut m = Machine::new(base.clone());
    m.link_code(Arc::clone(&ctx.code));
    let handle = m.interrupt_handle();
    let watchdog = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_micros(150));
        handle.deliver(Exception::Interrupt);
    });
    let out = m.eval_code_expr(query, true);
    watchdog.join().ok();
    // The watchdog may have fired after completion; a pending interrupt
    // must not bleed into rendering or the re-evaluation.
    m.interrupt_handle().clear();
    let ok = match &out {
        Ok(Outcome::Value(n)) => {
            let r = m.render(*n, 16);
            matches!(denot, Denot::Ok(_)) && renders_agree(&r, oracle)
        }
        Ok(Outcome::Caught(Exception::Interrupt)) => true,
        Ok(Outcome::Caught(e)) => matches!(denot, Denot::Bad(set) if set.contains(e)),
        _ => false,
    };
    if !ok {
        return Some(format!("interrupted run produced {out:?}, oracle {oracle}"));
    }
    let audit = m.audit_heap();
    if !audit.is_consistent() {
        return Some(format!("after interrupt: {audit}"));
    }
    let re = m.eval_code_expr(query, true);
    let re_ok = match &re {
        Ok(Outcome::Value(n)) => {
            let r = m.render(*n, 16);
            matches!(denot, Denot::Ok(_)) && renders_agree(&r, oracle)
        }
        Ok(Outcome::Caught(e)) => matches!(denot, Denot::Bad(set) if set.contains(e)),
        _ => false,
    };
    if !re_ok {
        return Some(format!(
            "post-interrupt re-evaluation produced {re:?}, oracle {oracle}"
        ));
    }
    let audit = m.audit_heap();
    if !audit.is_consistent() {
        return Some(format!("after re-evaluation: {audit}"));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TermGen;

    #[test]
    fn generated_terms_pass_the_oracle() {
        let ctx = FuzzCtx::new();
        let cfg = OracleConfig {
            chaos_seeds: vec![3],
            ..OracleConfig::default()
        };
        let mut g = TermGen::new(5, 4);
        let mut checked = 0;
        for _ in 0..40 {
            let t = Rc::new(g.term());
            let v = run_oracle(&ctx, &t, &cfg);
            assert!(
                v.failure.is_none(),
                "clean oracle failed on {t:?}: {:?}",
                v.failure
            );
            if !v.skipped {
                checked += 1;
                assert!(!v.fingerprint.features.is_empty());
            }
        }
        assert!(
            checked > 20,
            "too many skipped candidates ({checked} checked)"
        );
    }

    #[test]
    fn sabotage_is_caught_as_a_chaos_failure() {
        let ctx = FuzzCtx::new();
        let cfg = OracleConfig {
            chaos_seeds: (0..8).collect(),
            sabotage: true,
            ..OracleConfig::default()
        };
        // A shared expensive thunk: injections land mid-update, and the
        // sabotaged restore must strand a black hole the audit reports.
        let t = Rc::new(Expr::add(
            Expr::let_(
                "s",
                Expr::app(Expr::var("fzsum"), Expr::int(24)),
                Expr::add(Expr::var("s"), Expr::var("s")),
            ),
            Expr::int(1),
        ));
        let v = run_oracle(&ctx, &t, &cfg);
        match v.failure {
            Some(f) => assert_eq!(f.kind, CheckKind::ChaosFailure, "{}", f.detail),
            None => panic!("sabotaged restore was not detected"),
        }
    }
}
