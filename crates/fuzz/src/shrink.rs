//! Deterministic counterexample minimization.
//!
//! Greedy delta-debugging over the typed site map: at each round the
//! shrinker enumerates strictly-smaller candidate reductions in a fixed
//! order — hoist a closed subtree to the root (smallest first), collapse a
//! subtree to a literal, unwrap `let`/`seq`/redex/`case` shells, drop case
//! alternatives — and keeps the first candidate that still fails the
//! *same* oracle check. No randomness anywhere: the same failing term,
//! check kind, and oracle configuration always minimize to the
//! byte-identical term (the shrinking-determinism suite asserts exactly
//! this).

use std::collections::BTreeSet;
use std::rc::Rc;

use urk_syntax::core::{Expr, PrimOp};
use urk_syntax::Symbol;

use crate::ctx::FuzzCtx;
use crate::mutate::{collect_sites, get_at, replace_at};
use crate::oracle::{run_oracle, CheckKind, OracleConfig};

/// Minimizes `expr`, preserving failure of `kind` under `cfg`. Each
/// accepted reduction strictly shrinks the term, so the loop terminates;
/// `max_attempts` bounds the total number of oracle evaluations spent.
pub fn shrink(
    ctx: &FuzzCtx,
    expr: Rc<Expr>,
    kind: CheckKind,
    cfg: &OracleConfig,
    max_attempts: u64,
) -> Rc<Expr> {
    let globals: BTreeSet<Symbol> = ctx.global_names().into_iter().collect();
    let mut cur = expr;
    let mut attempts = 0u64;
    loop {
        let mut improved = false;
        for cand in candidates(&cur, &globals) {
            if attempts >= max_attempts {
                return cur;
            }
            if cand.size() >= cur.size() {
                continue;
            }
            let cand = Rc::new(cand);
            if !ctx.well_typed(&cand) {
                continue;
            }
            attempts += 1;
            let v = run_oracle(ctx, &cand, cfg);
            if v.failure.is_some_and(|f| f.kind == kind) {
                cur = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return cur;
        }
    }
}

/// All one-step reductions of `e`, most aggressive first.
fn candidates(e: &Expr, globals: &BTreeSet<Symbol>) -> Vec<Expr> {
    let sites = collect_sites(e);
    let mut out: Vec<Expr> = Vec::new();

    // 1. Hoist a closed subtree to the root, smallest first — this is
    // what collapses a large mutant to its failing core in a few steps.
    let mut hoists: Vec<Expr> = sites
        .ints
        .iter()
        .filter(|s| !s.path.is_empty())
        .map(|s| get_at(e, &s.path))
        .filter(|sub| sub.size() < e.size() && sub.free_vars().iter().all(|v| globals.contains(v)))
        .cloned()
        .collect();
    hoists.sort_by_key(Expr::size);
    out.extend(hoists);

    // 2. Collapse any compound subtree to a literal.
    for s in &sites.ints {
        if get_at(e, &s.path).size() > 1 {
            out.push(replace_at(e, &s.path, Expr::int(0)));
            out.push(replace_at(e, &s.path, Expr::int(1)));
        }
    }

    // 3. Unwrap structural shells in place.
    for s in &sites.ints {
        let scope: BTreeSet<Symbol> = s.scope.iter().copied().collect();
        match get_at(e, &s.path) {
            Expr::Let(x, _, b) if b.count_var(*x) == 0 => {
                out.push(replace_at(e, &s.path, (**b).clone()));
            }
            Expr::App(f, _) => {
                if let Expr::Lam(x, b) = f.as_ref() {
                    if b.count_var(*x) == 0 {
                        out.push(replace_at(e, &s.path, (**b).clone()));
                    }
                }
            }
            Expr::Prim(PrimOp::Seq, args) if args.len() == 2 => {
                out.push(replace_at(e, &s.path, (*args[1]).clone()));
            }
            Expr::Case(_, alts) => {
                for alt in alts {
                    let frees = alt.rhs.free_vars();
                    let escapes = frees.iter().all(|v| {
                        scope.contains(v) || globals.contains(v) || alt.binders.contains(v)
                    });
                    // Binder-using arms cannot replace the whole case.
                    if escapes && !frees.iter().any(|v| alt.binders.contains(v)) {
                        out.push(replace_at(e, &s.path, (*alt.rhs).clone()));
                    }
                }
            }
            _ => {}
        }
    }

    // 4. Drop one case alternative at a time.
    for s in &sites.cases {
        if let Expr::Case(scrut, alts) = get_at(e, &s.path) {
            if alts.len() >= 2 {
                for i in 0..alts.len() {
                    let mut alts = alts.clone();
                    alts.remove(i);
                    out.push(replace_at(e, &s.path, Expr::Case(scrut.clone(), alts)));
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use urk_syntax::expr_canonical_bytes;

    #[test]
    fn shrinking_unsound_stub_is_deterministic() {
        // Use a check that a healthy system *does* fail: sabotage chaos.
        let ctx = FuzzCtx::new();
        let cfg = OracleConfig {
            chaos_seeds: (0..8).collect(),
            sabotage: true,
            ..OracleConfig::default()
        };
        let big = Rc::new(Expr::add(
            Expr::let_(
                "s",
                Expr::app(Expr::var("fzsum"), Expr::int(24)),
                Expr::add(Expr::var("s"), Expr::var("s")),
            ),
            Expr::prim(
                PrimOp::Mul,
                [Expr::int(3), Expr::app(Expr::var("fzpick"), Expr::int(0))],
            ),
        ));
        let v = run_oracle(&ctx, &big, &cfg);
        let kind = v.failure.expect("sabotage must fail").kind;
        let s1 = shrink(&ctx, Rc::clone(&big), kind, &cfg, 400);
        let s2 = shrink(&ctx, Rc::clone(&big), kind, &cfg, 400);
        assert_eq!(
            expr_canonical_bytes(&s1),
            expr_canonical_bytes(&s2),
            "shrinking must be deterministic"
        );
        assert!(s1.size() <= big.size());
        let v = run_oracle(&ctx, &s1, &cfg);
        assert_eq!(
            v.failure.map(|f| f.kind),
            Some(kind),
            "minimized term must fail the same check"
        );
    }
}
