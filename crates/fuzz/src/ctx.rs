//! The shared evaluation context every fuzz candidate runs against: a
//! small recursive "fuzz prelude" compiled once for all three evaluators.
//!
//! The prelude is deliberately tiny but adversarial: a recursive loop
//! (steps for chaos plans to land in), a partial function (reachable
//! `PatternMatchFail`), a division wrapper (`DivideByZero` at a call
//! boundary), and a higher-order combinator (closures crossing update
//! frames). Generated terms splice calls to these, so the oracle exercises
//! global lookups, real recursion, and §3.3/§5.1 trims — not just literal
//! arithmetic.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use urk_machine::{compile_program, tier2_optimize, Code, FactVal, GlobalFact, Tier2Facts};
use urk_syntax::{desugar_program, parse_program, DataEnv, Symbol};
use urk_types::{infer_expr, infer_program, Scheme};

/// The fuzz prelude. Kept source-form so counterexample files embed it
/// verbatim and replay with a stock parser.
pub const FUZZ_PRELUDE_SRC: &str = "\
fzsum n = if n < 1 then 0 else n + fzsum (n - 1)
fzdiv a b = a / b
fzpick n = case n of { 0 -> 1; 1 -> 2 }
fztwice f x = f (f x)
";

/// Everything a candidate needs to run on all three evaluators: the data
/// environment, the core bindings, their inferred type schemes (for
/// re-checking mutants), and the one-time compiled image shared by every
/// compiled-backend machine.
pub struct FuzzCtx {
    pub data: DataEnv,
    pub binds: Vec<(Symbol, Rc<Expr>)>,
    pub globals: HashMap<Symbol, Scheme>,
    pub code: Arc<Code>,
    /// The same program at tier 2: the exception-effect analysis run over
    /// the binds and used as a license for superinstruction fusion,
    /// speculation, and inline caches. A third execution-engine column in
    /// the cross-product oracle.
    pub code_t2: Arc<Code>,
}

use urk_syntax::core::Expr;

impl FuzzCtx {
    /// The standard context over [`FUZZ_PRELUDE_SRC`].
    ///
    /// # Panics
    ///
    /// Never for the shipped prelude (it parses, desugars, and infers);
    /// panics describe which stage broke if it is edited into a bad state.
    pub fn new() -> FuzzCtx {
        FuzzCtx::from_source(FUZZ_PRELUDE_SRC).expect("the fuzz prelude is well-formed")
    }

    /// A context over arbitrary program source — used to replay `.urk`
    /// case files, which are self-contained (their binds may have drifted
    /// from the current prelude).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the stage (parse / desugar /
    /// typecheck) that rejected the source.
    pub fn from_source(src: &str) -> Result<FuzzCtx, String> {
        let surface = parse_program(src).map_err(|e| format!("parse: {e}"))?;
        let mut data = DataEnv::new();
        let prog = desugar_program(&surface, &mut data).map_err(|e| format!("desugar: {e}"))?;
        let globals = infer_program(&prog, &data).map_err(|e| format!("typecheck: {e}"))?;
        let base = compile_program(&prog.binds);
        let code_t2 = Arc::new(tier2_optimize(&base, &tier2_facts(&prog, &data)));
        let code = Arc::new(base);
        Ok(FuzzCtx {
            data,
            binds: prog.binds,
            globals,
            code,
            code_t2,
        })
    }

    /// The prelude function names (mutation keeps candidate free variables
    /// inside this set plus local binders).
    pub fn global_names(&self) -> Vec<Symbol> {
        self.binds.iter().map(|(n, _)| *n).collect()
    }

    /// This context minus one binding, recompiled — how case replay
    /// separates the `counterexample` query from the prelude it rode in
    /// with.
    ///
    /// # Errors
    ///
    /// If the remaining program no longer typechecks (a surviving binding
    /// referenced the removed one).
    pub fn without_bind(&self, name: Symbol) -> Result<FuzzCtx, String> {
        let binds: Vec<(Symbol, Rc<Expr>)> = self
            .binds
            .iter()
            .filter(|(n, _)| *n != name)
            .cloned()
            .collect();
        let prog = urk_syntax::core::CoreProgram {
            binds,
            sigs: Vec::new(),
        };
        let globals = infer_program(&prog, &self.data).map_err(|e| format!("typecheck: {e}"))?;
        let base = compile_program(&prog.binds);
        let code_t2 = Arc::new(tier2_optimize(&base, &tier2_facts(&prog, &self.data)));
        let code = Arc::new(base);
        Ok(FuzzCtx {
            data: self.data.clone(),
            binds: prog.binds,
            globals,
            code,
            code_t2,
        })
    }

    /// True if `e` is well-typed against the prelude's schemes — the gate
    /// every mutant passes before it is allowed near the oracle (the
    /// denotational evaluator panics on dynamically ill-typed terms, by
    /// design).
    pub fn well_typed(&self, e: &Expr) -> bool {
        infer_expr(e, &self.data, &self.globals).is_ok()
    }
}

/// Runs the exception-effect analysis over the program and reshapes its
/// per-binding summaries into the machine's tier-2 license (the same
/// mapping the `urk` session applies: `whnf_safe` gates constant
/// substitution; `Con` constants are dropped because the flat image only
/// carries literal operands).
fn tier2_facts(prog: &urk_syntax::core::CoreProgram, data: &DataEnv) -> Tier2Facts {
    let analysis = urk_analysis::analyze_program(prog, data);
    Tier2Facts {
        globals: analysis
            .binding_facts(&prog.binds)
            .into_iter()
            .map(|f| GlobalFact {
                whnf_safe: f.whnf_safe,
                value: f.val.and_then(|v| match v {
                    urk_analysis::Val::Int(i) => Some(FactVal::Int(i)),
                    urk_analysis::Val::Char(c) => Some(FactVal::Char(c)),
                    urk_analysis::Val::Str(s) => Some(FactVal::Str(s.to_string())),
                    urk_analysis::Val::Con(_) => None,
                }),
                demands: f.demands,
            })
            .collect(),
    }
}

impl Default for FuzzCtx {
    fn default() -> FuzzCtx {
        FuzzCtx::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urk_syntax::core::Expr;

    #[test]
    fn prelude_builds_and_types() {
        let ctx = FuzzCtx::new();
        assert_eq!(ctx.binds.len(), 4);
        assert!(ctx.well_typed(&Expr::app(Expr::var("fzsum"), Expr::int(3))));
        assert!(!ctx.well_typed(&Expr::app(Expr::int(1), Expr::int(2))));
        assert!(!ctx.well_typed(&Expr::var("nosuch")));
    }
}
