//! Replayable on-disk cases and corpus management.
//!
//! A case file is a self-contained `.urk` program: the fuzz prelude
//! followed by one `counterexample = <term>` binding, plus a comment
//! header recording why it was saved. Replaying a case means compiling
//! the file's own bindings and running the oracle on the
//! `counterexample` right-hand side — no state from the producing run is
//! needed. Filenames are content-addressed
//! (`cg-<fingerprint>.urk` / `cx-<fingerprint>.urk`), so re-running the
//! same seed rewrites the same bytes to the same paths.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use urk_syntax::core::Expr;
use urk_syntax::{expr_fingerprint, pretty::pretty, Symbol};

use crate::ctx::{FuzzCtx, FUZZ_PRELUDE_SRC};

/// The binding name every case file uses for its term.
pub const CASE_BIND: &str = "counterexample";

/// A parsed case file: its own evaluation context plus the term.
pub struct CaseFile {
    pub ctx: FuzzCtx,
    pub query: Rc<Expr>,
}

/// Renders a term as a standalone replayable `.urk` program. `note`
/// lines become `--` comments in the header.
pub fn render_case(query: &Expr, notes: &[String]) -> String {
    let mut out = String::new();
    out.push_str("-- urk-fuzz case (replay: urk fuzz --replay <this file>)\n");
    for n in notes {
        out.push_str("-- ");
        out.push_str(n);
        out.push('\n');
    }
    out.push_str(FUZZ_PRELUDE_SRC);
    out.push_str(CASE_BIND);
    out.push_str(" = ");
    out.push_str(&pretty(query));
    out.push('\n');
    out
}

/// Loads a case file: builds a context from every binding *except*
/// `counterexample`, and returns that binding's right-hand side as the
/// query.
pub fn load_case(src: &str) -> Result<CaseFile, String> {
    let full = FuzzCtx::from_source(src)?;
    let name = Symbol::intern(CASE_BIND);
    let query = full
        .binds
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, rhs)| Rc::clone(rhs))
        .ok_or_else(|| format!("case file has no `{CASE_BIND}` binding"))?;
    let ctx = full.without_bind(name)?;
    Ok(CaseFile { ctx, query })
}

/// The content-addressed corpus filename for a term.
pub fn case_filename(query: &Expr) -> String {
    format!("cg-{:016x}.urk", expr_fingerprint(query))
}

/// The content-addressed counterexample filename for a term.
pub fn counterexample_filename(query: &Expr) -> String {
    format!("cx-{:016x}.urk", expr_fingerprint(query))
}

/// Case files in `dir`, sorted by name for deterministic replay order.
pub fn list_cases(dir: &Path) -> Vec<PathBuf> {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = rd
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "urk"))
        .collect();
    files.sort();
    files
}

/// Greedy feature-set-cover minimization: entries are considered
/// smallest-term-first (ties broken by term fingerprint), and an entry is
/// kept iff it contributes a feature no earlier kept entry covers. The
/// result covers exactly the union of input features with a deterministic
/// subset of entries.
pub fn minimize_corpus<T>(entries: Vec<(Rc<Expr>, Vec<u32>, T)>) -> Vec<(Rc<Expr>, Vec<u32>, T)> {
    let mut ordered = entries;
    ordered.sort_by_key(|(e, _, _)| (e.size(), expr_fingerprint(e)));
    let mut covered: BTreeSet<u32> = BTreeSet::new();
    let mut kept = Vec::new();
    for (expr, features, tag) in ordered {
        if features.iter().any(|f| !covered.contains(f)) {
            covered.extend(features.iter().copied());
            kept.push((expr, features, tag));
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use urk_syntax::core::PrimOp;
    use urk_syntax::expr_canonical_bytes;

    #[test]
    fn cases_round_trip_through_disk_format() {
        let term = Expr::add(
            Expr::let_(
                "s",
                Expr::app(Expr::var("fzsum"), Expr::int(9)),
                Expr::add(Expr::var("s"), Expr::var("s")),
            ),
            Expr::prim(PrimOp::Div, [Expr::int(7), Expr::int(0)]),
        );
        let text = render_case(&term, &["check: backend-divergence".into()]);
        let case = load_case(&text).expect("case must reparse");
        assert_eq!(
            expr_canonical_bytes(&case.query),
            expr_canonical_bytes(&term),
            "term must survive print -> parse -> desugar"
        );
        // The case's own context still knows the prelude.
        assert!(case
            .ctx
            .global_names()
            .iter()
            .any(|s| s.as_str() == "fzsum"));
        assert!(case.ctx.well_typed(&case.query));
    }

    #[test]
    fn minimization_is_a_deterministic_cover() {
        let mk = |n: i64| Rc::new(Expr::int(n));
        let entries = vec![
            (
                Rc::new(Expr::add(Expr::int(1), Expr::int(2))),
                vec![1, 2],
                (),
            ),
            (mk(1), vec![1], ()),
            (mk(2), vec![2], ()),
            (mk(3), vec![2, 3], ()),
        ];
        let kept = minimize_corpus(entries.clone());
        // Small terms first: Int(1) covers {1}, Int(2) covers {2}, Int(3)
        // adds {3}; the larger sum is redundant.
        assert_eq!(kept.len(), 3);
        assert!(kept.iter().all(|(e, _, _)| e.size() == 1));
        let again = minimize_corpus(entries);
        assert_eq!(
            kept.iter()
                .map(|(e, _, _)| expr_fingerprint(e))
                .collect::<Vec<_>>(),
            again
                .iter()
                .map(|(e, _, _)| expr_fingerprint(e))
                .collect::<Vec<_>>()
        );
    }
}
