//! The candidate fingerprint: which coverage features an execution hit.
//!
//! Two feature families, both cheap and fully deterministic:
//!
//! * **op-pair edges** — the compiled backend's [`OpCoverage`] matrix:
//!   feature id = `prev_kind * OP_KINDS + cur_kind` (`< OP_KINDS²`);
//! * **stats buckets** — log₂-bucketed machine [`Stats`] counters
//!   (steps, allocations, stack depth, trims, restores, ...), so a mutant
//!   that makes the machine work an order of magnitude harder — or poison
//!   or restore thunks for the first time — counts as new coverage even
//!   when it runs the same op edges;
//! * **prim operand classes** — which (primitive, position,
//!   operand-class) triples the run exercised ([`OpCoverage`]'s prim
//!   profile), so a mutant that first feeds, say, a boxed negative into
//!   the divisor slot counts as novel even on familiar op edges;
//! * **exception-set shapes** — the membership mask of the candidate's
//!   *denoted* exception set, so terms whose imprecise sets combine
//!   differently (div-by-zero alone, div-by-zero ∪ user-error, ⊥) are
//!   all kept around as corpus seeds.
//!
//! A candidate is admitted to the corpus iff its feature set contains an
//! id the whole run has not seen before (classic coverage-guided
//! admission).

use urk_denot::ExnSet;
use urk_machine::{OpCoverage, Outcome, Stats, OP_KINDS};
use urk_syntax::Exception;

/// Feature-id namespaces (op-pair edges occupy `0..OP_KINDS²`).
const STATS_BASE: u32 = 0x1000;
const OUTCOME_BASE: u32 = 0x2000;
const PRIM_BASE: u32 = 0x3000;
const EXNSET_BASE: u32 = 0x4000;

/// A candidate's deduplicated, sorted feature set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Fingerprint {
    pub features: Vec<u32>,
}

impl Fingerprint {
    /// Builds the fingerprint of one execution from its coverage map,
    /// stats, and outcome.
    pub fn collect(
        cov: Option<&OpCoverage>,
        stats: &Stats,
        outcome: Option<&Outcome>,
    ) -> Fingerprint {
        let mut features = Vec::new();
        if let Some(cov) = cov {
            for (prev, cur, _count) in cov.iter_hits() {
                features.push(u32::from(prev) * OP_KINDS as u32 + u32::from(cur));
            }
            for (flat, _count) in cov.iter_prim_hits() {
                features.push(PRIM_BASE + flat);
            }
        }
        features.extend(stats_features(stats));
        if let Some(o) = outcome {
            features.push(OUTCOME_BASE + outcome_feature(o));
        }
        features.sort_unstable();
        features.dedup();
        Fingerprint { features }
    }

    /// Merges another execution of the same candidate (a different order
    /// or backend) into this fingerprint.
    pub fn merge(&mut self, other: &Fingerprint) {
        self.features.extend_from_slice(&other.features);
        self.features.sort_unstable();
        self.features.dedup();
    }

    /// Adds the shape of the candidate's *denoted* exception set: the
    /// membership mask over the ten concrete exception kinds, with ⊥
    /// (the full set) as its own bit. A value denotation contributes the
    /// zero mask, which is still one feature — "denotes a value" is a
    /// shape too.
    pub fn add_exn_set_shape(&mut self, set: Option<&ExnSet>) {
        let feature = EXNSET_BASE + exn_set_mask(set);
        if let Err(at) = self.features.binary_search(&feature) {
            self.features.insert(at, feature);
        }
    }
}

/// The membership bitmask of a denoted exception set (`None` = the term
/// denotes an ordinary value). Bit `exn_id - 1` per concrete member; bit
/// 15 for ⊥, whose set contains every member and would otherwise alias
/// the all-concrete mask.
fn exn_set_mask(set: Option<&ExnSet>) -> u32 {
    let Some(set) = set else { return 0 };
    if set.is_all() {
        return 1 << 15;
    }
    set.iter().fold(0u32, |m, e| m | (1 << (exn_id(&e) - 1)))
}

/// Log₂-bucketed stats features. Counter identity lives in bits 6+, the
/// bucket in bits 0–5, so every (counter, magnitude) pair is one id.
pub fn stats_features(stats: &Stats) -> Vec<u32> {
    let counters: [(u32, u64); 12] = [
        (0, stats.steps),
        (1, stats.allocations),
        (2, stats.thunk_updates),
        (3, stats.max_stack_depth as u64),
        (4, stats.frames_trimmed),
        (5, stats.thunks_poisoned),
        (6, stats.thunks_restored),
        (7, stats.blackholes_detected),
        (8, stats.gc_runs),
        (9, stats.unboxed_hits),
        (10, stats.minor_gcs),
        (11, stats.nodes_promoted),
    ];
    counters
        .iter()
        .map(|&(id, v)| STATS_BASE + (id << 6) + bucket(v))
        .collect()
}

/// `0` for zero, else `1 + floor(log2 v)` — magnitudes, not exact counts.
fn bucket(v: u64) -> u32 {
    64 - v.leading_zeros()
}

fn outcome_feature(o: &Outcome) -> u32 {
    match o {
        Outcome::Value(_) => 0,
        Outcome::Caught(e) => 1 + exn_id(e),
        Outcome::Uncaught(e) => 32 + exn_id(e),
    }
}

fn exn_id(e: &Exception) -> u32 {
    match e {
        Exception::DivideByZero => 1,
        Exception::Overflow => 2,
        Exception::UserError(_) => 3,
        Exception::PatternMatchFail(_) => 4,
        Exception::NonTermination => 5,
        Exception::Interrupt => 6,
        Exception::Timeout => 7,
        Exception::StackOverflow => 8,
        Exception::HeapOverflow => 9,
        Exception::BlockedIndefinitely => 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_magnitudes() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(1000), 10);
    }

    #[test]
    fn fingerprints_dedup_and_merge() {
        let stats = Stats::default();
        let mut a = Fingerprint::collect(None, &stats, None);
        let b = Fingerprint::collect(None, &stats, Some(&Outcome::Caught(Exception::Overflow)));
        assert!(a.features.len() < b.features.len());
        a.merge(&b);
        assert_eq!(a, b);
    }
}
