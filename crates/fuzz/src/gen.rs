//! Seeded generation of closed, well-typed `Int` Core terms.
//!
//! The grammar mirrors the random-term differential batteries in
//! `tests/compiled.rs` / `tests/properties.rs` — arithmetic with reachable
//! `DivideByZero`/`Overflow`, raise leaves, sharing `let`s, beta redexes,
//! boolean and constructor `case`s — and extends it with calls into the
//! fuzz prelude ([`crate::FUZZ_PRELUDE_SRC`]): recursion for chaos plans to
//! land in, a partial function, and a higher-order combinator. Everything
//! is driven by one seeded [`SmallRng`], so a seed fully determines the
//! term stream.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use urk_syntax::core::{Alt, AltCon, Expr, PrimOp};
use urk_syntax::Symbol;

/// The deterministic term source. Local binder names restart at `v0` for
/// every term, so a term's text depends only on the random choices made
/// while generating it.
pub struct TermGen {
    rng: SmallRng,
    max_depth: u32,
    fresh: u32,
}

impl TermGen {
    /// A generator over the standard grammar.
    pub fn new(seed: u64, max_depth: u32) -> TermGen {
        TermGen {
            rng: SmallRng::seed_from_u64(seed),
            max_depth: max_depth.max(1),
            fresh: 0,
        }
    }

    /// The next closed `Int` term.
    pub fn term(&mut self) -> Expr {
        self.fresh = 0;
        let depth = self.rng.gen_range(1..=self.max_depth);
        let mut scope = Vec::new();
        self.gen_int(depth, &mut scope)
    }

    /// An `Int` subterm for a mutation site: same grammar, caller-supplied
    /// depth and in-scope `Int` variables.
    pub fn subterm(&mut self, depth: u32, scope: &[Symbol]) -> Expr {
        let mut scope = scope.to_vec();
        self.gen_int(depth, &mut scope)
    }

    fn fresh_name(&mut self) -> Symbol {
        let n = self.fresh;
        self.fresh += 1;
        Symbol::intern(&format!("v{n}"))
    }

    fn small_int(&mut self) -> Expr {
        Expr::int(self.rng.gen_range(0..=40i64))
    }

    fn raise_leaf(&mut self) -> Expr {
        match self.rng.gen_range(0..3u32) {
            0 => Expr::raise(Expr::con("DivideByZero", [])),
            1 => Expr::raise(Expr::con("Overflow", [])),
            _ => Expr::error("fz"),
        }
    }

    fn leaf(&mut self, scope: &[Symbol]) -> Expr {
        match self.rng.gen_range(0..10u32) {
            0..=3 => self.small_int(),
            4 | 5 => match scope.last() {
                Some(_) => {
                    let i = self.rng.gen_range(0..scope.len());
                    Expr::var(scope[i])
                }
                None => self.small_int(),
            },
            6 => self.raise_leaf(),
            // A cheap prelude splice that still counts as a leaf: bounded
            // recursion, so every generated term terminates.
            7 => Expr::app(Expr::var("fzsum"), Expr::int(self.rng.gen_range(0..=25i64))),
            8 => Expr::app(Expr::var("fzpick"), Expr::int(self.rng.gen_range(0..=2i64))),
            _ => Expr::int(self.rng.gen_range(-5..=5i64)),
        }
    }

    fn gen_int(&mut self, depth: u32, scope: &mut Vec<Symbol>) -> Expr {
        if depth == 0 || scope.len() > 24 {
            return self.leaf(scope);
        }
        let d = depth - 1;
        match self.rng.gen_range(0..13u32) {
            // Arithmetic: both orders observable, overflow reachable.
            0 | 1 => {
                let op = [PrimOp::Add, PrimOp::Sub, PrimOp::Mul][self.rng.gen_range(0..3usize)];
                let a = self.gen_int(d, scope);
                let b = self.gen_int(d, scope);
                Expr::prim(op, [a, b])
            }
            // Division / modulus: zero divisors are reachable (the leaf
            // range includes 0).
            2 => {
                let op = if self.rng.gen_bool(0.5) {
                    PrimOp::Div
                } else {
                    PrimOp::Mod
                };
                let a = self.gen_int(d, scope);
                let b = self.gen_int(d, scope);
                Expr::prim(op, [a, b])
            }
            // seq: forces the first operand for its effect only.
            3 => {
                let a = self.gen_int(d, scope);
                let b = self.gen_int(d, scope);
                Expr::prim(PrimOp::Seq, [a, b])
            }
            // if (a boolean case over a comparison).
            4 | 5 => {
                let ca = self.gen_int(d, scope);
                let cb = self.gen_int(d, scope);
                let cmp =
                    [PrimOp::IntLt, PrimOp::IntLe, PrimOp::IntEq][self.rng.gen_range(0..3usize)];
                let t = self.gen_int(d, scope);
                let e = self.gen_int(d, scope);
                Expr::case(
                    Expr::prim(cmp, [ca, cb]),
                    vec![Alt::con("True", vec![], t), Alt::con("False", vec![], e)],
                )
            }
            // Sharing let: the bound thunk is used 1–3 times, which is what
            // gives update frames (and §5.1 restores) something to protect.
            6 | 7 => {
                let x = self.fresh_name();
                let rhs = self.gen_int(d, scope);
                scope.push(x);
                let body = self.gen_int(d, scope);
                scope.pop();
                let body = if self.rng.gen_bool(0.4) {
                    Expr::add(body, Expr::var(x))
                } else {
                    body
                };
                Expr::let_(x, rhs, body)
            }
            // Beta redex.
            8 => {
                let x = self.fresh_name();
                let arg = self.gen_int(d, scope);
                scope.push(x);
                let body = self.gen_int(d, scope);
                scope.pop();
                Expr::app(Expr::lam(x, body), arg)
            }
            // Maybe case with a lazy payload.
            9 => {
                let scrut = if self.rng.gen_bool(0.7) {
                    let payload = self.gen_int(d, scope);
                    Expr::con("Just", [payload])
                } else {
                    Expr::con("Nothing", [])
                };
                let y = self.fresh_name();
                scope.push(y);
                let just_rhs = self.gen_int(d, scope);
                scope.pop();
                let nothing_rhs = self.gen_int(d, scope);
                Expr::case(
                    scrut,
                    vec![
                        Alt::con("Just", vec![y], just_rhs),
                        Alt::con("Nothing", vec![], nothing_rhs),
                    ],
                )
            }
            // Integer-literal case with a default arm.
            10 => {
                let scrut = self.gen_int(d, scope);
                let a = self.gen_int(d, scope);
                let b = self.gen_int(d, scope);
                let dflt = self.gen_int(d, scope);
                Expr::case(
                    scrut,
                    vec![
                        Alt::int(0, a),
                        Alt::int(1, b),
                        Alt {
                            con: AltCon::Default,
                            binders: vec![],
                            rhs: std::rc::Rc::new(dflt),
                        },
                    ],
                )
            }
            // Prelude splices: fzdiv / fztwice with a generated closure.
            11 => {
                let a = self.gen_int(d, scope);
                let b = self.gen_int(d, scope);
                Expr::apps(Expr::var("fzdiv"), [a, b])
            }
            _ => {
                let q = self.fresh_name();
                scope.push(q);
                let body = self.gen_int(d.min(1), scope);
                scope.pop();
                let arg = self.gen_int(d, scope);
                Expr::apps(Expr::var("fztwice"), [Expr::lam(q, body), arg])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::FuzzCtx;

    #[test]
    fn generated_terms_are_closed_well_typed_and_deterministic() {
        let ctx = FuzzCtx::new();
        let globals: std::collections::BTreeSet<Symbol> = ctx.global_names().into_iter().collect();
        let mut g1 = TermGen::new(42, 5);
        let mut g2 = TermGen::new(42, 5);
        for _ in 0..200 {
            let t1 = g1.term();
            let t2 = g2.term();
            assert_eq!(t1, t2, "same seed must generate the same stream");
            assert!(
                t1.free_vars().iter().all(|v| globals.contains(v)),
                "free vars outside the prelude in {t1:?}"
            );
            assert!(ctx.well_typed(&t1), "ill-typed generated term {t1:?}");
        }
    }
}
