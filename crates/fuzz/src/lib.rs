//! Coverage-guided differential fuzzing for the Urk evaluators.
//!
//! The paper's central claim is a *refinement* relation: the machine may
//! raise any member of the denotationally-assigned exception set, and every
//! backend added since (compiled `Code`, analysis-licensed rewrites) widens
//! the surface where that claim could silently break. This crate turns the
//! fixed random-term battery into an adversarial search:
//!
//! * [`gen`] — a seeded generator of closed, well-typed `Int` Core terms
//!   over a small recursive fuzz prelude (so splices exercise real calls);
//! * [`mutate`] — structure-aware mutations: swap typed subterms,
//!   grow/shrink case alternatives, perturb raise sites, splice prelude
//!   calls — every mutant re-checked by `urk_types::infer_expr`;
//! * [`coverage`] — the candidate fingerprint: compiled-`Code` op-pair
//!   edges ([`urk_machine::OpCoverage`]) plus log-bucketed `Stats`
//!   features; novelty admits the mutant into the corpus;
//! * [`oracle`] — the full cross-product check for one candidate: tree vs
//!   compiled on both deterministic orders plus a seeded order, all vs the
//!   denotational set, under seeded [`urk_machine::FaultPlan`] chaos and an
//!   optional wall-clock interrupt, with a heap audit after every run;
//! * [`shrink`] — deterministic greedy minimization of a failing term (the
//!   same seed and failing term always produce the byte-identical minimal
//!   counterexample);
//! * [`corpus`] — replayable `.urk` case files (fuzz prelude + a
//!   `counterexample` binding) and greedy feature-set-cover corpus
//!   minimization;
//! * [`bytes`] — the wire-frame byte mutator backing `urk serve`
//!   protocol fuzzing;
//! * [`fuzzer`] — the main loop tying it together, fully deterministic for
//!   a given seed.
//!
//! The long-run soak driver lives in `urk::soak` (it needs the `EvalPool`
//! serving layer, which depends on this crate for term generation).

pub mod bytes;
pub mod corpus;
pub mod coverage;
pub mod ctx;
pub mod fuzzer;
pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod shrink;

pub use bytes::{Expectation, FrameAttack, FrameMutator};
pub use corpus::{list_cases, load_case, minimize_corpus, render_case, CaseFile};
pub use coverage::{stats_features, Fingerprint};
pub use ctx::{FuzzCtx, FUZZ_PRELUDE_SRC};
pub use fuzzer::{run_fuzz, Counterexample, FuzzConfig, FuzzReport};
pub use gen::TermGen;
pub use mutate::Mutator;
pub use oracle::{run_oracle, CheckKind, Failure, OracleConfig, Verdict};
pub use shrink::shrink;
