//! The coverage-guided differential fuzzing loop.
//!
//! One run is a deterministic function of its [`FuzzConfig`]: replay the
//! on-disk corpus, seed an in-memory corpus with generated terms, then
//! mutate corpus parents — admitting any candidate whose execution hits a
//! coverage feature ([`Fingerprint`]) the run has not seen — until the
//! execution budget is spent or the oracle reports a failure. A failure
//! stops the run: the candidate is shrunk ([`crate::shrink`]) to a
//! minimal term failing the *same* check and written to disk as a
//! replayable `.urk` case. On a clean exit the corpus is minimized to a
//! greedy feature cover and (optionally) persisted.
//!
//! Wall-clock never influences the run: interrupts are scheduled by
//! candidate index, timing is reported separately from the
//! [`FuzzReport::deterministic_summary`], and corpus/counterexample
//! filenames are content-addressed.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use urk_syntax::core::Expr;
use urk_syntax::{expr_canonical_bytes, expr_fingerprint};

use crate::corpus::{
    case_filename, counterexample_filename, list_cases, load_case, minimize_corpus, render_case,
};
use crate::ctx::FuzzCtx;
use crate::gen::TermGen;
use crate::mutate::Mutator;
use crate::oracle::{run_oracle, CheckKind, OracleConfig};
use crate::shrink::shrink;

/// Everything that determines a fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    pub seed: u64,
    /// Oracle executions to spend (replayed cases count).
    pub execs: u64,
    /// Generator depth for seed terms.
    pub max_depth: u32,
    /// Mutants above this AST size are rejected before execution.
    pub max_term_size: usize,
    /// Chaos rounds (seeded fault plans) per candidate.
    pub chaos_rounds: u64,
    /// Arm the seeded §5.1 sabotage bug in every chaos plan.
    pub sabotage: bool,
    /// Run the wall-clock interrupt check every N-th candidate (0 = off).
    pub interrupt_every: u64,
    /// Replay + persist the minimized corpus here.
    pub corpus_dir: Option<PathBuf>,
    /// Write shrunk counterexamples here.
    pub out_dir: Option<PathBuf>,
    /// Oracle-evaluation budget for shrinking.
    pub shrink_attempts: u64,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 1,
            execs: 256,
            max_depth: 5,
            max_term_size: 400,
            chaos_rounds: 1,
            sabotage: false,
            interrupt_every: 64,
            corpus_dir: None,
            out_dir: None,
            shrink_attempts: 600,
        }
    }
}

/// A found-and-shrunk counterexample.
#[derive(Clone, Debug)]
pub struct Counterexample {
    pub kind: CheckKind,
    pub detail: String,
    /// The original failing candidate's pretty text.
    pub original: String,
    /// The minimized term's pretty text.
    pub minimized: String,
    /// Where the replayable case was written (the `out_dir` copy when
    /// set, else the promoted `corpus_dir` copy).
    pub path: Option<PathBuf>,
}

/// What one run did. [`FuzzReport::deterministic_summary`] is the
/// seed-stable part (the determinism suite asserts two runs of the same
/// seed produce identical summaries); `elapsed_ms` is reported separately.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    pub seed: u64,
    pub execs: u64,
    pub skipped: u64,
    /// Mutants rejected before execution (ill-typed, oversized, or
    /// already-seen terms).
    pub rejected: u64,
    /// Minimized corpus size at exit.
    pub corpus: usize,
    /// Distinct coverage features seen (op-pair edges + stats buckets +
    /// outcomes).
    pub features: usize,
    /// The op-pair-edge subset of `features`.
    pub edges: usize,
    /// Execution index of the last new-coverage admission.
    pub plateau_at: u64,
    pub counterexample: Option<Counterexample>,
    pub elapsed_ms: u64,
}

impl FuzzReport {
    /// The wall-clock-free summary line.
    pub fn deterministic_summary(&self) -> String {
        let failure = match &self.counterexample {
            None => "none".to_string(),
            Some(cx) => format!("{} [{}]", cx.kind, cx.minimized),
        };
        format!(
            "fuzz seed={} execs={} skipped={} rejected={} corpus={} features={} edges={} plateau={} failure={}",
            self.seed,
            self.execs,
            self.skipped,
            self.rejected,
            self.corpus,
            self.features,
            self.edges,
            self.plateau_at,
            failure
        )
    }
}

/// An admitted corpus entry.
struct Entry {
    query: Rc<Expr>,
    features: Vec<u32>,
}

/// Deepest nesting a corpus entry may have: reloading a persisted case
/// must not overflow the parser's stack wherever the campaign runs.
const MAX_PERSIST_DEPTH: usize = 24;

/// True when the term survives the case-file round trip
/// (render → parse → desugar) with its canonical bytes intact, i.e.
/// replaying the persisted file exercises exactly this term.
fn persists_faithfully(query: &Expr) -> bool {
    load_case(&render_case(query, &[]))
        .is_ok_and(|case| expr_canonical_bytes(&case.query) == expr_canonical_bytes(query))
}

/// The nesting depth of a term (a leaf is 1).
fn expr_depth(e: &Expr) -> usize {
    1 + match e {
        Expr::Var(_) | Expr::Int(_) | Expr::Char(_) | Expr::Str(_) => 0,
        Expr::Con(_, args) | Expr::Prim(_, args) => {
            args.iter().map(|a| expr_depth(a)).max().unwrap_or(0)
        }
        Expr::App(f, x) => expr_depth(f).max(expr_depth(x)),
        Expr::Lam(_, b) | Expr::Raise(b) => expr_depth(b),
        Expr::Let(_, r, b) => expr_depth(r).max(expr_depth(b)),
        Expr::LetRec(binds, b) => binds
            .iter()
            .map(|(_, rhs)| expr_depth(rhs))
            .max()
            .unwrap_or(0)
            .max(expr_depth(b)),
        Expr::Case(s, alts) => alts
            .iter()
            .map(|a| expr_depth(&a.rhs))
            .max()
            .unwrap_or(0)
            .max(expr_depth(s)),
    }
}

/// Runs one fuzzing campaign.
///
/// # Errors
///
/// Only on I/O problems (unreadable corpus file, unwritable output
/// directory) or an unloadable case file; oracle failures are *results*,
/// reported in the returned [`FuzzReport`].
pub fn run_fuzz(cfg: &FuzzConfig) -> Result<FuzzReport, String> {
    let started = Instant::now();
    let ctx = FuzzCtx::new();
    let oracle_cfg = OracleConfig {
        chaos_seeds: (0..cfg.chaos_rounds)
            .map(|i| cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i))
            .collect(),
        sabotage: cfg.sabotage,
        ..OracleConfig::default()
    };

    let mut gen = TermGen::new(cfg.seed, cfg.max_depth);
    let mut mutator = Mutator::new(cfg.seed, &ctx.global_names());
    let mut pick = SmallRng::seed_from_u64(cfg.seed ^ 0x7069_636b);

    let mut report = FuzzReport {
        seed: cfg.seed,
        ..FuzzReport::default()
    };
    let mut corpus: Vec<Entry> = Vec::new();
    let mut seen_features: BTreeSet<u32> = BTreeSet::new();
    let mut seen_terms: BTreeSet<u64> = BTreeSet::new();

    let admit = |report: &mut FuzzReport,
                 corpus: &mut Vec<Entry>,
                 seen_features: &mut BTreeSet<u32>,
                 query: &Rc<Expr>,
                 features: &[u32]| {
        if features.iter().any(|f| !seen_features.contains(f)) {
            // Corpus entries must replay everywhere. Admission refuses
            // terms nested too deeply for the recursive-descent parser on
            // a small (test-thread) stack, and terms that do not survive
            // the disk round trip with canonical bytes intact — a mutant
            // spliced from a replayed (desugared) parent can carry gensym
            // binders that pretty-print as `$aN`, which the parser
            // rejects; persisting one would corrupt the corpus for the
            // next campaign.
            if expr_depth(query) > MAX_PERSIST_DEPTH || !persists_faithfully(query) {
                return;
            }
            seen_features.extend(features.iter().copied());
            corpus.push(Entry {
                query: Rc::clone(query),
                features: features.to_vec(),
            });
            report.plateau_at = report.execs;
        }
    };

    let finish = |mut report: FuzzReport,
                  corpus: Vec<Entry>,
                  seen_features: &BTreeSet<u32>,
                  cfg: &FuzzConfig,
                  started: Instant|
     -> Result<FuzzReport, String> {
        let minimized = minimize_corpus(
            corpus
                .into_iter()
                .map(|e| (e.query, e.features, ()))
                .collect(),
        );
        report.corpus = minimized.len();
        report.features = seen_features.len();
        report.edges = seen_features
            .iter()
            .filter(|&&f| f < (urk_machine::OP_KINDS * urk_machine::OP_KINDS) as u32)
            .count();
        if let Some(dir) = &cfg.corpus_dir {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
            // Clear stale generation files so the directory *is* the
            // minimized corpus (counterexamples `cx-*` are kept).
            for old in list_cases(dir) {
                if old
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("cg-"))
                {
                    std::fs::remove_file(&old).map_err(|e| format!("remove stale case: {e}"))?;
                }
            }
            for (query, _, ()) in &minimized {
                let path = dir.join(case_filename(query));
                let text = render_case(query, &[format!("seed: {}", cfg.seed)]);
                std::fs::write(&path, text)
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
            }
        }
        report.elapsed_ms = started.elapsed().as_millis() as u64;
        Ok(report)
    };

    let fail = |report: &mut FuzzReport,
                ctx: &FuzzCtx,
                query: Rc<Expr>,
                kind: CheckKind,
                detail: String|
     -> Result<(), String> {
        let minimized = shrink(
            ctx,
            Rc::clone(&query),
            kind,
            &oracle_cfg,
            cfg.shrink_attempts,
        );
        // The minimized case goes to the --out directory *and* is
        // promoted into the replayed corpus: `tests/corpus_regress.rs`
        // auto-discovers `corpus/*.urk`, and the next campaign's phase-1
        // replay runs `cx-*` files first, so a found bug becomes a
        // differential regression test with no manual step.
        let name = counterexample_filename(&minimized);
        let text = render_case(
            &minimized,
            &[
                format!("seed: {}", cfg.seed),
                format!("check: {kind}"),
                format!("detail: {detail}"),
            ],
        );
        let mut dirs: Vec<&PathBuf> = Vec::new();
        dirs.extend(&cfg.out_dir);
        dirs.extend(&cfg.corpus_dir);
        dirs.dedup();
        let mut path = None;
        for dir in dirs {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
            let file = dir.join(&name);
            std::fs::write(&file, &text).map_err(|e| format!("write {}: {e}", file.display()))?;
            path.get_or_insert(file);
        }
        report.counterexample = Some(Counterexample {
            kind,
            detail,
            original: urk_syntax::pretty::pretty(&query),
            minimized: urk_syntax::pretty::pretty(&minimized),
            path,
        });
        Ok(())
    };

    // Phase 1: replay the persisted corpus — regression cases run before
    // any fresh exploration, exactly like a CI replay job would.
    if let Some(dir) = &cfg.corpus_dir {
        for path in list_cases(dir) {
            if report.execs >= cfg.execs {
                break;
            }
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            let case = load_case(&src).map_err(|e| format!("load {}: {e}", path.display()))?;
            let v = run_oracle(&case.ctx, &case.query, &oracle_cfg);
            report.execs += 1;
            if v.skipped {
                report.skipped += 1;
                continue;
            }
            if let Some(f) = v.failure {
                fail(&mut report, &case.ctx, case.query, f.kind, f.detail)?;
                return finish(report, corpus, &seen_features, cfg, started);
            }
            // Fold replayed cases into this run's corpus when they still
            // typecheck against the live prelude.
            if ctx.well_typed(&case.query) {
                seen_terms.insert(expr_fingerprint(&case.query));
                admit(
                    &mut report,
                    &mut corpus,
                    &mut seen_features,
                    &case.query,
                    &v.fingerprint.features,
                );
            }
        }
    }

    // Phase 2: explore. The first candidates are fresh generator output;
    // once a corpus exists, mutation takes over (with a generator fallback
    // whenever mutation fails to produce a fresh well-typed term).
    let mut attempts_left = cfg.execs.saturating_mul(20);
    while report.execs < cfg.execs && report.counterexample.is_none() && attempts_left > 0 {
        attempts_left -= 1;
        let candidate: Rc<Expr> = if corpus.is_empty() || report.execs < 24 {
            Rc::new(gen.term())
        } else {
            let parent = &corpus[pick.gen_range(0..corpus.len())].query;
            match mutator.mutate(parent) {
                Some(m) => Rc::new(m),
                None => Rc::new(gen.term()),
            }
        };
        if candidate.size() > cfg.max_term_size
            || !ctx.well_typed(&candidate)
            || !seen_terms.insert(expr_fingerprint(&candidate))
        {
            report.rejected += 1;
            continue;
        }
        let with_interrupt = cfg.interrupt_every > 0
            && report.execs % cfg.interrupt_every == cfg.interrupt_every - 1;
        let v = run_oracle(
            &ctx,
            &candidate,
            &OracleConfig {
                wallclock_interrupt: with_interrupt,
                ..oracle_cfg.clone()
            },
        );
        report.execs += 1;
        if v.skipped {
            report.skipped += 1;
            continue;
        }
        if let Some(f) = v.failure {
            fail(&mut report, &ctx, candidate, f.kind, f.detail)?;
            break;
        }
        admit(
            &mut report,
            &mut corpus,
            &mut seen_features,
            &candidate,
            &v.fingerprint.features,
        );
    }

    finish(report, corpus, &seen_features, cfg, started)
}

#[cfg(test)]
mod tests {
    use super::*;
    use urk_syntax::Symbol;

    #[test]
    fn gensym_bearing_terms_are_not_persistable() {
        // A mutant spliced from a desugared parent can carry `$`-named
        // binders; its case file would not re-parse, so admission must
        // refuse it while plain terms pass.
        let g = Symbol::fresh("a");
        let bad = Expr::let_(g, Expr::int(1), Expr::var(g));
        assert!(!persists_faithfully(&bad));
        let good = Expr::add(Expr::int(1), Expr::int(2));
        assert!(persists_faithfully(&good));
    }

    #[test]
    fn a_counterexample_is_promoted_into_the_replayed_corpus() {
        // A campaign that finds a bug (the seeded §5.1 sabotage) must
        // leave its minimized case in the corpus directory, so the
        // differential regression suite and the next campaign's phase-1
        // replay pick it up automatically.
        let dir = std::env::temp_dir().join(format!("urk-fuzz-promote-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = FuzzConfig {
            seed: 5,
            execs: 60,
            chaos_rounds: 2,
            interrupt_every: 0,
            sabotage: true,
            corpus_dir: Some(dir.clone()),
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg).expect("fuzz run");
        let cx = report
            .counterexample
            .expect("the armed sabotage bug must be found");
        let path = cx.path.expect("the case must be persisted");
        assert_eq!(path.parent(), Some(dir.as_path()), "promoted into corpus");
        assert!(path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("cx-") && n.ends_with(".urk")));
        let text = std::fs::read_to_string(&path).expect("replayable case exists");
        assert!(text.contains("counterexample ="), "case file is replayable");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn a_short_campaign_is_deterministic_and_covers() {
        let cfg = FuzzConfig {
            seed: 9,
            execs: 40,
            chaos_rounds: 0,
            interrupt_every: 0,
            ..FuzzConfig::default()
        };
        let r1 = run_fuzz(&cfg).expect("fuzz run");
        let r2 = run_fuzz(&cfg).expect("fuzz run");
        assert_eq!(r1.deterministic_summary(), r2.deterministic_summary());
        assert!(r1.counterexample.is_none(), "clean system must not fail");
        assert!(r1.corpus > 0, "no coverage admitted");
        assert!(r1.edges > 0, "no op-pair edges observed");
    }
}
