//! Wire-level frame fuzzing for `urk serve`.
//!
//! The serving tier has a two-tier failure policy: a frame whose *payload*
//! is malformed (bad JSON, unknown type, missing fields) earns one
//! `Response::Error` and the connection stays usable, while a frame whose
//! *length prefix* exceeds [`MAX_FRAME_LEN`] means the stream itself can
//! no longer be trusted and the server must disconnect. [`FrameMutator`]
//! deterministically generates attacks across both tiers — plus
//! mid-frame hangups, which exercise the reader's EOF handling — and tags
//! each with the policy outcome the server is expected to apply.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use urk_io::wire::{Request, MAX_FRAME_LEN};

/// What the server must do after receiving the attack bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// Tier 1: answer with one `Response::Error` frame and keep serving
    /// this connection.
    ErrorAndKeep,
    /// The bytes decode as a valid request; some well-formed response
    /// comes back and the connection stays alive.
    AnswerAndKeep,
    /// Tier 2: the length prefix is poisoned — the server closes the
    /// connection without writing a response to this frame.
    Disconnect,
    /// The client hangs up mid-frame; the server just reaps the
    /// connection. Nothing to assert beyond "no panic, other clients
    /// unaffected".
    ClientCloses,
}

/// One generated attack: raw bytes to write, and the policy tier they
/// should land in.
#[derive(Clone, Debug)]
pub struct FrameAttack {
    pub name: &'static str,
    pub bytes: Vec<u8>,
    pub expect: Expectation,
}

/// Deterministic attack generator: a seed fully determines the attack
/// stream.
pub struct FrameMutator {
    rng: SmallRng,
    next_id: u64,
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

impl FrameMutator {
    pub fn new(seed: u64) -> FrameMutator {
        FrameMutator {
            rng: SmallRng::seed_from_u64(seed),
            next_id: 1,
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// A syntactically valid request to mutate.
    fn valid_payload(&mut self) -> Vec<u8> {
        let id = self.fresh_id();
        if self.rng.gen_bool(0.5) {
            Request::Ping { id }.encode()
        } else {
            Request::Batch {
                id,
                exprs: vec!["1 + 2".into()],
                deadline_ms: None,
                max_steps: None,
                max_heap: None,
                max_stack: None,
            }
            .encode()
        }
    }

    /// The next attack in the seeded stream.
    pub fn next_attack(&mut self) -> FrameAttack {
        match self.rng.gen_range(0..7u32) {
            // Tier 1: garbage bytes that are not JSON at all.
            0 => {
                let n = self.rng.gen_range(1..64usize);
                let bytes: Vec<u8> = (0..n)
                    .map(|_| self.rng.gen_range(0..=255u32) as u8)
                    .collect();
                FrameAttack {
                    name: "garbage-payload",
                    bytes: frame(&bytes),
                    expect: Expectation::ErrorAndKeep,
                }
            }
            // Tier 1: valid JSON, wrong shape.
            1 => FrameAttack {
                name: "wrong-shape-json",
                bytes: frame(br#"{"type":"no-such-request","id":0}"#),
                expect: Expectation::ErrorAndKeep,
            },
            // Tier 1: a valid request truncated mid-payload (framed with
            // the *truncated* length, so it reads fine and fails decode).
            2 => {
                let payload = self.valid_payload();
                let cut = self.rng.gen_range(1..payload.len().max(2));
                FrameAttack {
                    name: "truncated-json",
                    bytes: frame(&payload[..cut]),
                    expect: Expectation::ErrorAndKeep,
                }
            }
            // A bitflipped valid request: may or may not still decode, but
            // the payload length is honest, so the connection survives.
            3 => {
                let mut payload = self.valid_payload();
                let i = self.rng.gen_range(0..payload.len());
                let bit = self.rng.gen_range(0..8u32);
                payload[i] ^= 1 << bit;
                FrameAttack {
                    name: "bitflip",
                    bytes: frame(&payload),
                    expect: Expectation::AnswerAndKeep,
                }
            }
            // Tier 2: oversized length prefix. No payload follows; the
            // server must give up on the stream after reading the header.
            4 => {
                let len = MAX_FRAME_LEN as u32 + 1 + self.rng.gen_range(0..1024u32);
                FrameAttack {
                    name: "oversized-length",
                    bytes: len.to_be_bytes().to_vec(),
                    expect: Expectation::Disconnect,
                }
            }
            // Mid-frame hangup: the header promises more bytes than we
            // send before closing.
            5 => {
                let payload = self.valid_payload();
                let mut bytes = frame(&payload);
                let keep = 4 + self.rng.gen_range(0..payload.len());
                bytes.truncate(keep);
                FrameAttack {
                    name: "midframe-close",
                    bytes,
                    expect: Expectation::ClientCloses,
                }
            }
            // Control: an untouched valid request, so the stream mixes
            // good and bad traffic the way a confused client would.
            _ => {
                let payload = self.valid_payload();
                FrameAttack {
                    name: "valid-request",
                    bytes: frame(&payload),
                    expect: Expectation::AnswerAndKeep,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_stream_is_deterministic_and_mixed() {
        let collect = |seed: u64| {
            let mut m = FrameMutator::new(seed);
            (0..64).map(|_| m.next_attack()).collect::<Vec<_>>()
        };
        let a = collect(7);
        let b = collect(7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.bytes, y.bytes);
            assert_eq!(x.expect, y.expect);
        }
        // Every tier appears in a 64-attack stream.
        for want in [
            Expectation::ErrorAndKeep,
            Expectation::AnswerAndKeep,
            Expectation::Disconnect,
            Expectation::ClientCloses,
        ] {
            assert!(
                a.iter().any(|at| at.expect == want),
                "{want:?} never generated"
            );
        }
    }

    #[test]
    fn oversized_attacks_really_exceed_the_bound() {
        let mut m = FrameMutator::new(3);
        for _ in 0..200 {
            let at = m.next_attack();
            if at.expect == Expectation::Disconnect {
                let len = u32::from_be_bytes(at.bytes[..4].try_into().unwrap()) as usize;
                assert!(len > MAX_FRAME_LEN);
            }
        }
    }
}
