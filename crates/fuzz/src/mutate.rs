//! Structure-aware term mutation.
//!
//! Mutation sites are collected by a typed walk that mirrors the
//! generator's discipline: every site records its tree path and the local
//! `Int` binders in scope, so a mutation can swap subterms between
//! compatible scopes, grow a site with a freshly generated subterm, or
//! splice a prelude call around it without breaking closedness. The walk's
//! typing is structural (the grammar is `Int`-centred); the authoritative
//! gate is [`crate::FuzzCtx::well_typed`], which the fuzz loop applies to
//! every mutant — a misclassified mutation is discarded, deterministically,
//! not executed.

use std::collections::BTreeSet;
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use urk_syntax::core::{Alt, AltCon, Expr, PrimOp};
use urk_syntax::Symbol;

use crate::gen::TermGen;

/// The structural type a mutation site expects.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Ty {
    Int,
    Bool,
    MaybeInt,
    Exn,
    Fun,
    Other,
}

/// One mutable position: where it is and which `Int` binders it sees.
#[derive(Clone, Debug)]
pub struct Site {
    pub path: Vec<u16>,
    pub scope: Vec<Symbol>,
}

/// Every site class the mutator targets, from one walk.
#[derive(Default, Debug)]
pub struct Sites {
    /// Positions expecting an `Int` (swap/grow/shrink/splice targets).
    pub ints: Vec<Site>,
    /// Positions holding a literal `Expr::Int` (constant perturbation).
    pub literals: Vec<Site>,
    /// Positions holding an `Expr::Raise` (raise perturbation).
    pub raises: Vec<Site>,
    /// Positions holding an `Expr::Case` (alternative grow/shrink).
    pub cases: Vec<Site>,
}

/// Collects every mutation site in `e` (expected type `Int` at the root).
pub fn collect_sites(e: &Expr) -> Sites {
    let mut sites = Sites::default();
    let mut path = Vec::new();
    let mut scope = Vec::new();
    walk(e, Ty::Int, &mut path, &mut scope, &mut sites);
    sites
}

fn walk(e: &Expr, expected: Ty, path: &mut Vec<u16>, scope: &mut Vec<Symbol>, out: &mut Sites) {
    if expected == Ty::Int {
        out.ints.push(Site {
            path: path.clone(),
            scope: scope.clone(),
        });
        if matches!(e, Expr::Int(_)) {
            out.literals.push(Site {
                path: path.clone(),
                scope: scope.clone(),
            });
        }
        if matches!(e, Expr::Raise(_)) {
            out.raises.push(Site {
                path: path.clone(),
                scope: scope.clone(),
            });
        }
        if matches!(e, Expr::Case(..)) {
            out.cases.push(Site {
                path: path.clone(),
                scope: scope.clone(),
            });
        }
    }
    match e {
        Expr::Var(_) | Expr::Int(_) | Expr::Char(_) | Expr::Str(_) => {}
        Expr::Con(tag, args) => {
            let just = *tag == Symbol::intern("Just");
            for (i, a) in args.iter().enumerate() {
                let t = if just && i == 0 { Ty::Int } else { Ty::Other };
                path.push(i as u16);
                walk(a, t, path, scope, out);
                path.pop();
            }
        }
        Expr::App(f, a) => {
            path.push(0);
            walk(f, Ty::Fun, path, scope, out);
            path.pop();
            path.push(1);
            walk(a, arg_type(f), path, scope, out);
            path.pop();
        }
        Expr::Lam(x, b) => {
            scope.push(*x);
            path.push(0);
            walk(b, Ty::Int, path, scope, out);
            path.pop();
            scope.pop();
        }
        Expr::Let(x, r, b) => {
            path.push(0);
            walk(r, Ty::Int, path, scope, out);
            path.pop();
            scope.push(*x);
            path.push(1);
            walk(b, expected, path, scope, out);
            path.pop();
            scope.pop();
        }
        Expr::LetRec(binds, b) => {
            // The grammar never emits letrec (the prelude carries the
            // recursion); walk conservatively so spliced-in cases survive.
            for (x, _) in binds {
                scope.push(*x);
            }
            for (i, (_, r)) in binds.iter().enumerate() {
                path.push(i as u16);
                walk(r, Ty::Other, path, scope, out);
                path.pop();
            }
            path.push(binds.len() as u16);
            walk(b, expected, path, scope, out);
            path.pop();
            for _ in binds {
                scope.pop();
            }
        }
        Expr::Case(s, alts) => {
            path.push(0);
            walk(s, scrut_type(alts), path, scope, out);
            path.pop();
            for (i, alt) in alts.iter().enumerate() {
                let int_binders =
                    matches!(&alt.con, AltCon::Con(c) if *c == Symbol::intern("Just"));
                let pushed = if int_binders { alt.binders.len() } else { 0 };
                for b in alt.binders.iter().take(pushed) {
                    scope.push(*b);
                }
                path.push((i + 1) as u16);
                walk(&alt.rhs, expected, path, scope, out);
                path.pop();
                for _ in 0..pushed {
                    scope.pop();
                }
            }
        }
        Expr::Prim(op, args) => {
            for (i, a) in args.iter().enumerate() {
                path.push(i as u16);
                walk(a, prim_arg_type(*op, i, expected), path, scope, out);
                path.pop();
            }
        }
        Expr::Raise(p) => {
            path.push(0);
            walk(p, Ty::Exn, path, scope, out);
            path.pop();
        }
    }
}

fn scrut_type(alts: &[Alt]) -> Ty {
    for alt in alts {
        match &alt.con {
            AltCon::Int(_) => return Ty::Int,
            AltCon::Con(c) => {
                let n = c.as_str();
                if n == "True" || n == "False" {
                    return Ty::Bool;
                }
                if n == "Just" || n == "Nothing" {
                    return Ty::MaybeInt;
                }
                return Ty::Other;
            }
            _ => {}
        }
    }
    Ty::Int
}

fn arg_type(f: &Expr) -> Ty {
    match f {
        Expr::Lam(..) => Ty::Int,
        Expr::Var(g) => match g.as_str().as_str() {
            "fzsum" | "fzpick" => Ty::Int,
            "fzdiv" => Ty::Int,
            "fztwice" => Ty::Fun,
            _ => Ty::Other,
        },
        Expr::App(inner, _) => match inner.as_ref() {
            Expr::Var(g) => match g.as_str().as_str() {
                "fzdiv" | "fztwice" => Ty::Int,
                _ => Ty::Other,
            },
            _ => Ty::Other,
        },
        _ => Ty::Other,
    }
}

fn prim_arg_type(op: PrimOp, i: usize, expected: Ty) -> Ty {
    match op {
        PrimOp::Add
        | PrimOp::Sub
        | PrimOp::Mul
        | PrimOp::Div
        | PrimOp::Mod
        | PrimOp::Neg
        | PrimOp::IntEq
        | PrimOp::IntLt
        | PrimOp::IntLe
        | PrimOp::IntGt
        | PrimOp::IntGe => Ty::Int,
        PrimOp::Seq => {
            if i == 0 {
                Ty::Int
            } else {
                expected
            }
        }
        _ => Ty::Other,
    }
}

/// Reads the node at `path`.
///
/// # Panics
///
/// If the path does not address a node of `e` (paths come from
/// [`collect_sites`] over the same term, so this is a caller bug).
pub fn get_at<'a>(e: &'a Expr, path: &[u16]) -> &'a Expr {
    let Some((&step, rest)) = path.split_first() else {
        return e;
    };
    let i = step as usize;
    match e {
        Expr::Con(_, args) => get_at(&args[i], rest),
        Expr::App(f, a) => get_at(if i == 0 { f } else { a }, rest),
        Expr::Lam(_, b) => get_at(b, rest),
        Expr::Let(_, r, b) => get_at(if i == 0 { r } else { b }, rest),
        Expr::LetRec(binds, b) => {
            if i < binds.len() {
                get_at(&binds[i].1, rest)
            } else {
                get_at(b, rest)
            }
        }
        Expr::Case(s, alts) => {
            if i == 0 {
                get_at(s, rest)
            } else {
                get_at(&alts[i - 1].rhs, rest)
            }
        }
        Expr::Prim(_, args) => get_at(&args[i], rest),
        Expr::Raise(p) => get_at(p, rest),
        _ => panic!("path into a leaf"),
    }
}

/// Rebuilds `e` with the node at `path` replaced by `new`.
///
/// # Panics
///
/// As [`get_at`], on a path that does not address a node of `e`.
pub fn replace_at(e: &Expr, path: &[u16], new: Expr) -> Expr {
    let Some((&step, rest)) = path.split_first() else {
        return new;
    };
    let i = step as usize;
    let sub = |child: &Rc<Expr>| Rc::new(replace_at(child, rest, new.clone()));
    match e {
        Expr::Con(tag, args) => {
            let mut args = args.clone();
            args[i] = sub(&args[i]);
            Expr::Con(*tag, args)
        }
        Expr::App(f, a) => {
            if i == 0 {
                Expr::App(sub(f), a.clone())
            } else {
                Expr::App(f.clone(), sub(a))
            }
        }
        Expr::Lam(x, b) => Expr::Lam(*x, sub(b)),
        Expr::Let(x, r, b) => {
            if i == 0 {
                Expr::Let(*x, sub(r), b.clone())
            } else {
                Expr::Let(*x, r.clone(), sub(b))
            }
        }
        Expr::LetRec(binds, b) => {
            if i < binds.len() {
                let mut binds = binds.clone();
                binds[i].1 = sub(&binds[i].1);
                Expr::LetRec(binds, b.clone())
            } else {
                Expr::LetRec(binds.clone(), sub(b))
            }
        }
        Expr::Case(s, alts) => {
            if i == 0 {
                Expr::Case(sub(s), alts.clone())
            } else {
                let mut alts = alts.clone();
                alts[i - 1].rhs = sub(&alts[i - 1].rhs);
                Expr::Case(s.clone(), alts)
            }
        }
        Expr::Prim(op, args) => {
            let mut args = args.clone();
            args[i] = sub(&args[i]);
            Expr::Prim(*op, args)
        }
        Expr::Raise(p) => Expr::Raise(sub(p)),
        _ => panic!("path into a leaf"),
    }
}

/// The seeded mutation engine. One instance drives a whole fuzz run; every
/// choice comes from its [`SmallRng`], so a seed fully determines the
/// mutant stream given the same inputs.
pub struct Mutator {
    rng: SmallRng,
    gen: TermGen,
    globals: BTreeSet<Symbol>,
}

impl Mutator {
    /// A mutator whose grow/splice subterms come from a generator seeded
    /// deterministically off `seed`.
    pub fn new(seed: u64, globals: &[Symbol]) -> Mutator {
        Mutator {
            rng: SmallRng::seed_from_u64(seed ^ 0x6d75_7461_7465),
            gen: TermGen::new(seed ^ 0x7375_6274, 2),
            globals: globals.iter().copied().collect(),
        }
    }

    /// One structural mutation of `e`, or `None` when the drawn operators
    /// found no applicable site. The caller still owes the mutant a
    /// fingerprint-change check and the `well_typed` gate.
    pub fn mutate(&mut self, e: &Expr) -> Option<Expr> {
        let sites = collect_sites(e);
        for _ in 0..8 {
            let out = match self.rng.gen_range(0..7u32) {
                0 => self.swap_subterms(e, &sites),
                1 => self.grow(e, &sites),
                2 => self.shrink_to_leaf(e, &sites),
                3 => self.perturb_alternatives(e, &sites),
                4 => self.perturb_raise(e, &sites),
                5 => self.splice_prelude(e, &sites),
                _ => self.perturb_literal(e, &sites),
            };
            if out.is_some() {
                return out;
            }
        }
        None
    }

    fn pick<'a>(&mut self, sites: &'a [Site]) -> Option<&'a Site> {
        if sites.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..sites.len());
        Some(&sites[i])
    }

    fn closed_under(&self, sub: &Expr, scope: &[Symbol]) -> bool {
        sub.free_vars()
            .iter()
            .all(|v| scope.contains(v) || self.globals.contains(v))
    }

    fn swap_subterms(&mut self, e: &Expr, sites: &Sites) -> Option<Expr> {
        if sites.ints.len() < 2 {
            return None;
        }
        for _ in 0..6 {
            let a = self.rng.gen_range(0..sites.ints.len());
            let b = self.rng.gen_range(0..sites.ints.len());
            let (sa, sb) = (&sites.ints[a], &sites.ints[b]);
            if a == b || is_prefix(&sa.path, &sb.path) || is_prefix(&sb.path, &sa.path) {
                continue;
            }
            let ta = get_at(e, &sa.path).clone();
            let tb = get_at(e, &sb.path).clone();
            if ta == tb {
                continue;
            }
            if !self.closed_under(&ta, &sb.scope) || !self.closed_under(&tb, &sa.scope) {
                continue;
            }
            let e1 = replace_at(e, &sa.path, tb);
            return Some(replace_at(&e1, &sb.path, ta));
        }
        None
    }

    fn grow(&mut self, e: &Expr, sites: &Sites) -> Option<Expr> {
        let site = self.pick(&sites.ints)?.clone();
        let sub = self.gen.subterm(2, &site.scope);
        Some(replace_at(e, &site.path, sub))
    }

    fn shrink_to_leaf(&mut self, e: &Expr, sites: &Sites) -> Option<Expr> {
        for _ in 0..4 {
            let site = self.pick(&sites.ints)?;
            if get_at(e, &site.path).size() <= 2 {
                continue;
            }
            let leaf = if !site.scope.is_empty() && self.rng.gen_bool(0.4) {
                let i = self.rng.gen_range(0..site.scope.len());
                Expr::var(site.scope[i])
            } else {
                Expr::int(self.rng.gen_range(0..=3i64))
            };
            return Some(replace_at(e, &site.path, leaf));
        }
        None
    }

    fn perturb_alternatives(&mut self, e: &Expr, sites: &Sites) -> Option<Expr> {
        let site = self.pick(&sites.cases)?.clone();
        let Expr::Case(scrut, alts) = get_at(e, &site.path) else {
            return None;
        };
        let mut alts = alts.clone();
        let int_case = alts.iter().any(|a| matches!(a.con, AltCon::Int(_)));
        if int_case && self.rng.gen_bool(0.5) {
            // Grow: one more literal arm, freshly generated right-hand side.
            let lit = self.rng.gen_range(0..=4i64);
            if !alts.iter().any(|a| a.con == AltCon::Int(lit)) {
                let rhs = self.gen.subterm(1, &site.scope);
                alts.insert(0, Alt::int(lit, rhs));
                return Some(replace_at(e, &site.path, Expr::Case(scrut.clone(), alts)));
            }
        }
        // Shrink: drop one arm (a now-unmatched scrutinee raises
        // PatternMatchFail — well-typed, semantically interesting).
        if alts.len() >= 2 {
            let i = self.rng.gen_range(0..alts.len());
            alts.remove(i);
            return Some(replace_at(e, &site.path, Expr::Case(scrut.clone(), alts)));
        }
        None
    }

    fn perturb_raise(&mut self, e: &Expr, sites: &Sites) -> Option<Expr> {
        if sites.raises.is_empty() || self.rng.gen_bool(0.4) {
            // Plant a new raise at an Int site.
            let site = self.pick(&sites.ints)?;
            let exn = ["DivideByZero", "Overflow", "NonTermination"][self.rng.gen_range(0..3usize)];
            return Some(replace_at(e, &site.path, Expr::raise(Expr::con(exn, []))));
        }
        let site = self.pick(&sites.raises)?;
        if self.rng.gen_bool(0.4) {
            // Remove the raise site entirely.
            return Some(replace_at(e, &site.path, Expr::int(7)));
        }
        // Swap the raised constructor.
        let exn = ["DivideByZero", "Overflow", "NonTermination"][self.rng.gen_range(0..3usize)];
        Some(replace_at(e, &site.path, Expr::raise(Expr::con(exn, []))))
    }

    fn splice_prelude(&mut self, e: &Expr, sites: &Sites) -> Option<Expr> {
        let site = self.pick(&sites.ints)?.clone();
        let inner = get_at(e, &site.path).clone();
        let spliced = match self.rng.gen_range(0..4u32) {
            0 => Expr::app(Expr::var("fzsum"), Expr::int(self.rng.gen_range(0..=25i64))),
            1 => Expr::apps(
                Expr::var("fzdiv"),
                [inner, Expr::int(self.rng.gen_range(0..=3i64))],
            ),
            2 => Expr::app(Expr::var("fzpick"), inner),
            _ => {
                let q = Symbol::intern("q");
                let body = Expr::add(Expr::var(q), Expr::int(self.rng.gen_range(0..=9i64)));
                Expr::apps(Expr::var("fztwice"), [Expr::lam(q, body), inner])
            }
        };
        Some(replace_at(e, &site.path, spliced))
    }

    fn perturb_literal(&mut self, e: &Expr, sites: &Sites) -> Option<Expr> {
        let site = self.pick(&sites.literals)?;
        let Expr::Int(n) = get_at(e, &site.path) else {
            return None;
        };
        let n = *n;
        let tweaked = match self.rng.gen_range(0..5u32) {
            0 => n + 1,
            1 => n - 1,
            2 => -n,
            3 => 0,
            // Large enough that products overflow i64's checked range.
            _ => 3_037_000_499,
        };
        if tweaked == n {
            return None;
        }
        Some(replace_at(e, &site.path, Expr::int(tweaked)))
    }
}

fn is_prefix(a: &[u16], b: &[u16]) -> bool {
    a.len() <= b.len() && a.iter().zip(b).all(|(x, y)| x == y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::FuzzCtx;
    use crate::gen::TermGen;

    #[test]
    fn mutants_stay_closed_and_mostly_well_typed() {
        let ctx = FuzzCtx::new();
        let globals = ctx.global_names();
        let mut g = TermGen::new(7, 5);
        let mut m = Mutator::new(7, &globals);
        let gset: BTreeSet<Symbol> = globals.iter().copied().collect();
        let mut accepted = 0u32;
        for _ in 0..150 {
            let t = g.term();
            if let Some(mutant) = m.mutate(&t) {
                assert!(
                    mutant.free_vars().iter().all(|v| gset.contains(v)),
                    "mutation opened a free variable: {mutant:?}"
                );
                if ctx.well_typed(&mutant) {
                    accepted += 1;
                }
            }
        }
        // The typed-site walk should keep the overwhelming majority of
        // mutants well-typed; the infer gate only mops up corner cases.
        assert!(accepted > 100, "only {accepted} well-typed mutants");
    }

    #[test]
    fn replace_and_get_roundtrip() {
        let e = Expr::add(Expr::int(1), Expr::div(Expr::int(4), Expr::int(2)));
        let sites = collect_sites(&e);
        for s in &sites.ints {
            let sub = get_at(&e, &s.path).clone();
            assert_eq!(replace_at(&e, &s.path, sub), e);
        }
    }
}
