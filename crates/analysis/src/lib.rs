//! Static exception-effect analysis for the imprecise-exception Core.
//!
//! The dynamic semantics (crates `urk-denot` / `urk-machine`) makes every
//! exceptional value denote a *set* of possible exceptions, with `⊥`
//! identified with the set of all of them (paper §4.1–§4.2). This crate
//! answers the corresponding *static* questions, conservatively, without
//! running anything:
//!
//! * which exceptions **may** an expression raise when forced to WHNF
//!   ([`Effect::exns`], [`Effect::predicted`]);
//! * may it **diverge** ([`Effect::diverges`] — folded into the predicted
//!   set as `All`, exactly as the semantics folds `⊥`);
//! * does it **certainly** raise ([`Effect::must_raise`]);
//! * is it **provably safe** — guaranteed to reach a normal WHNF
//!   ([`Effect::whnf_safe`]), the licence for the strictness-style
//!   rewrites in `urk-transform` and for `case`-folding around
//!   `unsafeIsException`/`unsafeGetException`.
//!
//! The headline soundness theorem, enforced differentially by
//! `tests/analysis.rs` over a corpus plus hundreds of random terms on
//! both evaluator backends: **the denoted exception set of every closed
//! term is `⊆` its predicted set**.
//!
//! Note what the analysis does *not* do: it never turns
//! `unsafeIsException` into the pure `isException` of §5.4 — that
//! function is unimplementable, because deciding membership of an
//! imprecise set is exactly deciding which exception the implementation
//! *would* pick. The analysis only folds the observer when the subject
//! provably denotes a normal value (answer `False`/`OK` regardless of
//! set contents) or provably raises without the possibility of
//! divergence (answer `True`/`Bad`): the cases where the set never needs
//! to be inspected.
//!
//! Modules: [`effect`] is the abstract domain, [`analyze`] the
//! whole-program Mycroft fixpoint, [`lint`] the `urk lint` diagnostics.

pub mod analyze;
pub mod effect;
pub mod lint;
pub mod validate;

pub use analyze::{analyze_program, Analysis, BindingFact, Summary};
pub use effect::{Effect, Val};
pub use lint::{lint_expr, lint_program, Diagnostic, LintCode};
pub use validate::{audit_binding_facts, audit_binds, FactAudit, FactAuditError};

#[cfg(test)]
mod tests {
    use super::*;
    use urk_syntax::core::CoreProgram;
    use urk_syntax::{parse_expr_src, parse_program, DataEnv, Exception};

    fn analyze_src(src: &str) -> (Analysis, DataEnv, CoreProgram) {
        let mut data = DataEnv::new();
        let prog = parse_program(src).expect("parse");
        let prog = urk_syntax::desugar_program(&prog, &mut data).expect("desugar");
        let an = analyze_program(&prog, &data);
        (an, data, prog)
    }

    fn effect_of(src: &str) -> Effect {
        let data = DataEnv::new();
        let e = parse_expr_src(src).expect("parse");
        let e = urk_syntax::desugar_expr(&e, &data).expect("desugar");
        Analysis::default().effect_of(&e, &data)
    }

    #[test]
    fn division_by_zero_is_a_must_raise() {
        let eff = effect_of("1 / 0");
        assert!(eff.must_raise);
        assert!(eff.predicted().contains(&Exception::DivideByZero));
        assert!(!eff.predicted().is_all());
    }

    #[test]
    fn constant_folding_flows_through_cases() {
        let eff = effect_of("case 2 + 3 of { 5 -> 10; _ -> 1 / 0 }");
        assert!(eff.whnf_safe());
        assert_eq!(eff.val, Some(Val::Int(10)));
    }

    #[test]
    fn unknown_division_predicts_both_arith_exceptions() {
        let (an, data, prog) = analyze_src("f x y = x / y");
        let s = an
            .summary(urk_syntax::Symbol::intern("f"))
            .expect("summary");
        assert_eq!(s.arity, 2);
        assert!(s.body_effect.exns.contains(&Exception::DivideByZero));
        assert!(s.body_effect.exns.contains(&Exception::Overflow));
        assert!(!s.body_effect.diverges);
        let _ = (data, prog);
    }

    #[test]
    fn recursion_is_pinned_to_bottom() {
        let (an, _, _) = analyze_src("loop x = loop x");
        let name = urk_syntax::Symbol::intern("loop");
        assert!(an.recursive.contains(&name));
        let s = an.summary(name).expect("summary");
        assert!(s.body_effect.diverges);
        assert!(s.body_effect.predicted().is_all());
    }

    #[test]
    fn mutual_recursion_is_pinned_but_neighbours_are_not() {
        let (an, data, _) = analyze_src(
            "even n = case n of { 0 -> True; _ -> odd (n - 1) }\n\
             odd n = case n of { 0 -> False; _ -> even (n - 1) }\n\
             safe x = x + 1",
        );
        assert!(an.recursive.contains(&urk_syntax::Symbol::intern("even")));
        assert!(an.recursive.contains(&urk_syntax::Symbol::intern("odd")));
        let safe = an
            .summary(urk_syntax::Symbol::intern("safe"))
            .expect("summary");
        assert!(!safe.body_effect.diverges);
        assert!(safe.body_effect.exns.contains(&Exception::Overflow));
        let _ = data;
    }

    #[test]
    fn lazy_let_does_not_raise_until_forced() {
        // The bad binding is never forced, so nothing is predicted.
        let eff = effect_of("let b = 1 / 0 in 42");
        assert!(eff.whnf_safe());
        assert_eq!(eff.val, Some(Val::Int(42)));
        // Constructors are lazy too (§4.2): Con args never propagate.
        let eff = effect_of("Cons (raise Overflow) Nil");
        assert!(eff.whnf_safe());
    }

    #[test]
    fn is_exception_folds_only_with_proof() {
        // Provably safe subject: False branch.
        let eff = effect_of("case unsafeIsException 42 of { True -> raise Overflow; False -> 7 }");
        assert!(eff.whnf_safe());
        assert_eq!(eff.val, Some(Val::Int(7)));
        // Provably raising subject: True branch.
        let eff =
            effect_of("case unsafeIsException (1 / 0) of { True -> 7; False -> raise Overflow }");
        assert!(eff.whnf_safe());
        assert_eq!(eff.val, Some(Val::Int(7)));
    }

    #[test]
    fn opaque_parameters_block_unsound_folding() {
        // With the parameter treated as "pure" the False branch would be
        // chosen and `f (raise UserError)` would be predicted exception
        // free — unsound. Opacity keeps both branches live.
        let (an, _, _) = analyze_src(
            "f x = case unsafeIsException x of { True -> raise Overflow; False -> 42 }",
        );
        let s = an
            .summary(urk_syntax::Symbol::intern("f"))
            .expect("summary");
        assert!(s.body_effect.exns.contains(&Exception::Overflow));
        assert!(!s.body_effect.must_raise);
    }

    #[test]
    fn summaries_compose_through_saturated_calls() {
        let (an, data, _) = analyze_src(
            "half x = x / 2\n\
             use y = half (y + 1)",
        );
        let s = an
            .summary(urk_syntax::Symbol::intern("use"))
            .expect("summary");
        // Division by the constant 2 is total; + may overflow.
        assert!(!s.body_effect.exns.contains(&Exception::DivideByZero));
        assert!(s.body_effect.exns.contains(&Exception::Overflow));
        assert!(!s.body_effect.diverges);
        // A saturated call with a safe argument is provably safe (no
        // constant, though: summaries are not inlined).
        let e = parse_expr_src("half 10").expect("parse");
        let e = urk_syntax::desugar_expr(&e, &data).expect("desugar");
        let eff = an.effect_of(&e, &data);
        assert!(eff.whnf_safe());
        assert_eq!(eff.val, None);
    }

    #[test]
    fn unused_parameters_do_not_contribute() {
        let (an, data, _) = analyze_src("konst x y = x");
        let s = an
            .summary(urk_syntax::Symbol::intern("konst"))
            .expect("summary");
        assert_eq!(s.uses, vec![true, false]);
        let e = parse_expr_src("konst 1 (raise Overflow)").expect("parse");
        let e = urk_syntax::desugar_expr(&e, &data).expect("desugar");
        let eff = an.effect_of(&e, &data);
        assert!(eff.whnf_safe(), "discarded argument must not contribute");
    }

    #[test]
    fn seq_forces_the_first_operand() {
        let eff = effect_of("seq (1 / 0) 42");
        assert!(eff.must_raise);
        assert!(eff.predicted().contains(&Exception::DivideByZero));
    }

    #[test]
    fn raise_of_known_constructor_is_a_singleton() {
        let eff = effect_of("raise DivideByZero");
        assert!(eff.must_raise);
        let p = eff.predicted();
        assert!(!p.is_all());
        assert_eq!(p.len(), Some(1));
        let eff = effect_of("raise (UserError \"urk\")");
        assert!(eff
            .predicted()
            .contains(&Exception::UserError("urk".into())));
        assert!(!eff.predicted().is_all());
    }

    #[test]
    fn uncovered_case_predicts_pattern_match_fail() {
        let (an, data, _) = analyze_src("f x = case x of { True -> 1 }");
        let s = an
            .summary(urk_syntax::Symbol::intern("f"))
            .expect("summary");
        assert!(s
            .body_effect
            .exns
            .contains(&Exception::PatternMatchFail("case".into())));
        // Covering both constructors removes the prediction.
        let (an2, _, _) = analyze_src("g x = case x of { True -> 1; False -> 2 }");
        let s2 = an2
            .summary(urk_syntax::Symbol::intern("g"))
            .expect("summary");
        assert!(!s2
            .body_effect
            .exns
            .contains(&Exception::PatternMatchFail("case".into())));
        let _ = data;
    }

    #[test]
    fn higher_order_application_is_bottom() {
        let (an, data, _) = analyze_src("apply f x = f x");
        let e = parse_expr_src("apply (\\y -> y) 1").expect("parse");
        let e = urk_syntax::desugar_expr(&e, &data).expect("desugar");
        let eff = an.effect_of(&e, &data);
        assert!(eff.predicted().is_all(), "unknown application must be ⊥");
    }

    #[test]
    fn binding_facts_export_in_program_order_with_constants_for_arity_zero() {
        let (an, _, prog) = analyze_src(
            "k = 42\n\
             boom = 1 / 0\n\
             inc x = x + 1",
        );
        let facts = an.binding_facts(&prog.binds);
        assert_eq!(facts.len(), 3);
        assert_eq!(facts[0].name, urk_syntax::Symbol::intern("k"));
        assert!(facts[0].whnf_safe);
        assert_eq!(facts[0].val, Some(Val::Int(42)));
        assert!(facts[1].must_raise);
        assert!(!facts[1].whnf_safe);
        assert_eq!(facts[1].val, None);
        // Arity-positive bindings never export a constant: the "value"
        // of a lambda is not a literal.
        assert_eq!(facts[2].arity, 1);
        assert_eq!(facts[2].val, None);
        // A lambda is itself a WHNF — forcing it cannot raise — but its
        // body may; whnf_safe reports the *body* effect under opaque
        // arguments, which is the conservative direction for a licence.
        assert!(!facts[2].whnf_safe || facts[2].arity > 0);
    }

    #[test]
    fn demand_analysis_proves_strict_parameters() {
        let (an, _, _) = analyze_src(
            "sq x = x * x\n\
             konst x y = x\n\
             choose c a b = case c of { True -> a; False -> b }\n\
             both p q = seq p (q + 1)\n\
             discard d = let u = d in 42",
        );
        let s = |n: &str| an.summary(urk_syntax::Symbol::intern(n)).expect("summary");
        // A strict prim demands its operand.
        assert_eq!(s("sq").demands, vec![true]);
        // A discarded parameter is not demanded.
        assert_eq!(s("konst").demands, vec![true, false]);
        // The scrutinee is demanded; the branches disagree on a/b.
        assert_eq!(s("choose").demands, vec![true, false, false]);
        // seq forces both sides.
        assert_eq!(s("both").demands, vec![true, true]);
        // Binding without forcing is not a demand.
        assert_eq!(s("discard").demands, vec![false]);
    }

    #[test]
    fn demand_flows_through_saturated_calls_and_lets() {
        let (an, _, _) = analyze_src(
            "sq x = x * x\n\
             viaCall a = sq a\n\
             viaLet b = let t = b + 1 in t * 2\n\
             lazyCon c = Pair c 1",
        );
        let s = |n: &str| an.summary(urk_syntax::Symbol::intern(n)).expect("summary");
        // sq demands its parameter, so a saturated call transfers demand.
        assert_eq!(s("viaCall").demands, vec![true]);
        // Forcing a let-bound local forces its right-hand side.
        assert_eq!(s("viaLet").demands, vec![true]);
        // Constructor fields are lazy (§4.2): no demand.
        assert_eq!(s("lazyCon").demands, vec![false]);
    }

    #[test]
    fn demand_is_pinned_false_on_cycles_and_implies_uses() {
        let (an, _, prog) = analyze_src(
            "loop x = if x == 0 then 0 else loop (x - 1)\n\
             sq y = y * y",
        );
        let s = |n: &str| an.summary(urk_syntax::Symbol::intern(n)).expect("summary");
        assert_eq!(s("loop").demands, vec![false]);
        let facts = an.binding_facts(&prog.binds);
        for (f, name) in facts.iter().zip(["loop", "sq"]) {
            let sum = an
                .summary(urk_syntax::Symbol::intern(name))
                .expect("summary");
            assert_eq!(f.demands.len(), f.arity);
            for (i, d) in f.demands.iter().enumerate() {
                assert!(!*d || sum.uses[i], "demanded ⇒ used for {name}[{i}]");
            }
        }
    }

    #[test]
    fn exception_observers_swallow_demand() {
        let (an, _, _) = analyze_src(
            "probe x = case unsafeIsException x of { True -> 1; False -> 0 }\n\
             mapped m = mapException (\\e -> Overflow) (m + 1)\n\
             thrown t = raise (UserError \"boom\")",
        );
        let s = |n: &str| an.summary(urk_syntax::Symbol::intern(n)).expect("summary");
        // The observer never lets the subject's exception escape.
        assert_eq!(s("probe").demands, vec![false]);
        // mapException keeps the subject exceptional (with a new tag).
        assert_eq!(s("mapped").demands, vec![true]);
        // An always-raising body is vacuously exceptional whatever t is.
        assert_eq!(s("thrown").demands, vec![true]);
    }

    #[test]
    fn lint_flags_always_raising_and_dead_branches() {
        let (_, data, prog) = analyze_src(
            "boom x = (1 / 0) + x\n\
             dead y = case unsafeIsException (y + 0 * y) of { True -> 1; False -> 2 }",
        );
        let diags = lint_program(&prog, &data);
        assert!(
            diags.iter().any(|d| d.code == LintCode::AlwaysRaises
                && d.binding == urk_syntax::Symbol::intern("boom")),
            "expected URK001 in {diags:?}"
        );
        // `y + 0 * y` is opaque, not provably safe, so no dead branch is
        // claimed there; use a manifestly safe subject instead.
        let (_, data2, prog2) =
            analyze_src("dead2 = case unsafeIsException 42 of { True -> 1; False -> 2 }");
        let diags2 = lint_program(&prog2, &data2);
        assert!(
            diags2
                .iter()
                .any(|d| d.code == LintCode::DeadExceptionBranch),
            "expected URK003 in {diags2:?}"
        );
    }

    #[test]
    fn lint_flags_match_may_fail_and_unreachable_alts() {
        let (_, data, prog) = analyze_src("partial x = case x of { True -> 1 }");
        let diags = lint_program(&prog, &data);
        assert!(
            diags.iter().any(|d| d.code == LintCode::MatchMayFail),
            "expected URK004 in {diags:?}"
        );
        // An early default folds the rest away at desugar time, so use a
        // known-literal scrutinee to exercise value-based unreachability.
        let (_, data2, prog2) = analyze_src("shadow = let k = 1 in case k of { 1 -> 10; 2 -> 20 }");
        let diags2 = lint_program(&prog2, &data2);
        assert!(
            diags2.iter().any(|d| d.code == LintCode::UnreachableAlt),
            "expected URK002 in {diags2:?}"
        );
        let _ = &prog.binds;
    }
}
