//! The abstract domain: a conservative *effect* for each expression.
//!
//! The paper's §4.2 semantics makes every exceptional value denote a *set*
//! of exceptions, with `⊥` identified with the set of **all** exceptions
//! (§4.1). An [`Effect`] is the static image of that domain: a finite
//! over-approximation of the proper exceptions an expression may raise
//! when forced to weak head normal form, a may-diverge bit (divergence
//! folds into the lattice as `All`, exactly as `⊥` does in the
//! denotational semantics), a must-raise bit (the expression certainly
//! denotes an exceptional value), and an optional known WHNF constant for
//! constant propagation.
//!
//! Soundness contract, checked differentially by `tests/analysis.rs`:
//! for every closed expression `e`, the denoted exception set of `e` is
//! `⊆` [`Effect::predicted`]. `exns`/`diverges`/`opaque` are *may*
//! over-approximations (safe to grow); `must_raise` and `val` are *must*
//! under-approximations (safe to drop, never safe to invent).

use std::rc::Rc;

use urk_denot::ExnSet;
use urk_syntax::Symbol;

/// A known weak-head-normal-form constant, for constant propagation.
///
/// Constructor values are tracked by *tag only* — that is all `case`
/// selection needs — so `Con` covers both nullary constructors and
/// applications with unknown fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Val {
    /// A known integer.
    Int(i64),
    /// A known character.
    Char(char),
    /// A known string.
    Str(Rc<str>),
    /// A constructor with a known tag (fields unknown).
    Con(Symbol),
}

/// The effect triple (plus constant) for one expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Effect {
    /// Over-approximation of the *proper* exceptions forcing the
    /// expression to WHNF may raise. Divergence is tracked separately in
    /// [`Effect::diverges`]; `ExnSet::bottom()` (`All`) here means "could
    /// be anything".
    pub exns: ExnSet,
    /// May the expression fail to terminate when forced? Per §4.1 this is
    /// the same as "may denote the set of all exceptions".
    pub diverges: bool,
    /// Forcing this expression *certainly* yields an exceptional value
    /// (or diverges). A must-property: `false` is always sound.
    pub must_raise: bool,
    /// The expression's WHNF may be an exceptional value contributed by a
    /// function parameter whose exceptions are accounted *at the call
    /// site* (via [`crate::Summary::uses`]) rather than in `exns`. An
    /// opaque effect must never license a rewrite that branches on the
    /// value being normal — see [`Effect::whnf_safe`].
    pub opaque: bool,
    /// Known WHNF constant. Invariant (restored by [`Effect::normalize`]):
    /// only present when the effect is [`Effect::whnf_safe`].
    pub val: Option<Val>,
}

impl Effect {
    /// The effect of an expression that certainly evaluates to a normal
    /// value without raising: empty set, terminating.
    pub fn pure() -> Effect {
        Effect {
            exns: ExnSet::empty(),
            diverges: false,
            must_raise: false,
            opaque: false,
            val: None,
        }
    }

    /// `pure` with a known constant.
    pub fn of_val(v: Val) -> Effect {
        Effect {
            val: Some(v),
            ..Effect::pure()
        }
    }

    /// The bottom of the analysis: nothing is known. May raise anything,
    /// may diverge. Used for unknown applications, `letrec`-bound locals,
    /// unbound variables of open terms, and recursive globals.
    pub fn bottom() -> Effect {
        Effect {
            exns: ExnSet::bottom(),
            diverges: true,
            must_raise: false,
            opaque: false,
            val: None,
        }
    }

    /// The effect of a function parameter inside a summary body: treated
    /// as raising nothing (the caller compensates through
    /// [`crate::Summary::uses`]) but *opaque*, so no rewrite is licensed
    /// by pretending the argument is a normal value.
    pub fn opaque_arg() -> Effect {
        Effect {
            opaque: true,
            ..Effect::pure()
        }
    }

    /// Provably evaluates to a normal value: cannot raise, cannot
    /// diverge, and is not standing in for an unknown argument.
    pub fn whnf_safe(&self) -> bool {
        self.exns.is_empty() && !self.diverges && !self.must_raise && !self.opaque
    }

    /// The statically predicted exception set, with divergence folded in
    /// as `All` per §4.1. The soundness battery checks the denoted set of
    /// every corpus term is `⊆` this.
    pub fn predicted(&self) -> ExnSet {
        if self.diverges {
            ExnSet::bottom()
        } else {
            self.exns.clone()
        }
    }

    /// Restores the `val`-only-when-safe invariant.
    pub fn normalize(mut self) -> Effect {
        if self.val.is_some() && !self.whnf_safe() {
            self.val = None;
        }
        self
    }

    /// Least upper bound of two alternative outcomes (e.g. two `case`
    /// branches): may-properties union, must-properties intersect.
    pub fn join(&self, other: &Effect) -> Effect {
        Effect {
            exns: self.exns.union(&other.exns),
            diverges: self.diverges || other.diverges,
            must_raise: self.must_raise && other.must_raise,
            opaque: self.opaque || other.opaque,
            val: match (&self.val, &other.val) {
                (Some(a), Some(b)) if a == b => Some(a.clone()),
                _ => None,
            },
        }
        .normalize()
    }
}

impl Default for Effect {
    fn default() -> Effect {
        Effect::bottom()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urk_syntax::Exception;

    #[test]
    fn predicted_folds_divergence_into_all() {
        let mut e = Effect::pure();
        e.exns.insert(Exception::DivideByZero);
        assert!(!e.predicted().is_all());
        e.diverges = true;
        assert!(e.predicted().is_all());
    }

    #[test]
    fn join_unions_may_and_intersects_must() {
        let a = Effect {
            exns: ExnSet::singleton(Exception::Overflow),
            diverges: false,
            must_raise: true,
            opaque: false,
            val: None,
        };
        let b = Effect::of_val(Val::Int(3));
        let j = a.join(&b);
        assert!(j.exns.contains(&Exception::Overflow));
        assert!(!j.must_raise);
        assert_eq!(j.val, None);
        let same = Effect::of_val(Val::Int(3)).join(&Effect::of_val(Val::Int(3)));
        assert_eq!(same.val, Some(Val::Int(3)));
    }

    #[test]
    fn opaque_blocks_whnf_safety_and_vals() {
        assert!(!Effect::opaque_arg().whnf_safe());
        let e = Effect {
            val: Some(Val::Int(1)),
            ..Effect::opaque_arg()
        };
        assert_eq!(e.normalize().val, None);
    }
}
