//! `urk lint`: diagnostics derived from the effect analysis.
//!
//! Codes are stable:
//!
//! * **URK001** — an expression that always raises (and is not itself a
//!   `raise`, which is taken as intentional). Reported at the *origin*:
//!   the outermost such expression none of whose forced children already
//!   always raises.
//! * **URK002** — a provably unreachable `case` alternative (follows the
//!   default, duplicates an earlier pattern, or cannot match a
//!   statically-known scrutinee).
//! * **URK003** — same unreachability, but on an
//!   `unsafeIsException`/`unsafeGetException` scrutinee: a dead
//!   exception-handler branch (§5.4/§6).
//! * **URK004** — a `case` whose `PatternMatchFail` is statically
//!   reachable (no default and the patterns do not exhaust the
//!   constructor family), as compiled by the `matchc` pattern-match
//!   compiler.
//! * **URK005** — a `let` binding that is never demanded but whose
//!   evaluation may raise: under the lazy semantics the right-hand side
//!   is never forced, so the imprecise exception it denotes is silently
//!   discarded (§4's denotation makes the program's *value* independent
//!   of it — which is exactly why it is invisible without a lint).
//! * **URK006** — a `mapException` handler whose subject's predicted
//!   exception set is provably empty: the transformer can never fire
//!   (§5.4) — a dead handler.
//!
//! Core expressions carry no source spans, so positions are a *path*:
//! the binding name plus a dotted breadcrumb from its right-hand side
//! (e.g. `case.alt[2].rhs`). Paths are deterministic, which the CI lint
//! golden relies on.

use std::fmt;
use std::rc::Rc;

use urk_syntax::core::{Alt, AltCon, CoreProgram, Expr, PrimOp};
use urk_syntax::{DataEnv, Symbol};

use crate::analyze::{analyze_program, Analysis, Analyzer};
use crate::effect::{Effect, Val};

/// Stable diagnostic codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// URK001: the expression always raises.
    AlwaysRaises,
    /// URK002: unreachable case alternative.
    UnreachableAlt,
    /// URK003: dead `isException`/`getException` branch.
    DeadExceptionBranch,
    /// URK004: reachable pattern-match failure.
    MatchMayFail,
    /// URK005: a never-demanded binding whose evaluation may raise.
    DiscardedException,
    /// URK006: a `mapException` handler that can never fire.
    DeadHandler,
}

impl LintCode {
    /// The stable code string.
    pub fn as_str(&self) -> &'static str {
        match self {
            LintCode::AlwaysRaises => "URK001",
            LintCode::UnreachableAlt => "URK002",
            LintCode::DeadExceptionBranch => "URK003",
            LintCode::MatchMayFail => "URK004",
            LintCode::DiscardedException => "URK005",
            LintCode::DeadHandler => "URK006",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: LintCode,
    /// The top-level binding the finding is in.
    pub binding: Symbol,
    /// Dotted breadcrumb from the binding's right-hand side.
    pub path: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.code,
            self.binding,
            if self.path.is_empty() {
                "rhs"
            } else {
                self.path.as_str()
            },
            self.message
        )
    }
}

/// Lint a whole program: analyse, then walk every binding.
pub fn lint_program(prog: &CoreProgram, data: &DataEnv) -> Vec<Diagnostic> {
    let analysis = analyze_program(prog, data);
    let mut out = Vec::new();
    for (name, rhs) in &prog.binds {
        lint_binding(&analysis, data, *name, rhs, &mut out);
    }
    out
}

/// Lint one expression as if it were the right-hand side of `binding`,
/// against an existing program analysis (used for `--expr` queries).
pub fn lint_expr(
    analysis: &Analysis,
    data: &DataEnv,
    binding: Symbol,
    e: &Expr,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_binding(analysis, data, binding, e, &mut out);
    out
}

fn lint_binding(
    analysis: &Analysis,
    data: &DataEnv,
    name: Symbol,
    rhs: &Expr,
    out: &mut Vec<Diagnostic>,
) {
    let an = Analyzer {
        data,
        summaries: &analysis.summaries,
    };
    let mut w = Walker {
        an,
        binding: name,
        path: Vec::new(),
        out,
    };
    w.walk(rhs, &mut Vec::new());
}

struct Walker<'a, 'd> {
    an: Analyzer<'d>,
    binding: Symbol,
    path: Vec<String>,
    out: &'a mut Vec<Diagnostic>,
}

impl Walker<'_, '_> {
    fn report(&mut self, code: LintCode, message: String) {
        self.out.push(Diagnostic {
            code,
            binding: self.binding,
            path: self.path.join("."),
            message,
        });
    }

    fn walk(&mut self, e: &Expr, env: &mut Vec<(Symbol, Effect)>) {
        let eff = self.an.effect(e, env);

        // URK001: always-raising origins. Bare variables point at their
        // binding and `raise` is intentional; neither is reported.
        if eff.must_raise
            && !matches!(e, Expr::Raise(_) | Expr::Var(_))
            && !self.forced_child_must_raise(e, env)
        {
            let set = eff.predicted();
            self.report(
                LintCode::AlwaysRaises,
                format!("this expression always raises {set}"),
            );
        }

        if let Expr::Case(s, alts) = e {
            self.lint_case(s, alts, env);
        }

        // URK005: a lazily-bound right-hand side that may raise but is
        // never demanded — the strictness facts prove the body cannot
        // force it, so its imprecise exception is silently discarded.
        if let Expr::Let(x, r, b) = e {
            let re = self.an.effect(r, env);
            let may_raise = re.must_raise || !re.exns.is_empty();
            if may_raise && !b.free_vars().contains(x) {
                self.report(
                    LintCode::DiscardedException,
                    format!(
                        "binding `{x}` is never demanded but may raise {}; the imprecise \
                         exception is silently discarded",
                        re.predicted()
                    ),
                );
            }
        }

        // URK006: the §5.4 exception transformer over a subject whose
        // predicted exception set is empty — the handler is dead.
        if let Expr::Prim(PrimOp::MapExn, args) = e {
            if let Some(subj) = args.get(1) {
                if self.an.effect(subj, env).whnf_safe() {
                    self.report(
                        LintCode::DeadHandler,
                        "dead handler: the subject's predicted exception set is empty, \
                         so mapException can never fire"
                            .into(),
                    );
                }
            }
        }

        self.walk_children(e, env);
    }

    /// Does any child forced at `e`'s WHNF already always raise? If so,
    /// that child (or something inside it) is the origin, not `e`.
    fn forced_child_must_raise(&self, e: &Expr, env: &mut Vec<(Symbol, Effect)>) -> bool {
        match e {
            Expr::Let(x, r, b) => {
                let re = self.an.effect(r, env);
                env.push((*x, re));
                let m = self.an.effect(b, env).must_raise;
                env.pop();
                m
            }
            Expr::LetRec(binds, b) => {
                for (x, _) in binds {
                    env.push((*x, Effect::bottom()));
                }
                let m = self.an.effect(b, env).must_raise;
                env.truncate(env.len() - binds.len());
                m
            }
            Expr::Case(s, alts) => {
                let se = self.an.effect(s, env);
                if se.must_raise {
                    return true;
                }
                alts.iter().any(|alt| {
                    let bound = bind_alt_for_walk(&self.an, alt, &se, env);
                    let m = self.an.effect(&alt.rhs, env).must_raise;
                    env.truncate(env.len() - bound);
                    m
                })
            }
            Expr::Prim(_, args) => args.iter().any(|a| self.an.effect(a, env).must_raise),
            Expr::App(_, _) => {
                let mut head = e;
                let mut any = false;
                while let Expr::App(f, a) = head {
                    any = any || self.an.effect(a, env).must_raise;
                    head = f;
                }
                any || self.an.effect(head, env).must_raise
            }
            _ => false,
        }
    }

    fn lint_case(&mut self, s: &Rc<Expr>, alts: &[Alt], env: &mut Vec<(Symbol, Effect)>) {
        let se = self.an.effect(s, env);
        let exn_scrut = matches!(
            &**s,
            Expr::Prim(PrimOp::UnsafeIsException | PrimOp::UnsafeGetException, _)
        );
        let mut seen_default = false;
        let mut matched = false;
        let mut seen: Vec<&AltCon> = Vec::new();
        for (i, alt) in alts.iter().enumerate() {
            let mut reason: Option<(LintCode, String)> = None;
            if seen_default {
                reason = Some((
                    LintCode::UnreachableAlt,
                    "unreachable: follows the default alternative".into(),
                ));
            } else if matched {
                let code = if exn_scrut {
                    LintCode::DeadExceptionBranch
                } else {
                    LintCode::UnreachableAlt
                };
                reason = Some((
                    code,
                    "unreachable: a preceding alternative always matches".into(),
                ));
            } else if alt.con != AltCon::Default && seen.contains(&&alt.con) {
                reason = Some((
                    LintCode::UnreachableAlt,
                    "unreachable: duplicates an earlier pattern".into(),
                ));
            } else if let Some(v) = &se.val {
                if alt_matches_val(v, &alt.con) {
                    matched = true;
                } else {
                    let code = if exn_scrut {
                        LintCode::DeadExceptionBranch
                    } else {
                        LintCode::UnreachableAlt
                    };
                    reason = Some((
                        code,
                        format!("unreachable: the scrutinee is always {}", show_val(v)),
                    ));
                }
            }
            if alt.con == AltCon::Default {
                seen_default = true;
            }
            seen.push(&alt.con);
            match reason {
                Some((code, msg)) => {
                    self.path.push(format!("alt[{i}]"));
                    self.report(code, msg);
                    self.path.pop();
                }
                // URK004: `matchc` desugars a non-exhaustive match into an
                // explicit `_ -> raise (PatternMatchFail "case")` default;
                // if it is not provably unreachable, the failure is live.
                None if alt.con == AltCon::Default
                    && alt.binders.is_empty()
                    && is_pmf_raise(&alt.rhs)
                    && se.val.is_none()
                    && !se.must_raise
                    && !self.covers_without_defaults(alts) =>
                {
                    self.path.push(format!("alt[{i}]"));
                    self.report(
                        LintCode::MatchMayFail,
                        "pattern match may fail: the alternatives do not cover every \
                         constructor, so PatternMatchFail \"case\" is reachable"
                            .into(),
                    );
                    self.path.pop();
                }
                None => {}
            }
        }
        // URK004 for hand-built Core with no default at all.
        if !self.an.covers(alts) && se.val.is_none() && !se.must_raise {
            self.report(
                LintCode::MatchMayFail,
                "pattern match may fail: no default and the alternatives do not cover \
                 every constructor (raises PatternMatchFail \"case\")"
                    .into(),
            );
        }
    }

    /// Do the non-default alternatives already exhaust the family?
    fn covers_without_defaults(&self, alts: &[Alt]) -> bool {
        let proper: Vec<Alt> = alts
            .iter()
            .filter(|a| a.con != AltCon::Default)
            .cloned()
            .collect();
        self.an.covers(&proper)
    }

    fn walk_children(&mut self, e: &Expr, env: &mut Vec<(Symbol, Effect)>) {
        match e {
            Expr::Var(_) | Expr::Int(_) | Expr::Char(_) | Expr::Str(_) => {}
            Expr::Con(_, args) => {
                for (i, a) in args.iter().enumerate() {
                    self.path.push(format!("con[{i}]"));
                    self.walk(a, env);
                    self.path.pop();
                }
            }
            Expr::App(f, a) => {
                self.path.push("fun".into());
                self.walk(f, env);
                self.path.pop();
                self.path.push("arg".into());
                self.walk(a, env);
                self.path.pop();
            }
            Expr::Lam(x, b) => {
                env.push((*x, Effect::opaque_arg()));
                self.path.push(format!("\\{x}"));
                self.walk(b, env);
                self.path.pop();
                env.pop();
            }
            Expr::Let(x, r, b) => {
                self.path.push(format!("let[{x}]"));
                self.walk(r, env);
                self.path.pop();
                let re = self.an.effect(r, env);
                env.push((*x, re));
                self.path.push("in".into());
                self.walk(b, env);
                self.path.pop();
                env.pop();
            }
            Expr::LetRec(binds, b) => {
                for (x, _) in binds {
                    env.push((*x, Effect::bottom()));
                }
                for (x, r) in binds {
                    self.path.push(format!("letrec[{x}]"));
                    self.walk(r, env);
                    self.path.pop();
                }
                self.path.push("in".into());
                self.walk(b, env);
                self.path.pop();
                env.truncate(env.len() - binds.len());
            }
            Expr::Case(s, alts) => {
                self.path.push("case".into());
                self.walk(s, env);
                self.path.pop();
                let se = self.an.effect(s, env);
                for (i, alt) in alts.iter().enumerate() {
                    let bound = bind_alt_for_walk(&self.an, alt, &se, env);
                    self.path.push(format!("alt[{i}]"));
                    self.walk(&alt.rhs, env);
                    self.path.pop();
                    env.truncate(env.len() - bound);
                }
            }
            Expr::Prim(_, args) => {
                for (i, a) in args.iter().enumerate() {
                    self.path.push(format!("prim[{i}]"));
                    self.walk(a, env);
                    self.path.pop();
                }
            }
            Expr::Raise(x) => {
                self.path.push("raise".into());
                self.walk(x, env);
                self.path.pop();
            }
        }
    }
}

/// Mirror of the analyzer's alternative binding discipline for the walk.
fn bind_alt_for_walk(
    an: &Analyzer<'_>,
    alt: &Alt,
    se: &Effect,
    env: &mut Vec<(Symbol, Effect)>,
) -> usize {
    let _ = an;
    match &alt.con {
        AltCon::Con(_) => {
            for b in &alt.binders {
                env.push((*b, Effect::bottom()));
            }
            alt.binders.len()
        }
        AltCon::Default => match alt.binders.first() {
            Some(b) => {
                let eff = if se.whnf_safe() {
                    se.clone()
                } else {
                    Effect::opaque_arg()
                };
                env.push((*b, eff));
                1
            }
            None => 0,
        },
        _ => 0,
    }
}

/// Is this the `matchc`-synthesised `raise (PatternMatchFail _)`?
fn is_pmf_raise(e: &Expr) -> bool {
    if let Expr::Raise(inner) = e {
        if let Expr::Con(c, args) = &**inner {
            return c.as_str() == "PatternMatchFail"
                && matches!(args.as_slice(), [a] if matches!(&**a, Expr::Str(_)));
        }
    }
    false
}

fn alt_matches_val(v: &Val, con: &AltCon) -> bool {
    match (v, con) {
        (_, AltCon::Default) => true,
        (Val::Con(t), AltCon::Con(c)) => t == c,
        (Val::Int(n), AltCon::Int(m)) => n == m,
        (Val::Char(a), AltCon::Char(b)) => a == b,
        (Val::Str(a), AltCon::Str(b)) => **a == **b,
        _ => false,
    }
}

fn show_val(v: &Val) -> String {
    match v {
        Val::Int(n) => n.to_string(),
        Val::Char(c) => format!("{c:?}"),
        Val::Str(s) => format!("{s:?}"),
        Val::Con(c) => c.to_string(),
    }
}
