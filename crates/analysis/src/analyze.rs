//! The whole-program abstract interpreter.
//!
//! [`analyze_program`] computes a [`Summary`] per top-level binding via a
//! Mycroft-style fixpoint mirroring `urk-transform`'s strictness analysis:
//! peel the manifest lambdas, start from an optimistic summary, and
//! re-analyse every body against the current summaries until nothing
//! changes. Two departures keep the optimism sound:
//!
//! * **Divergence cannot be discovered optimistically** — `loop = loop`
//!   would happily stabilise at "pure". Every binding on a cycle of the
//!   syntactic consultation graph (an edge `g → h` whenever `h` occurs
//!   free in `g`'s right-hand side) is therefore *pinned* to the bottom
//!   effect (may raise anything, may diverge) before iteration starts.
//!   Recursion-free Core terms terminate, so the optimistic start is
//!   sound for everything that is left — an acyclic system on which the
//!   rounds converge within its depth.
//! * **Higher-order applications are opaque** — a lambda is WHNF-safe
//!   but *applying* it can raise, so any application whose head is
//!   neither a manifest lambda nor a known global summary falls to
//!   [`Effect::bottom`] (which also disposes of `(\x -> x x)(\x -> x x)`).
//!
//! Function parameters are analysed as [`Effect::opaque_arg`]: raising
//! nothing themselves, with the caller compensating through
//! [`Summary::uses`] — and opacity vetoing every value-shape refinement
//! (`unsafeIsException` folding, known-value `case` selection) that would
//! be wrong when the actual argument is exceptional.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use urk_denot::ExnSet;
use urk_syntax::core::{Alt, AltCon, CoreProgram, Expr, PrimOp};
use urk_syntax::{DataEnv, Exception, Symbol};

use crate::effect::{Effect, Val};

/// The per-function result of the fixpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Number of manifest lambdas peeled off the right-hand side.
    pub arity: usize,
    /// Effect of forcing the body to WHNF with every parameter bound to
    /// [`Effect::opaque_arg`].
    pub body_effect: Effect,
    /// May-use per parameter: `false` guarantees the argument is never
    /// forced (nor embedded in the result), so a saturated call only
    /// unions the effects of the `true` positions.
    pub uses: Vec<bool>,
    /// Must-demand per parameter: `true` guarantees that an exceptional
    /// argument in that position makes the saturated call's own result
    /// exceptional — per §4 the licence for evaluating the argument
    /// eagerly without changing the denoted exception set. `false` is
    /// always sound.
    pub demands: Vec<bool>,
}

/// The result of [`analyze_program`].
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// One summary per top-level binding.
    pub summaries: HashMap<Symbol, Summary>,
    /// Bindings on a consultation-graph cycle, pinned to bottom.
    pub recursive: HashSet<Symbol>,
    /// Fixpoint rounds actually run (diagnostics / benchmarking).
    pub rounds: usize,
}

impl Analysis {
    /// Effect of an expression (possibly open: unbound variables are
    /// [`Effect::bottom`], never an error) against the program summaries.
    pub fn effect_of(&self, e: &Expr, data: &DataEnv) -> Effect {
        let an = Analyzer {
            data,
            summaries: &self.summaries,
        };
        an.effect(e, &mut Vec::new())
    }

    /// The statically predicted exception set of `e`, divergence folded
    /// in as `All` (§4.1).
    pub fn predicted_set(&self, e: &Expr, data: &DataEnv) -> ExnSet {
        self.effect_of(e, data).predicted()
    }

    /// The summary for a top-level binding, if it has one.
    pub fn summary(&self, g: Symbol) -> Option<&Summary> {
        self.summaries.get(&g)
    }

    /// An expression-level [`Analyzer`] over these summaries, for
    /// consumers that track their own local scopes.
    pub fn analyzer<'a>(&'a self, data: &'a DataEnv) -> Analyzer<'a> {
        Analyzer {
            data,
            summaries: &self.summaries,
        }
    }

    /// Exports the summaries in *binding order* — the same program order
    /// `urk-machine`'s `compile_program` assigns global indices in — so a
    /// tier-2 optimiser can index facts by global number. Shadowed names
    /// repeat the surviving summary (their earlier entries are dead code
    /// in the compiled image anyway). Known constants are only exported
    /// for arity-0 bindings: a lambda's "value" is not a literal.
    pub fn binding_facts(&self, binds: &[(Symbol, Rc<Expr>)]) -> Vec<BindingFact> {
        binds
            .iter()
            .map(|(name, _)| {
                let Some(s) = self.summaries.get(name) else {
                    return BindingFact {
                        name: *name,
                        arity: 0,
                        whnf_safe: false,
                        must_raise: false,
                        val: None,
                        demands: Vec::new(),
                    };
                };
                BindingFact {
                    name: *name,
                    arity: s.arity,
                    whnf_safe: s.body_effect.whnf_safe(),
                    must_raise: s.body_effect.must_raise,
                    val: if s.arity == 0 {
                        s.body_effect.val.clone()
                    } else {
                        None
                    },
                    demands: s.demands.clone(),
                }
            })
            .collect()
    }
}

/// One binding's facts in positional (global-index) form, for consumers
/// that address code by index instead of name — see
/// [`Analysis::binding_facts`].
#[derive(Clone, Debug, PartialEq)]
pub struct BindingFact {
    /// The binding's name (diagnostics; position carries the identity).
    pub name: Symbol,
    /// Manifest arity of the right-hand side.
    pub arity: usize,
    /// Forcing the binding to WHNF provably cannot raise or diverge.
    pub whnf_safe: bool,
    /// Forcing the binding certainly raises (or diverges).
    pub must_raise: bool,
    /// Known WHNF constant, for arity-0 bindings only.
    pub val: Option<Val>,
    /// Must-demand per parameter (see [`Summary::demands`]); empty for
    /// bindings without a summary.
    pub demands: Vec<bool>,
}

/// Analyse a whole binding group.
pub fn analyze_program(prog: &CoreProgram, data: &DataEnv) -> Analysis {
    // Peel manifest lambdas: (name, params, body).
    let peeled: Vec<(Symbol, Vec<Symbol>, Rc<Expr>)> = prog
        .binds
        .iter()
        .map(|(name, rhs)| {
            let mut params = Vec::new();
            let mut body = rhs.clone();
            while let Expr::Lam(x, b) = &*body {
                params.push(*x);
                body = b.clone();
            }
            (*name, params, body)
        })
        .collect();

    let index: HashMap<Symbol, usize> = peeled
        .iter()
        .enumerate()
        .map(|(i, (n, _, _))| (*n, i))
        .collect();

    // Consultation graph: g → h for every binding h free in g's rhs.
    let succs: Vec<Vec<usize>> = prog
        .binds
        .iter()
        .map(|(_, rhs)| {
            rhs.free_vars()
                .iter()
                .filter_map(|v| index.get(v).copied())
                .collect()
        })
        .collect();

    // Pin everything on a cycle (self-reachable) to bottom.
    let mut recursive: HashSet<Symbol> = HashSet::new();
    for (i, (name, _, _)) in peeled.iter().enumerate() {
        if self_reachable(i, &succs) {
            recursive.insert(*name);
        }
    }

    let mut summaries: HashMap<Symbol, Summary> = HashMap::new();
    for (name, params, body) in &peeled {
        if recursive.contains(name) {
            summaries.insert(
                *name,
                Summary {
                    arity: params.len(),
                    body_effect: Effect::bottom(),
                    uses: vec![true; params.len()],
                    // A must-property cannot be discovered optimistically
                    // on a cycle: pinned to all-false, which is always
                    // sound.
                    demands: vec![false; params.len()],
                },
            );
        } else {
            let fv = body.free_vars();
            summaries.insert(
                *name,
                Summary {
                    arity: params.len(),
                    body_effect: Effect::pure(),
                    uses: params.iter().map(|p| fv.contains(p)).collect(),
                    // Pessimistic start: demand grows monotonically as the
                    // rounds fill in callee demands (false stays sound).
                    demands: vec![false; params.len()],
                },
            );
        }
    }

    // Mycroft rounds over the (acyclic) remainder. Convergence within the
    // graph depth; the cap is defensive only.
    let max_rounds = peeled.len().max(8);
    let mut rounds = 0;
    let mut stable = false;
    while rounds < max_rounds && !stable {
        rounds += 1;
        let mut next: Vec<(Symbol, Effect, Vec<bool>)> = Vec::new();
        {
            let an = Analyzer {
                data,
                summaries: &summaries,
            };
            for (name, params, body) in &peeled {
                if recursive.contains(name) {
                    continue;
                }
                let mut env: Vec<(Symbol, Effect)> =
                    params.iter().map(|p| (*p, Effect::opaque_arg())).collect();
                let be = an.effect(body, &mut env).normalize();
                let dset = an.demanded(body, &mut Vec::new(), params);
                let demands: Vec<bool> = params.iter().map(|p| dset.contains(p)).collect();
                next.push((*name, be, demands));
            }
        }
        stable = true;
        for (name, be, demands) in next {
            let slot = summaries.get_mut(&name).expect("summary exists");
            if slot.body_effect != be || slot.demands != demands {
                stable = false;
                slot.body_effect = be;
                slot.demands = demands;
            }
        }
    }
    if !stable {
        // Defensive fallback (unreachable for an acyclic graph): keep
        // only sound answers.
        for (name, params, _) in &peeled {
            if !recursive.contains(name) {
                recursive.insert(*name);
                let slot = summaries.get_mut(name).expect("summary exists");
                slot.body_effect = Effect::bottom();
                slot.uses = vec![true; params.len()];
                slot.demands = vec![false; params.len()];
            }
        }
    }

    Analysis {
        summaries,
        recursive,
        rounds,
    }
}

/// Is node `i` on a cycle (reachable from itself)?
fn self_reachable(i: usize, succs: &[Vec<usize>]) -> bool {
    let mut seen = vec![false; succs.len()];
    let mut stack: Vec<usize> = succs[i].clone();
    while let Some(j) = stack.pop() {
        if j == i {
            return true;
        }
        if !seen[j] {
            seen[j] = true;
            stack.extend(succs[j].iter().copied());
        }
    }
    false
}

/// Local environments: a scoped stack, innermost binding last.
pub type LEnv = Vec<(Symbol, Effect)>;

/// The abstract evaluator proper, reusable by consumers (the
/// optimizer's licensed rewrites, the linter) that need effects for
/// subexpressions under their own scope discipline.
pub struct Analyzer<'a> {
    pub(crate) data: &'a DataEnv,
    pub(crate) summaries: &'a HashMap<Symbol, Summary>,
}

impl Analyzer<'_> {
    /// Effect of forcing `e` to WHNF under `env`.
    pub fn effect(&self, e: &Expr, env: &mut LEnv) -> Effect {
        match e {
            Expr::Var(x) => self.var_effect(*x, env),
            Expr::Int(n) => Effect::of_val(Val::Int(*n)),
            Expr::Char(c) => Effect::of_val(Val::Char(*c)),
            Expr::Str(s) => Effect::of_val(Val::Str(s.clone())),
            // Constructors are lazy and never propagate argument
            // exceptions (§4.2).
            Expr::Con(c, _) => Effect::of_val(Val::Con(*c)),
            // A lambda is a normal value: `\x.⊥ ≠ ⊥` (§4.2).
            Expr::Lam(_, _) => Effect::pure(),
            Expr::App(_, _) => self.app_effect(e, env),
            Expr::Let(x, r, b) => {
                let re = self.effect(r, env);
                env.push((*x, re));
                let out = self.effect(b, env);
                env.pop();
                out
            }
            Expr::LetRec(binds, b) => {
                for (x, _) in binds {
                    env.push((*x, Effect::bottom()));
                }
                let out = self.effect(b, env);
                env.truncate(env.len() - binds.len());
                out
            }
            Expr::Case(s, alts) => self.case_effect(s, alts, env),
            Expr::Prim(op, args) => self.prim_effect(*op, args, env),
            Expr::Raise(inner) => self.raise_effect(inner, env),
        }
    }

    fn var_effect(&self, x: Symbol, env: &LEnv) -> Effect {
        if let Some((_, e)) = env.iter().rev().find(|(y, _)| *y == x) {
            return e.clone();
        }
        match self.summaries.get(&x) {
            // A function-valued global is a manifest lambda: WHNF-safe.
            Some(s) if s.arity > 0 => Effect::pure(),
            // A CAF: forcing it runs the body.
            Some(s) => s.body_effect.clone(),
            // Open term / unknown global: anything can happen.
            None => Effect::bottom(),
        }
    }

    fn app_effect(&self, e: &Expr, env: &mut LEnv) -> Effect {
        // Flatten the application spine.
        let mut rev_args: Vec<&Rc<Expr>> = Vec::new();
        let mut head = e;
        while let Expr::App(f, a) = head {
            rev_args.push(a);
            head = f;
        }
        let args: Vec<&Rc<Expr>> = rev_args.into_iter().rev().collect();

        // Manifest lambda head: bind the arguments lazily, like `let`.
        // All argument effects are computed in the *outer* scope first.
        if matches!(head, Expr::Lam(_, _)) {
            let arg_effs: Vec<Effect> = args.iter().map(|a| self.effect(a, env)).collect();
            let mut cur = head;
            let mut bound = 0;
            while bound < arg_effs.len() {
                let Expr::Lam(x, b) = cur else { break };
                env.push((*x, arg_effs[bound].clone()));
                bound += 1;
                cur = b;
            }
            let mut out = if bound == arg_effs.len() && matches!(cur, Expr::Lam(_, _)) {
                Effect::pure() // partially applied: a function value remains
            } else {
                self.effect(cur, env)
            };
            for ae in &arg_effs[bound..] {
                out = app_unknown(&out, ae);
            }
            env.truncate(env.len() - bound);
            return out.normalize();
        }

        let Expr::Var(f) = head else {
            // Some other head shape (case/let/...): force it, then apply
            // the unknown result.
            let mut out = self.effect(head, env);
            for a in &args {
                let ae = self.effect(a, env);
                out = app_unknown(&out, &ae);
            }
            return out.normalize();
        };

        // Locally-bound heads shadow globals.
        if let Some((_, local)) = env.iter().rev().find(|(y, _)| *y == *f) {
            let mut out = local.clone();
            for a in &args {
                let ae = self.effect(a, env);
                out = app_unknown(&out, &ae);
            }
            return out.normalize();
        }

        let Some(sum) = self.summaries.get(f) else {
            return Effect::bottom(); // unknown function
        };
        if args.len() < sum.arity {
            return Effect::pure(); // partial application is a value
        }
        let arg_effs: Vec<Effect> = args.iter().map(|a| self.effect(a, env)).collect();
        let mut out = saturated_call(sum, &arg_effs[..sum.arity]);
        for ae in &arg_effs[sum.arity..] {
            out = app_unknown(&out, ae);
        }
        out.normalize()
    }

    fn case_effect(&self, s: &Rc<Expr>, alts: &[Alt], env: &mut LEnv) -> Effect {
        let se = self.effect(s, env);

        // Known scrutinee (whnf-safe by the `val` invariant): select the
        // matching alternative statically.
        if let Some(v) = se.val.clone() {
            for alt in alts {
                if alt_matches(&v, &alt.con) {
                    let bound = self.bind_alt(alt, &se, env);
                    let out = self.effect(&alt.rhs, env);
                    env.truncate(env.len() - bound);
                    return out;
                }
            }
            return pmf_effect();
        }

        // General form: the scrutinee's set unions with every
        // alternative's (§4.3's exception-finding mode explores them
        // all), plus a possible PatternMatchFail when coverage is not
        // guaranteed.
        let mut alt_effs: Vec<Effect> = Vec::with_capacity(alts.len());
        for alt in alts {
            let bound = self.bind_alt(alt, &se, env);
            alt_effs.push(self.effect(&alt.rhs, env));
            env.truncate(env.len() - bound);
        }
        let covered = self.covers(alts);
        let mut exns = se.exns.clone();
        let mut diverges = se.diverges;
        let mut opaque = se.opaque;
        for ae in &alt_effs {
            exns = exns.union(&ae.exns);
            diverges = diverges || ae.diverges;
            opaque = opaque || ae.opaque;
        }
        if !covered {
            exns.insert(Exception::PatternMatchFail("case".into()));
        }
        // Every path raises: the scrutinee certainly does, or every
        // alternative does (and a fall-through is a PatternMatchFail).
        let must_raise = se.must_raise || alt_effs.iter().all(|a| a.must_raise);
        let val = match alt_effs.split_first() {
            Some((first, rest))
                if covered && first.val.is_some() && rest.iter().all(|a| a.val == first.val) =>
            {
                first.val.clone()
            }
            _ => None,
        };
        Effect {
            exns,
            diverges,
            must_raise,
            opaque,
            val,
        }
        .normalize()
    }

    /// Push the alternative's binders; returns how many were pushed.
    ///
    /// Constructor fields are unknown (bottom). The default binder is the
    /// forced scrutinee on the normal path but `Bad {}` in
    /// exception-finding mode, so it is only the scrutinee's effect when
    /// that is provably safe — otherwise an opaque stand-in.
    fn bind_alt(&self, alt: &Alt, se: &Effect, env: &mut LEnv) -> usize {
        match &alt.con {
            AltCon::Con(_) => {
                for b in &alt.binders {
                    env.push((*b, Effect::bottom()));
                }
                alt.binders.len()
            }
            AltCon::Default => match alt.binders.first() {
                Some(b) => {
                    let eff = if se.whnf_safe() {
                        se.clone()
                    } else {
                        Effect::opaque_arg()
                    };
                    env.push((*b, eff));
                    1
                }
                None => 0,
            },
            _ => 0, // literal patterns bind nothing
        }
    }

    /// Do the alternatives provably cover every normal scrutinee? True
    /// with a default, or when the constructor patterns exhaust the
    /// constructor family. Literal families are never exhaustive.
    pub fn covers(&self, alts: &[Alt]) -> bool {
        if alts.iter().any(|a| a.con == AltCon::Default) {
            return true;
        }
        let mut cons: Vec<Symbol> = Vec::with_capacity(alts.len());
        for a in alts {
            match &a.con {
                AltCon::Con(c) => cons.push(*c),
                _ => return false,
            }
        }
        let Some(first) = cons.first() else {
            return false;
        };
        match self.data.siblings(*first) {
            Some(family) if !family.is_empty() => family.iter().all(|m| cons.contains(m)),
            _ => false,
        }
    }

    fn prim_effect(&self, op: PrimOp, args: &[Rc<Expr>], env: &mut LEnv) -> Effect {
        match op {
            PrimOp::Seq => {
                let a = self.effect(&args[0], env);
                if a.must_raise {
                    // The second operand is never reached.
                    return Effect { val: None, ..a };
                }
                let b = self.effect(&args[1], env);
                Effect {
                    exns: a.exns.union(&b.exns),
                    diverges: a.diverges || b.diverges,
                    must_raise: b.must_raise,
                    opaque: a.opaque || b.opaque,
                    val: if a.whnf_safe() { b.val.clone() } else { None },
                }
                .normalize()
            }
            // §5.4's pure mapException: identity on safe subjects; an
            // arbitrary exception transformer otherwise.
            PrimOp::MapExn => {
                let subj = self.effect(&args[1], env);
                if subj.whnf_safe() {
                    subj
                } else {
                    Effect::bottom()
                }
            }
            // §5.4: never raises and swallows the subject's exceptions;
            // only forcing a diverging subject shows through.
            PrimOp::UnsafeIsException => {
                let a = self.effect(&args[0], env);
                self.exn_observer(&a, "False", "True")
            }
            PrimOp::UnsafeGetException => {
                let a = self.effect(&args[0], env);
                self.exn_observer(&a, "OK", "Bad")
            }
            _ => self.strict_prim(op, args, env),
        }
    }

    /// Common shape of `unsafeIsException`/`unsafeGetException`: a total
    /// observer whose result constructor is known when the subject is
    /// provably safe (`on_ok`) or provably exceptional (`on_bad`).
    fn exn_observer(&self, a: &Effect, on_ok: &str, on_bad: &str) -> Effect {
        let val = if a.whnf_safe() {
            Some(Val::Con(Symbol::intern(on_ok)))
        } else if a.must_raise && !a.diverges {
            Some(Val::Con(Symbol::intern(on_bad)))
        } else {
            None
        };
        Effect {
            exns: ExnSet::empty(),
            diverges: a.diverges,
            must_raise: false,
            opaque: false,
            val,
        }
        .normalize()
    }

    /// The strict arithmetic / comparison / string primitives: all
    /// operands are forced, then the operator may add its own exceptions
    /// unless constant folding resolves it.
    fn strict_prim(&self, op: PrimOp, args: &[Rc<Expr>], env: &mut LEnv) -> Effect {
        use PrimOp::*;
        let effs: Vec<Effect> = args.iter().map(|a| self.effect(a, env)).collect();
        let mut exns = ExnSet::empty();
        let mut diverges = false;
        let mut must_raise = false;
        let mut opaque = false;
        for a in &effs {
            exns = exns.union(&a.exns);
            diverges = diverges || a.diverges;
            must_raise = must_raise || a.must_raise;
            opaque = opaque || a.opaque;
        }
        let int = |i: usize| match effs.get(i).and_then(|e| e.val.as_ref()) {
            Some(Val::Int(n)) => Some(*n),
            _ => None,
        };
        let chr = |i: usize| match effs.get(i).and_then(|e| e.val.as_ref()) {
            Some(Val::Char(c)) => Some(*c),
            _ => None,
        };
        let st = |i: usize| match effs.get(i).and_then(|e| e.val.as_ref()) {
            Some(Val::Str(s)) => Some(s.clone()),
            _ => None,
        };
        // A fully folded arithmetic operator: `Ok(n)` for an in-range
        // result, `Err(Overflow-or-DivideByZero)` for a certain raise,
        // and `None` when the operands are not known (the caller then
        // adds the operator's possible exceptions).
        let folded: Option<Result<Val, Exception>> = match op {
            Add | Sub | Mul => match (int(0), int(1)) {
                (Some(a), Some(b)) => {
                    let r = match op {
                        Add => a.checked_add(b),
                        Sub => a.checked_sub(b),
                        _ => a.checked_mul(b),
                    };
                    Some(r.map(Val::Int).ok_or(Exception::Overflow))
                }
                _ => None,
            },
            Neg => int(0).map(|a| a.checked_neg().map(Val::Int).ok_or(Exception::Overflow)),
            Div | Mod => match (int(0), int(1)) {
                (_, Some(0)) => Some(Err(Exception::DivideByZero)),
                (Some(n), Some(d)) => {
                    let r = if op == Div {
                        n.checked_div(d)
                    } else {
                        n.checked_rem(d)
                    };
                    Some(r.map(Val::Int).ok_or(Exception::Overflow))
                }
                _ => None,
            },
            IntEq | IntLt | IntLe | IntGt | IntGe => match (int(0), int(1)) {
                (Some(a), Some(b)) => Some(Ok(bool_val(match op {
                    IntEq => a == b,
                    IntLt => a < b,
                    IntLe => a <= b,
                    IntGt => a > b,
                    _ => a >= b,
                }))),
                _ => None,
            },
            CharEq => match (chr(0), chr(1)) {
                (Some(a), Some(b)) => Some(Ok(bool_val(a == b))),
                _ => None,
            },
            StrEq => match (st(0), st(1)) {
                (Some(a), Some(b)) => Some(Ok(bool_val(a == b))),
                _ => None,
            },
            Chr => int(0).map(|n| {
                u32::try_from(n)
                    .ok()
                    .and_then(char::from_u32)
                    .map(Val::Char)
                    .ok_or(Exception::Overflow)
            }),
            _ => None,
        };
        let mut val: Option<Val> = None;
        match folded {
            Some(Ok(v)) => val = Some(v),
            Some(Err(exc)) => {
                must_raise = true;
                exns.insert(exc);
            }
            // Unknown operands: the operator's own exceptions may show up.
            None => match op {
                Add | Sub | Mul | Neg => exns.insert(Exception::Overflow),
                Div | Mod => match int(1) {
                    // A known divisor other than 0 and -1 is total.
                    Some(d) if d != -1 => {}
                    Some(_) => exns.insert(Exception::Overflow),
                    None => {
                        exns.insert(Exception::DivideByZero);
                        exns.insert(Exception::Overflow);
                    }
                },
                Chr => exns.insert(Exception::Overflow),
                // Comparisons, Ord, ShowInt, StrAppend, StrLen, StrEq,
                // CharEq are total.
                _ => {}
            },
        }
        Effect {
            exns,
            diverges,
            must_raise,
            opaque,
            val,
        }
        .normalize()
    }

    fn raise_effect(&self, inner: &Rc<Expr>, env: &mut LEnv) -> Effect {
        let ie = self.effect(inner, env);
        if ie.must_raise {
            // `raise` of an exceptional value propagates it unchanged.
            return Effect { val: None, ..ie };
        }
        // Name the raised exception from the syntax where possible.
        if let Expr::Con(c, cargs) = &**inner {
            match cargs.first() {
                None => {
                    if let Some(exc) = Exception::from_constructor(*c, None) {
                        return raise_of(ExnSet::singleton(exc), false);
                    }
                }
                Some(p) => {
                    let pe = self.effect(p, env);
                    if let Some(Val::Str(s)) = &pe.val {
                        if let Some(exc) = Exception::from_constructor(*c, Some(s.as_ref())) {
                            return raise_of(ExnSet::singleton(exc), false);
                        }
                    }
                    // Unknown payload: any member is possible, and the
                    // payload itself is forced for the conversion.
                    return raise_of(ExnSet::bottom(), pe.diverges);
                }
            }
        }
        if let Some(Val::Con(tag)) = &ie.val {
            if let Some(exc) = Exception::from_constructor(*tag, None) {
                return raise_of(ExnSet::singleton(exc), false);
            }
        }
        raise_of(ExnSet::bottom(), ie.diverges)
    }

    /// The parameters of `params` *certainly demanded* by forcing `e` to
    /// WHNF: an exceptional value in any returned position makes `e`'s
    /// own result exceptional, whichever §3.5 order the machine runs in.
    /// `env` carries let-bound locals with the demand set of their
    /// right-hand sides (forcing the local forces the rhs); any binder
    /// shadows an outer parameter of the same name.
    ///
    /// Under-approximation is the soundness direction: every case that is
    /// not provable returns the empty set.
    pub(crate) fn demanded(
        &self,
        e: &Expr,
        env: &mut Vec<(Symbol, HashSet<Symbol>)>,
        params: &[Symbol],
    ) -> HashSet<Symbol> {
        match e {
            Expr::Var(x) => {
                if let Some((_, d)) = env.iter().rev().find(|(y, _)| *y == *x) {
                    return d.clone();
                }
                if params.contains(x) {
                    return HashSet::from([*x]);
                }
                HashSet::new() // globals never carry a parameter
            }
            // Values: nothing inside is forced.
            Expr::Int(_) | Expr::Char(_) | Expr::Str(_) | Expr::Con(_, _) | Expr::Lam(_, _) => {
                HashSet::new()
            }
            Expr::Let(x, r, b) => {
                let rd = self.demanded(r, env, params);
                env.push((*x, rd));
                let out = self.demanded(b, env, params);
                env.pop();
                out
            }
            Expr::LetRec(binds, b) => {
                for (x, _) in binds {
                    env.push((*x, HashSet::new()));
                }
                let out = self.demanded(b, env, params);
                env.truncate(env.len() - binds.len());
                out
            }
            // The scrutinee is always forced; beyond it, only what every
            // alternative agrees on. An empty alternative list always
            // raises PatternMatchFail, so the result is exceptional
            // regardless of any argument: every parameter vacuously
            // qualifies.
            Expr::Case(s, alts) => {
                let mut out = self.demanded(s, env, params);
                let mut branches: Option<HashSet<Symbol>> = None;
                for alt in alts {
                    let pushed = alt.binders.len();
                    for b in &alt.binders {
                        env.push((*b, HashSet::new()));
                    }
                    let d = self.demanded(&alt.rhs, env, params);
                    env.truncate(env.len() - pushed);
                    branches = Some(match branches {
                        None => d,
                        Some(prev) => prev.intersection(&d).copied().collect(),
                    });
                }
                match branches {
                    Some(b) => out.extend(b),
                    None => out.extend(params.iter().copied()),
                }
                out
            }
            Expr::Prim(op, args) => match op {
                // §5.4: the observers swallow the subject's exception.
                PrimOp::UnsafeIsException | PrimOp::UnsafeGetException => HashSet::new(),
                // mapException transforms the subject's exception but an
                // exceptional subject still yields an exceptional result.
                PrimOp::MapExn => self.demanded(&args[1], env, params),
                // Seq and the strict primitives force every operand; an
                // exceptional operand surfaces whichever §3.5 order runs
                // first (the result is exceptional either way).
                _ => {
                    let mut out = HashSet::new();
                    for a in args {
                        out.extend(self.demanded(a, env, params));
                    }
                    out
                }
            },
            // The result is exceptional no matter what: vacuously demands
            // everything.
            Expr::Raise(_) => params.iter().copied().collect(),
            Expr::App(_, _) => {
                // Only a saturated call to a known global propagates
                // demand through the callee's own demand vector; every
                // other head shape is opaque.
                let mut rev_args: Vec<&Rc<Expr>> = Vec::new();
                let mut head = e;
                while let Expr::App(f, a) = head {
                    rev_args.push(a);
                    head = f;
                }
                let Expr::Var(f) = head else {
                    return HashSet::new();
                };
                if env.iter().any(|(y, _)| *y == *f) || params.contains(f) {
                    return HashSet::new(); // locally-bound head
                }
                let Some(sum) = self.summaries.get(f) else {
                    return HashSet::new();
                };
                if sum.arity == 0 || rev_args.len() < sum.arity {
                    return HashSet::new(); // CAF head or partial application
                }
                // Oversaturation keeps exceptionality (§4.3: Bad(s) a =
                // Bad(s ∪ S(a))), so the saturated prefix's demand stands.
                let args: Vec<&Rc<Expr>> = rev_args.into_iter().rev().collect();
                let mut out = HashSet::new();
                for (i, a) in args.iter().take(sum.arity).enumerate() {
                    if sum.demands.get(i).copied().unwrap_or(false) {
                        out.extend(self.demanded(a, env, params));
                    }
                }
                out
            }
        }
    }
}

fn raise_of(exns: ExnSet, diverges: bool) -> Effect {
    Effect {
        exns,
        diverges,
        must_raise: true,
        opaque: false,
        val: None,
    }
}

fn pmf_effect() -> Effect {
    raise_of(
        ExnSet::singleton(Exception::PatternMatchFail("case".into())),
        false,
    )
}

fn bool_val(b: bool) -> Val {
    Val::Con(Symbol::intern(if b { "True" } else { "False" }))
}

/// Matching a known value against a pattern is fully decidable.
fn alt_matches(v: &Val, con: &AltCon) -> bool {
    match (v, con) {
        (_, AltCon::Default) => true,
        (Val::Con(t), AltCon::Con(c)) => t == c,
        (Val::Int(n), AltCon::Int(m)) => n == m,
        (Val::Char(a), AltCon::Char(b)) => a == b,
        (Val::Str(a), AltCon::Str(b)) => **a == **b,
        _ => false,
    }
}

/// Applying something we cannot see into: `⊥` — unless the head is
/// certainly exceptional, in which case §4.3's application rule applies
/// (`Bad(s) a = Bad(s ∪ S(a))`).
fn app_unknown(f: &Effect, a: &Effect) -> Effect {
    if f.must_raise {
        Effect {
            exns: f.exns.union(&a.exns),
            diverges: f.diverges || a.diverges,
            must_raise: true,
            opaque: f.opaque || a.opaque,
            val: None,
        }
    } else {
        Effect::bottom()
    }
}

/// A saturated call through a summary: the body's effect, plus every
/// *used* argument's. `must_raise` and constants only survive when every
/// used argument is provably safe (an exceptional argument can change
/// which branch the body takes); opacity clears for the same reason when
/// every used argument is safe.
fn saturated_call(sum: &Summary, args: &[Effect]) -> Effect {
    let body = &sum.body_effect;
    let mut exns = body.exns.clone();
    let mut diverges = body.diverges;
    let mut arg_opaque = false;
    let mut all_used_safe = true;
    for (i, a) in args.iter().enumerate() {
        if sum.uses.get(i).copied().unwrap_or(true) {
            exns = exns.union(&a.exns);
            diverges = diverges || a.diverges;
            arg_opaque = arg_opaque || a.opaque;
            all_used_safe = all_used_safe && a.whnf_safe();
        }
    }
    Effect {
        exns,
        diverges,
        must_raise: body.must_raise && all_used_safe,
        opaque: (body.opaque && !all_used_safe) || arg_opaque,
        val: if all_used_safe {
            body.val.clone()
        } else {
            None
        },
    }
    .normalize()
}
