//! The analysis half of tier-2 translation validation: auditing the
//! *facts* a compilation claimed against a freshly recomputed analysis.
//!
//! The machine-side validator (`urk-machine`'s `validate` module) walks
//! the two code arenas and discharges each certificate against a
//! [`Tier2Facts`]-shaped licence — but it has to take that licence as
//! given. This module closes the loop: [`audit_binding_facts`] recomputes
//! the whole-program analysis from the Core program and refuses any
//! claimed [`BindingFact`] that the fresh run does not reproduce, plus
//! any fact violating the lattice's own invariants:
//!
//! * `demands.len()` equals the binding's manifest arity (a demand vector
//!   for parameters that do not exist licenses nothing meaningful);
//! * `demands[i]` implies `uses[i]` — a parameter that is *certainly*
//!   demanded is in particular *possibly* used;
//! * a binding on a recursion cycle claims no demands (the must-property
//!   cannot be discovered optimistically on a cycle, so a non-empty claim
//!   there could only come from a corrupted licence);
//! * a known constant (`val`) is claimed only for WHNF-safe arity-0
//!   bindings — the constant-substitution licence's shape.
//!
//! A compiler fed corrupted facts can emit code the machine validator
//! would accept *if it were fed the same corrupted facts*; auditing the
//! facts against a recomputation makes the pair sound end to end.

use std::rc::Rc;

use urk_syntax::core::CoreProgram;
use urk_syntax::{DataEnv, Symbol};

use crate::analyze::{analyze_program, BindingFact};

/// What the audit proved, for observability and benches.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FactAudit {
    /// Bindings whose claimed facts were reproduced exactly.
    pub bindings: usize,
    /// Parameters proven demanded across all bindings.
    pub demanded_params: usize,
}

/// Why a claimed fact set was refused.
#[derive(Clone, Debug, PartialEq)]
pub struct FactAuditError {
    /// The binding whose claim failed (best-effort; `None` for
    /// shape-level mismatches like a wrong fact count).
    pub binding: Option<Symbol>,
    /// The obligation that could not be discharged.
    pub message: String,
}

impl std::fmt::Display for FactAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.binding {
            Some(b) => write!(f, "fact audit failed for `{b}`: {}", self.message),
            None => write!(f, "fact audit failed: {}", self.message),
        }
    }
}

impl std::error::Error for FactAuditError {}

/// Recomputes the analysis for `prog` and audits `claimed` — the
/// positional facts some earlier compilation consumed — against it.
pub fn audit_binding_facts(
    prog: &CoreProgram,
    data: &DataEnv,
    claimed: &[BindingFact],
) -> Result<FactAudit, FactAuditError> {
    let fresh = analyze_program(prog, data);
    let facts = fresh.binding_facts(&prog.binds);
    if facts.len() != claimed.len() {
        return Err(FactAuditError {
            binding: None,
            message: format!(
                "claimed {} facts for a program with {} bindings",
                claimed.len(),
                facts.len()
            ),
        });
    }
    let mut audit = FactAudit::default();
    for (mine, theirs) in facts.iter().zip(claimed) {
        let err = |message: String| FactAuditError {
            binding: Some(mine.name),
            message,
        };
        if mine != theirs {
            return Err(err(format!(
                "claimed fact is not reproducible: fresh {mine:?} vs claimed {theirs:?}"
            )));
        }
        // Invariants on the (now trusted-by-recomputation) fact itself.
        if !mine.demands.is_empty() && mine.demands.len() != mine.arity {
            return Err(err(format!(
                "demand vector length {} does not match arity {}",
                mine.demands.len(),
                mine.arity
            )));
        }
        if mine.val.is_some() && (mine.arity != 0 || !mine.whnf_safe) {
            return Err(err(
                "constant claimed for a non-WHNF-safe or arity-positive binding".into(),
            ));
        }
        if let Some(s) = fresh.summary(mine.name) {
            for (i, d) in mine.demands.iter().enumerate() {
                if *d && !s.uses.get(i).copied().unwrap_or(false) {
                    return Err(err(format!(
                        "parameter {i} claimed demanded but not even possibly used"
                    )));
                }
            }
        }
        if fresh.recursive.contains(&mine.name) && mine.demands.iter().any(|d| *d) {
            return Err(err(
                "demand claimed on a recursion cycle (must-facts are pinned false there)".into(),
            ));
        }
        audit.bindings += 1;
        audit.demanded_params += mine.demands.iter().filter(|d| **d).count();
    }
    Ok(audit)
}

/// Convenience for callers that hold the binding list but not a
/// `CoreProgram` (mirrors `Analysis::binding_facts`' signature shape).
pub fn audit_binds(
    binds: &[(Symbol, Rc<urk_syntax::core::Expr>)],
    data: &DataEnv,
    claimed: &[BindingFact],
) -> Result<FactAudit, FactAuditError> {
    let prog = CoreProgram {
        binds: binds.to_vec(),
        sigs: Vec::new(),
    };
    audit_binding_facts(&prog, data, claimed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_program;
    use urk_syntax::{desugar_program, parse_program};

    fn setup(src: &str) -> (CoreProgram, DataEnv, Vec<BindingFact>) {
        let mut data = DataEnv::new();
        let prog =
            desugar_program(&parse_program(src).expect("parses"), &mut data).expect("desugars");
        let facts = analyze_program(&prog, &data).binding_facts(&prog.binds);
        (prog, data, facts)
    }

    #[test]
    fn honest_facts_audit_clean() {
        let (prog, data, facts) = setup("k = 42\nsq x = x * x\nmain = sq k");
        let audit = audit_binding_facts(&prog, &data, &facts).expect("audits");
        assert_eq!(audit.bindings, 3);
        assert!(audit.demanded_params >= 1, "{audit:?}");
    }

    #[test]
    fn a_corrupted_constant_is_refused() {
        let (prog, data, mut facts) = setup("k = 42\nmain = k + 1");
        facts[0].val = Some(crate::effect::Val::Int(7));
        let err = audit_binding_facts(&prog, &data, &facts).expect_err("refuses");
        assert!(err.message.contains("not reproducible"), "{err}");
    }

    #[test]
    fn a_forged_demand_is_refused() {
        let (prog, data, mut facts) = setup("konst x y = x\nmain = konst 1 2");
        // `y` is never demanded; forging it would license an unsound Spec.
        facts[0].demands = vec![true, true];
        let err = audit_binding_facts(&prog, &data, &facts).expect_err("refuses");
        assert!(err.message.contains("not reproducible"), "{err}");
    }

    #[test]
    fn recursive_bindings_never_claim_demands() {
        let (prog, data, facts) = setup("loop x = loop x\nmain = 1");
        assert!(facts[0].demands.iter().all(|d| !*d));
        audit_binding_facts(&prog, &data, &facts).expect("audits");
    }
}
