//! The denotational evaluator for the *imprecise* semantics — a direct
//! transcription of the equations of §4.2–§4.3:
//!
//! * `[[e1 (+) e2]] = v1 ⊕ v2` when both normal, else
//!   `Bad (S[[e1]] ∪ S[[e2]])`;
//! * application of an exceptional function unions in the *argument's*
//!   exceptions (`Bad (s ∪ S[[e2]])`) so strictness-analysis-driven
//!   evaluation-order changes stay sound, but application of a normal
//!   function does not (so beta reduction survives — `(\x.3)(1/0) = 3`);
//! * `case` with an exceptional scrutinee evaluates every alternative in
//!   *exception-finding mode* (pattern variables bound to `Bad {}`) and
//!   unions the resulting sets;
//! * `raise` injects a singleton set;
//! * `fix` (here: `letrec`) denotes the limit of the ascending Kleene
//!   chain; the evaluator computes a fuel-indexed approximant from below,
//!   so running out of fuel yields `⊥` and more fuel can only move the
//!   result *up* in the `⊑` order (verified by the fuel-monotonicity
//!   property tests).
//!
//! Evaluation is lazy (call-by-need over memoizing [`DThunk`]s), so
//! exceptional values hide inside data structures exactly as §3.2
//! describes.

use std::cell::Cell;
use std::rc::Rc;

use urk_syntax::core::{Alt, AltCon, Expr, PrimOp};
use urk_syntax::{DataEnv, Exception, Symbol};

use crate::domain::{Closure, DThunk, Denot, Env, Thunk, ThunkState, Value};
use crate::exnset::ExnSet;

/// Tunables for the denotational evaluator.
#[derive(Clone, Debug)]
pub struct DenotConfig {
    /// Evaluation fuel; exhausting it yields the approximant `⊥`.
    pub fuel: u64,
    /// Maximum recursion depth (a host-stack guard); exceeding it also
    /// yields `⊥`.
    pub max_depth: u32,
    /// Selects the pessimistic rather than optimistic denotation for
    /// `unsafeIsException` (§5.4).
    pub pessimistic_is_exception: bool,
}

impl Default for DenotConfig {
    fn default() -> DenotConfig {
        DenotConfig {
            fuel: 1_000_000,
            max_depth: 600,
            pessimistic_is_exception: false,
        }
    }
}

/// The imprecise denotational evaluator.
///
/// # Panics
///
/// The evaluator panics on dynamically ill-typed programs (applying an
/// integer, adding a list, ...). Run [`urk_types::infer_program`] first;
/// every public pipeline in the `urk` crate does.
///
/// [`urk_types::infer_program`]: ../../urk_types/fn.infer_program.html
pub struct DenotEvaluator<'a> {
    data: &'a DataEnv,
    config: DenotConfig,
    fuel: Cell<u64>,
    depth: Cell<u32>,
}

impl<'a> DenotEvaluator<'a> {
    /// Creates an evaluator with the default configuration.
    pub fn new(data: &'a DataEnv) -> DenotEvaluator<'a> {
        DenotEvaluator::with_config(data, DenotConfig::default())
    }

    /// Creates an evaluator with an explicit configuration.
    pub fn with_config(data: &'a DataEnv, config: DenotConfig) -> DenotEvaluator<'a> {
        let fuel = config.fuel;
        DenotEvaluator {
            data,
            config,
            fuel: Cell::new(fuel),
            depth: Cell::new(0),
        }
    }

    /// Remaining fuel (diagnostics; also used by tests to measure cost).
    pub fn fuel_left(&self) -> u64 {
        self.fuel.get()
    }

    /// Resets fuel and depth so the evaluator can be reused.
    pub fn refill(&self) {
        self.fuel.set(self.config.fuel);
        self.depth.set(0);
    }

    /// Evaluates a closed expression.
    pub fn eval_closed(&self, e: &Rc<Expr>) -> Denot {
        self.eval(e, &Env::empty())
    }

    /// Evaluates `e` in `env` to a denotation (WHNF-deep only; constructor
    /// fields stay lazy).
    pub fn eval(&self, e: &Rc<Expr>, env: &Env) -> Denot {
        // Fuel and depth guards: both approximate from below by ⊥.
        let f = self.fuel.get();
        if f == 0 {
            return Denot::bottom();
        }
        self.fuel.set(f - 1);
        let d = self.depth.get();
        if d >= self.config.max_depth {
            return Denot::bottom();
        }
        self.depth.set(d + 1);
        let result = self.eval_inner(e, env);
        self.depth.set(self.depth.get() - 1);
        result
    }

    fn eval_inner(&self, e: &Rc<Expr>, env: &Env) -> Denot {
        match &**e {
            Expr::Var(v) => {
                let t = env
                    .lookup(*v)
                    .unwrap_or_else(|| panic!("unbound variable '{v}' reached the evaluator"));
                self.force(&t)
            }
            Expr::Int(n) => Denot::Ok(Value::Int(*n)),
            Expr::Char(c) => Denot::Ok(Value::Char(*c)),
            Expr::Str(s) => Denot::Ok(Value::Str(s.clone())),
            Expr::Con(c, args) => {
                let fields = args
                    .iter()
                    .map(|a| Thunk::pending(a.clone(), env.clone()))
                    .collect();
                Denot::Ok(Value::Con(*c, fields))
            }
            Expr::Lam(x, b) => Denot::Ok(Value::Fun(Rc::new(Closure {
                param: *x,
                body: b.clone(),
                env: env.clone(),
            }))),
            Expr::App(f, x) => {
                let df = self.eval(f, env);
                match df {
                    Denot::Ok(Value::Fun(clo)) => {
                        let arg = Thunk::pending(x.clone(), env.clone());
                        self.apply(&clo, arg)
                    }
                    Denot::Ok(other) => {
                        panic!("application of a non-function value {other:?} (ill-typed program)")
                    }
                    // §4.2: an exceptional function unions in the
                    // argument's exceptions, licensing call-by-value for
                    // strict functions.
                    Denot::Bad(s) => {
                        let dx = self.eval(x, env);
                        Denot::Bad(s.union(&dx.exn_part()))
                    }
                }
            }
            Expr::Let(x, rhs, body) => {
                let t = Thunk::pending(rhs.clone(), env.clone());
                self.eval(body, &env.bind(*x, t))
            }
            Expr::LetRec(binds, body) => {
                let env2 = self.bind_recursive(binds, env);
                self.eval(body, &env2)
            }
            Expr::Case(scrut, alts) => self.eval_case(scrut, alts, env),
            Expr::Prim(op, args) => self.eval_prim(*op, args, env),
            Expr::Raise(x) => {
                let dx = self.eval(x, env);
                match dx {
                    Denot::Bad(s) => Denot::Bad(s),
                    Denot::Ok(v) => match self.value_to_exception(&v) {
                        Ok(exn) => Denot::Bad(ExnSet::singleton(exn)),
                        Err(s) => Denot::Bad(s),
                    },
                }
            }
        }
    }

    /// Builds the cyclic environment for a recursive group.
    pub fn bind_recursive(&self, binds: &[(Symbol, Rc<Expr>)], env: &Env) -> Env {
        // Allocate the thunks first (with a placeholder environment), build
        // the extended environment containing them, then retie the knot.
        let thunks: Vec<DThunk> = binds
            .iter()
            .map(|(_, rhs)| Thunk::pending(rhs.clone(), Env::empty()))
            .collect();
        let mut env2 = env.clone();
        for ((name, _), t) in binds.iter().zip(&thunks) {
            env2 = env2.bind(*name, t.clone());
        }
        for ((_, rhs), t) in binds.iter().zip(&thunks) {
            *t.state.borrow_mut() = ThunkState::Pending(rhs.clone(), env2.clone());
        }
        env2
    }

    /// Forces a thunk to a denotation, memoizing the result. Re-entrant
    /// forcing (a directly self-referential value such as `black = black +
    /// 1`) is `⊥`.
    pub fn force(&self, t: &DThunk) -> Denot {
        let pending = {
            let state = t.state.borrow();
            match &*state {
                ThunkState::Done(d) => return d.clone(),
                ThunkState::Evaluating => return Denot::bottom(),
                ThunkState::Pending(e, env) => (e.clone(), env.clone()),
            }
        };
        *t.state.borrow_mut() = ThunkState::Evaluating;
        let d = self.eval(&pending.0, &pending.1);
        *t.state.borrow_mut() = ThunkState::Done(d.clone());
        d
    }

    /// Applies a closure to an argument thunk.
    pub fn apply(&self, clo: &Closure, arg: DThunk) -> Denot {
        let env = clo.env.bind(clo.param, arg);
        self.eval(&clo.body, &env)
    }

    /// Applies a denotation (expected to be a function) to a thunk,
    /// following the §4.2 application rule.
    pub fn apply_denot(&self, f: &Denot, arg: DThunk) -> Denot {
        match f {
            Denot::Ok(Value::Fun(clo)) => self.apply(clo, arg),
            Denot::Ok(other) => {
                panic!("application of a non-function value {other:?} (ill-typed program)")
            }
            Denot::Bad(s) => {
                let da = self.force(&arg);
                Denot::Bad(s.union(&da.exn_part()))
            }
        }
    }

    // ------------------------------------------------------------------
    // case (§4.3)
    // ------------------------------------------------------------------

    fn eval_case(&self, scrut: &Rc<Expr>, alts: &[Alt], env: &Env) -> Denot {
        let ds = self.eval(scrut, env);
        match ds {
            Denot::Ok(v) => {
                for alt in alts {
                    if let Some(env2) = self.match_alt(alt, &v, env) {
                        return self.eval(&alt.rhs, &env2);
                    }
                }
                Denot::Bad(ExnSet::singleton(Exception::PatternMatchFail(
                    "case".into(),
                )))
            }
            // Exception-finding mode: the semantics "must explore all the
            // ways in which the implementation might deliver an exception",
            // binding pattern variables to the strange value Bad {}.
            Denot::Bad(s) => {
                let mut out = s;
                for alt in alts {
                    let mut env2 = env.clone();
                    for b in &alt.binders {
                        env2 = env2.bind(*b, Thunk::bad_empty());
                    }
                    let d = self.eval(&alt.rhs, &env2);
                    out = out.union(&d.exn_part());
                }
                Denot::Bad(out)
            }
        }
    }

    /// Tries to match one alternative; returns the extended environment.
    fn match_alt(&self, alt: &Alt, v: &Value, env: &Env) -> Option<Env> {
        match (&alt.con, v) {
            // A default alternative may carry one binder for the (already
            // forced) scrutinee — the shape the let-to-case transformation
            // produces.
            (AltCon::Default, _) => {
                let mut env2 = env.clone();
                if let Some(b) = alt.binders.first() {
                    env2 = env2.bind(*b, Thunk::done(Denot::Ok(v.clone())));
                }
                Some(env2)
            }
            (AltCon::Int(n), Value::Int(m)) if n == m => Some(env.clone()),
            (AltCon::Char(a), Value::Char(b)) if a == b => Some(env.clone()),
            (AltCon::Str(a), Value::Str(b)) if **a == **b => Some(env.clone()),
            (AltCon::Con(c), Value::Con(d, fields)) if c == d => {
                debug_assert_eq!(alt.binders.len(), fields.len());
                let mut env2 = env.clone();
                for (b, f) in alt.binders.iter().zip(fields) {
                    env2 = env2.bind(*b, f.clone());
                }
                Some(env2)
            }
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Primitive operations (§4.2's (+) family and friends)
    // ------------------------------------------------------------------

    fn eval_prim(&self, op: PrimOp, args: &[Rc<Expr>], env: &Env) -> Denot {
        match op {
            PrimOp::Seq => {
                let d0 = self.eval(&args[0], env);
                match d0 {
                    Denot::Ok(_) => self.eval(&args[1], env),
                    Denot::Bad(s) => Denot::Bad(s),
                }
            }
            PrimOp::MapExn => self.eval_map_exn(&args[0], &args[1], env),
            PrimOp::UnsafeIsException => {
                let d = self.eval(&args[0], env);
                match d {
                    Denot::Ok(_) => Denot::Ok(bool_value(false)),
                    Denot::Bad(s) => {
                        if self.config.pessimistic_is_exception && s.may_diverge() {
                            Denot::bottom()
                        } else {
                            Denot::Ok(bool_value(true))
                        }
                    }
                }
            }
            PrimOp::UnsafeGetException => {
                let d = self.eval(&args[0], env);
                match d {
                    Denot::Ok(v) => Denot::Ok(Value::Con(
                        Symbol::intern("OK"),
                        vec![Thunk::done(Denot::Ok(v))],
                    )),
                    Denot::Bad(s) => match s.some_member() {
                        // A deterministic (least-member) choice; the §6
                        // proof obligation is that this choice is moot.
                        Some(exn) => {
                            let inner = Thunk::done(Denot::Ok(self.exception_to_value(&exn)));
                            Denot::Ok(Value::Con(Symbol::intern("Bad"), vec![inner]))
                        }
                        // Bad {} is not denotable; All (⊥) stays ⊥.
                        None => Denot::bottom(),
                    },
                }
            }
            _ if op.arity() == 1 => {
                let d = self.eval(&args[0], env);
                match d {
                    Denot::Ok(v) => self.prim_unary(op, &v),
                    Denot::Bad(s) => Denot::Bad(s),
                }
            }
            _ => {
                // The (+) rule: both arguments evaluated; exception sets
                // unioned when either is exceptional. The *order* in which
                // we evaluate them here is irrelevant — both sets always
                // participate — which is the whole point of the design.
                let d1 = self.eval(&args[0], env);
                let d2 = self.eval(&args[1], env);
                match (&d1, &d2) {
                    (Denot::Ok(v1), Denot::Ok(v2)) => self.prim_binary(op, v1, v2),
                    _ => Denot::Bad(d1.exn_part().union(&d2.exn_part())),
                }
            }
        }
    }

    fn prim_unary(&self, op: PrimOp, v: &Value) -> Denot {
        match (op, v) {
            (PrimOp::Neg, Value::Int(n)) => match n.checked_neg() {
                Some(m) => Denot::Ok(Value::Int(m)),
                None => Denot::Bad(ExnSet::singleton(Exception::Overflow)),
            },
            (PrimOp::ShowInt, Value::Int(n)) => {
                Denot::Ok(Value::Str(Rc::from(n.to_string().as_str())))
            }
            (PrimOp::StrLen, Value::Str(s)) => Denot::Ok(Value::Int(s.chars().count() as i64)),
            (PrimOp::Ord, Value::Char(c)) => Denot::Ok(Value::Int(*c as i64)),
            (PrimOp::Chr, Value::Int(n)) => match u32::try_from(*n).ok().and_then(char::from_u32) {
                Some(c) => Denot::Ok(Value::Char(c)),
                None => Denot::Bad(ExnSet::singleton(Exception::Overflow)),
            },
            _ => panic!("ill-typed unary primop {op:?} on {v:?}"),
        }
    }

    fn prim_binary(&self, op: PrimOp, v1: &Value, v2: &Value) -> Denot {
        use PrimOp::*;
        let int = |n: Option<i64>| match n {
            Some(n) => Denot::Ok(Value::Int(n)),
            None => Denot::Bad(ExnSet::singleton(Exception::Overflow)),
        };
        match (op, v1, v2) {
            (Add, Value::Int(a), Value::Int(b)) => int(a.checked_add(*b)),
            (Sub, Value::Int(a), Value::Int(b)) => int(a.checked_sub(*b)),
            (Mul, Value::Int(a), Value::Int(b)) => int(a.checked_mul(*b)),
            (Div, Value::Int(_), Value::Int(0)) => {
                Denot::Bad(ExnSet::singleton(Exception::DivideByZero))
            }
            (Div, Value::Int(a), Value::Int(b)) => int(a.checked_div(*b)),
            (Mod, Value::Int(_), Value::Int(0)) => {
                Denot::Bad(ExnSet::singleton(Exception::DivideByZero))
            }
            (Mod, Value::Int(a), Value::Int(b)) => int(a.checked_rem(*b)),
            (IntEq, Value::Int(a), Value::Int(b)) => Denot::Ok(bool_value(a == b)),
            (IntLt, Value::Int(a), Value::Int(b)) => Denot::Ok(bool_value(a < b)),
            (IntLe, Value::Int(a), Value::Int(b)) => Denot::Ok(bool_value(a <= b)),
            (IntGt, Value::Int(a), Value::Int(b)) => Denot::Ok(bool_value(a > b)),
            (IntGe, Value::Int(a), Value::Int(b)) => Denot::Ok(bool_value(a >= b)),
            (CharEq, Value::Char(a), Value::Char(b)) => Denot::Ok(bool_value(a == b)),
            (StrEq, Value::Str(a), Value::Str(b)) => Denot::Ok(bool_value(a == b)),
            (StrAppend, Value::Str(a), Value::Str(b)) => {
                Denot::Ok(Value::Str(Rc::from(format!("{a}{b}").as_str())))
            }
            _ => panic!("ill-typed binary primop {op:?}"),
        }
    }

    /// §5.4: `mapException f e` applies `f` to every member of the
    /// exception set of `e`; normal values pass through untouched and `f`
    /// is never forced for them.
    fn eval_map_exn(&self, f: &Rc<Expr>, e: &Rc<Expr>, env: &Env) -> Denot {
        let de = self.eval(e, env);
        let Denot::Bad(s) = de else {
            return de;
        };
        // ⊥ maps to ⊥: "all exceptions" cannot be enumerated, and a
        // divergent argument stays divergent.
        let Some(members) = s.members() else {
            return Denot::bottom();
        };
        let df = self.eval(f, env);
        let mut out = ExnSet::empty();
        for exn in members {
            let arg = Thunk::done(Denot::Ok(self.exception_to_value(&exn)));
            let r = self.apply_denot(&df, arg);
            match r {
                Denot::Bad(s2) => out = out.union(&s2),
                Denot::Ok(v) => match self.value_to_exception(&v) {
                    Ok(exn2) => out.insert(exn2),
                    Err(s2) => out = out.union(&s2),
                },
            }
        }
        Denot::Bad(out)
    }

    // ------------------------------------------------------------------
    // Exception <-> value conversions
    // ------------------------------------------------------------------

    /// Converts an in-language `Exception` constructor value to the runtime
    /// [`Exception`]. Forcing a string payload may itself be exceptional;
    /// in that case the payload's exception set is returned as `Err`.
    pub fn value_to_exception(&self, v: &Value) -> Result<Exception, ExnSet> {
        let Value::Con(name, fields) = v else {
            panic!("raise applied to a non-Exception value {v:?} (ill-typed program)");
        };
        let payload = match fields.first() {
            None => None,
            Some(t) => match self.force(t) {
                Denot::Ok(Value::Str(s)) => Some(s.to_string()),
                Denot::Ok(other) => {
                    panic!("exception payload is not a string: {other:?} (ill-typed program)")
                }
                Denot::Bad(s) => return Err(s),
            },
        };
        Exception::from_constructor(*name, payload.as_deref())
            .ok_or_else(|| panic!("unknown exception constructor '{name}'"))
    }

    /// Converts a runtime [`Exception`] back into an in-language value (as
    /// `getException` and `mapException` must).
    pub fn exception_to_value(&self, e: &Exception) -> Value {
        let name = e.constructor_symbol();
        let info = self.data.con(name);
        debug_assert!(info.is_some(), "Exception constructors are built in");
        match e.payload() {
            None => Value::Con(name, vec![]),
            Some(s) => Value::Con(name, vec![Thunk::done(Denot::Ok(Value::Str(Rc::from(s))))]),
        }
    }
}

/// Builds the Boolean constructor values.
pub fn bool_value(b: bool) -> Value {
    Value::Con(Symbol::intern(if b { "True" } else { "False" }), vec![])
}
