//! The **non-deterministic** baseline — §3.4's second rejected design.
//!
//! Here `+` makes a non-deterministic choice of which argument to evaluate
//! first, and `getException` is a *pure* function. The price, as the paper
//! explains, is that beta reduction (and let-inlining) become invalid: in
//!
//! ```text
//! let x = (1/0) + error "Urk" in getException x == getException x
//! ```
//!
//! the shared `x` is evaluated once, so both `getException`s see the same
//! exception and the expression is `True`; but after substituting `x`'s
//! right-hand side for both occurrences, the two evaluations may choose
//! *different* orders and the expression can also be `False`.
//!
//! [`enumerate_outcomes`] runs the oracle-driven precise evaluator over
//! every decision tape (schedule exploration, bounded by
//! `max_decisions`) and returns the set of observable outcomes, which is
//! exactly the evidence the law validator needs.

use std::collections::BTreeSet;
use std::rc::Rc;

use urk_syntax::core::Expr;

use crate::precise::{PreciseConfig, PreciseEvaluator};

/// Configuration for outcome enumeration.
#[derive(Clone, Debug)]
pub struct NondetConfig {
    /// Underlying evaluator configuration (its `oracle_driven` flag is
    /// forced on).
    pub precise: PreciseConfig,
    /// Upper bound on oracle decisions explored per run; runs that consume
    /// more are truncated (remaining decisions default to "left first").
    pub max_decisions: usize,
    /// Structural depth for rendering outcomes.
    pub show_depth: u32,
}

impl Default for NondetConfig {
    fn default() -> NondetConfig {
        NondetConfig {
            precise: PreciseConfig {
                oracle_driven: true,
                ..PreciseConfig::default()
            },
            max_decisions: 12,
            show_depth: 8,
        }
    }
}

/// Runs `expr` under every oracle tape (up to the decision bound) and
/// collects the set of rendered outcomes.
pub fn enumerate_outcomes(expr: &Rc<Expr>, config: &NondetConfig) -> BTreeSet<String> {
    let mut results = BTreeSet::new();
    // Depth-first schedule exploration: run with a prefix (default false
    // beyond it), then fork on every decision the run actually consumed.
    let mut stack: Vec<Vec<bool>> = vec![Vec::new()];
    let mut precise_cfg = config.precise.clone();
    precise_cfg.oracle_driven = true;

    while let Some(prefix) = stack.pop() {
        let ev = PreciseEvaluator::new(precise_cfg.clone());
        ev.set_oracle(prefix.clone());
        let d = ev.eval_closed(expr);
        results.insert(ev.show(&d, config.show_depth));
        let consumed = ev.oracle_decisions().min(config.max_decisions);
        for i in prefix.len()..consumed {
            let mut fork = prefix.clone();
            fork.extend(std::iter::repeat_n(false, i - prefix.len()));
            fork.push(true);
            stack.push(fork);
        }
    }
    results
}

/// True if the two expressions have the same *outcome set* — equality in
/// the non-deterministic design's natural observational semantics.
pub fn same_outcome_sets(e1: &Rc<Expr>, e2: &Rc<Expr>, config: &NondetConfig) -> bool {
    enumerate_outcomes(e1, config) == enumerate_outcomes(e2, config)
}
