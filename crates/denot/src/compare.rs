//! Refinement comparison of denotations — the machinery behind the §4.5
//! law tables.
//!
//! The paper argues that transformations should be *identities or
//! refinements*: `lhs ⊑ rhs` means the transformation only increases
//! information (shrinks exception sets). [`compare_denots`] decides, to a
//! given structural depth, which of the four relationships holds.
//!
//! Function values cannot be compared extensionally; they are probed with
//! distinctively marked exceptional arguments (`Bad {}`, marked singletons
//! and `⊥`), which is sound for the ground-typed law corpus in this
//! repository but approximate in general — see `DESIGN.md`.

use std::fmt;

use urk_syntax::Exception;

use crate::domain::{Denot, Thunk, Value};
use crate::eval::DenotEvaluator;
use crate::exnset::ExnSet;

/// The outcome of comparing two denotations under `⊑`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// `lhs = rhs` (to the probed depth).
    Equal,
    /// `lhs ⊑ rhs` strictly: the rhs is more defined (fewer exceptions).
    LeftRefinesToRight,
    /// `rhs ⊑ lhs` strictly.
    RightRefinesToLeft,
    /// Neither ordering holds.
    Incomparable,
}

impl Verdict {
    /// True if replacing lhs by rhs is semantics-preserving-or-improving
    /// (the paper's criterion for a legitimate transformation).
    pub fn is_valid_rewrite(self) -> bool {
        matches!(self, Verdict::Equal | Verdict::LeftRefinesToRight)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Equal => "identity",
            Verdict::LeftRefinesToRight => "refinement (lhs ⊑ rhs)",
            Verdict::RightRefinesToLeft => "anti-refinement (rhs ⊑ lhs)",
            Verdict::Incomparable => "invalid",
        })
    }
}

/// Compares two denotations to `depth`.
pub fn compare_denots(ev: &DenotEvaluator<'_>, d1: &Denot, d2: &Denot, depth: u32) -> Verdict {
    let le = denot_leq(ev, d1, d2, depth);
    let ge = denot_leq(ev, d2, d1, depth);
    match (le, ge) {
        (true, true) => Verdict::Equal,
        (true, false) => Verdict::LeftRefinesToRight,
        (false, true) => Verdict::RightRefinesToLeft,
        (false, false) => Verdict::Incomparable,
    }
}

/// The information order `d1 ⊑ d2`, decided to `depth`.
pub fn denot_leq(ev: &DenotEvaluator<'_>, d1: &Denot, d2: &Denot, depth: u32) -> bool {
    match (d1, d2) {
        (Denot::Bad(s1), Denot::Bad(s2)) => s1.leq(s2),
        // Only ⊥ sits below normal values (coalesced sum, §4.1).
        (Denot::Bad(s), Denot::Ok(_)) => s.is_all(),
        (Denot::Ok(_), Denot::Bad(_)) => false,
        (Denot::Ok(v1), Denot::Ok(v2)) => value_leq(ev, v1, v2, depth),
    }
}

fn value_leq(ev: &DenotEvaluator<'_>, v1: &Value, v2: &Value, depth: u32) -> bool {
    if depth == 0 {
        return true; // structural cut-off: assume related
    }
    match (v1, v2) {
        (Value::Int(a), Value::Int(b)) => a == b,
        (Value::Char(a), Value::Char(b)) => a == b,
        (Value::Str(a), Value::Str(b)) => a == b,
        (Value::Con(c1, f1), Value::Con(c2, f2)) => {
            c1 == c2
                && f1.len() == f2.len()
                && f1.iter().zip(f2).all(|(a, b)| {
                    let da = ev.force(a);
                    let db = ev.force(b);
                    denot_leq(ev, &da, &db, depth - 1)
                })
        }
        (Value::Fun(_), Value::Fun(_)) => {
            // Probe with marked exceptional arguments.
            probes().iter().all(|p| {
                let a1 = Thunk::done(p.clone());
                let a2 = Thunk::done(p.clone());
                let r1 = ev.apply_denot(&Denot::Ok(v1.clone()), a1);
                let r2 = ev.apply_denot(&Denot::Ok(v2.clone()), a2);
                denot_leq(ev, &r1, &r2, depth - 1)
            })
        }
        _ => false,
    }
}

fn probes() -> Vec<Denot> {
    vec![
        Denot::Bad(ExnSet::empty()),
        Denot::Bad(ExnSet::singleton(Exception::UserError("#probe".into()))),
        Denot::bottom(),
    ]
}

/// Renders a denotation to `depth`, forcing constructor fields — the
/// ground observation used by tests and the REPL.
pub fn show_denot(ev: &DenotEvaluator<'_>, d: &Denot, depth: u32) -> String {
    match d {
        Denot::Bad(s) => format!("Bad {s}"),
        Denot::Ok(v) => show_value(ev, v, depth, false),
    }
}

fn show_value(ev: &DenotEvaluator<'_>, v: &Value, depth: u32, nested: bool) -> String {
    match v {
        Value::Int(n) => n.to_string(),
        Value::Char(c) => format!("{c:?}"),
        Value::Str(s) => format!("{s:?}"),
        Value::Fun(_) => "<function>".into(),
        Value::Con(c, fields) if fields.is_empty() => c.to_string(),
        Value::Con(c, fields) => {
            if depth == 0 {
                return if nested {
                    format!("({c} ...)")
                } else {
                    format!("{c} ...")
                };
            }
            let mut out = String::new();
            if nested {
                out.push('(');
            }
            out.push_str(&c.to_string());
            for f in fields {
                out.push(' ');
                let d = ev.force(f);
                match d {
                    Denot::Bad(s) => out.push_str(&format!("(Bad {s})")),
                    Denot::Ok(v) => out.push_str(&show_value(ev, &v, depth - 1, true)),
                }
            }
            if nested {
                out.push(')');
            }
            out
        }
    }
}
