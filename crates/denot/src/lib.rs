//! # urk-denot
//!
//! The denotational layer of the PLDI 1999 *imprecise exceptions*
//! reproduction:
//!
//! * [`eval::DenotEvaluator`] — the paper's semantics (§4): exceptional
//!   values are **sets** of exceptions, `⊥` is the set of all exceptions,
//!   `case` explores alternatives in exception-finding mode, and `fix` is a
//!   fuel-indexed ascending chain.
//! * [`precise::PreciseEvaluator`] — the rejected ML/FL-style baseline
//!   (§3.4, design 1): one exception, fixed evaluation order.
//! * [`nondet`] — the rejected non-deterministic baseline (§3.4, design 2):
//!   oracle-chosen order with a *pure* `getException`; outcome-set
//!   enumeration exhibits the loss of beta reduction.
//! * [`compare`] — the refinement order `⊑` and verdicts for the §4.5 law
//!   tables.
//!
//! # Examples
//!
//! The paper's headline example — both exceptions are in the set,
//! regardless of evaluation order:
//!
//! ```
//! use urk_syntax::{parse_expr_src, desugar_expr, DataEnv, Exception};
//! use urk_denot::{DenotEvaluator, Denot};
//! use std::rc::Rc;
//!
//! let data = DataEnv::new();
//! let e = desugar_expr(
//!     &parse_expr_src(r#"(1/0) + raise (UserError "Urk")"#)?,
//!     &data,
//! )?;
//! let ev = DenotEvaluator::new(&data);
//! let d = ev.eval_closed(&Rc::new(e));
//! let Denot::Bad(s) = d else { panic!("expected an exceptional value") };
//! assert!(s.contains(&Exception::DivideByZero));
//! assert!(s.contains(&Exception::UserError("Urk".into())));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod compare;
pub mod domain;
pub mod eval;
pub mod exnset;
pub mod nondet;
pub mod precise;

pub use compare::{compare_denots, denot_leq, show_denot, Verdict};
pub use domain::{Closure, DThunk, Denot, Env, Thunk, ThunkState, Value};
pub use eval::{DenotConfig, DenotEvaluator};
pub use exnset::ExnSet;
pub use nondet::{enumerate_outcomes, same_outcome_sets, NondetConfig};
pub use precise::{
    compare_pdenots, pdenot_leq, EvalOrder, PDenot, PValue, PreciseConfig, PreciseEvaluator,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use urk_syntax::core::Expr;
    use urk_syntax::Exception;
    use urk_syntax::{desugar_expr, desugar_program, parse_expr_src, parse_program, DataEnv};

    fn core_of(src: &str) -> Rc<Expr> {
        let data = DataEnv::new();
        Rc::new(desugar_expr(&parse_expr_src(src).expect("parses"), &data).expect("desugars"))
    }

    fn eval_show(src: &str) -> String {
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        let d = ev.eval_closed(&core_of(src));
        show_denot(&ev, &d, 16)
    }

    fn eval_denot(src: &str) -> Denot {
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        ev.eval_closed(&core_of(src))
    }

    fn eval_in_program(prog: &str, expr: &str) -> String {
        let mut data = DataEnv::new();
        let p =
            desugar_program(&parse_program(prog).expect("parses"), &mut data).expect("desugars");
        let e =
            Rc::new(desugar_expr(&parse_expr_src(expr).expect("parses"), &data).expect("desugars"));
        let ev = DenotEvaluator::new(&data);
        let env = ev.bind_recursive(&p.binds, &Env::empty());
        let d = ev.eval(&e, &env);
        show_denot(&ev, &d, 16)
    }

    fn urk() -> Exception {
        Exception::UserError("Urk".into())
    }

    // ------------------------------------------------------------------
    // §3.4/§4.2: the (+) rule
    // ------------------------------------------------------------------

    #[test]
    fn headline_term_contains_both_exceptions() {
        let d = eval_denot(r#"(1/0) + raise (UserError "Urk")"#);
        let Denot::Bad(s) = d else {
            panic!("expected Bad")
        };
        assert!(s.contains(&Exception::DivideByZero));
        assert!(s.contains(&urk()));
        assert!(!s.is_all());
    }

    #[test]
    fn addition_commutes_on_exceptional_values() {
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        let l = ev.eval_closed(&core_of(r#"(1/0) + raise (UserError "Urk")"#));
        let r = ev.eval_closed(&core_of(r#"raise (UserError "Urk") + (1/0)"#));
        assert_eq!(compare_denots(&ev, &l, &r, 8), Verdict::Equal);
    }

    #[test]
    fn ordinary_arithmetic_still_works() {
        assert_eq!(eval_show("1 + 2 * 3"), "7");
        assert_eq!(eval_show("7 / 2"), "3");
        assert_eq!(eval_show("7 % 2"), "1");
        assert_eq!(eval_show("negate 5"), "-5");
    }

    #[test]
    fn overflow_is_an_exception() {
        let d = eval_denot("9223372036854775807 + 1");
        let Denot::Bad(s) = d else {
            panic!("expected Bad")
        };
        assert!(s.contains(&Exception::Overflow));
    }

    // ------------------------------------------------------------------
    // §4.2: application rules
    // ------------------------------------------------------------------

    #[test]
    fn beta_reduction_discards_unused_exceptional_arguments() {
        // (\x.3)(1/0) = 3 — the paper's example for why a *normal* function
        // must not union in its argument's exceptions.
        assert_eq!(eval_show(r"(\x -> 3) (1/0)"), "3");
    }

    #[test]
    fn exceptional_function_unions_argument_exceptions() {
        // [e1 e2] = Bad (s ∪ S[[e2]]) when [e1] = Bad s.
        let d = eval_denot(r"(raise Overflow) (1/0)");
        let Denot::Bad(s) = d else {
            panic!("expected Bad")
        };
        assert!(s.contains(&Exception::Overflow));
        assert!(s.contains(&Exception::DivideByZero));
    }

    #[test]
    fn lambda_over_bottom_is_not_bottom() {
        // §4.2: λx.⊥ ≠ ⊥.
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        let lam = ev.eval_closed(&Rc::new(Expr::lam("x", Expr::diverge())));
        let bot = Denot::bottom();
        assert!(matches!(lam, Denot::Ok(Value::Fun(_))));
        assert_ne!(compare_denots(&ev, &lam, &bot, 4), Verdict::Equal);
        // ⊥ ⊑ λx.⊥ holds, the converse does not.
        assert!(denot_leq(&ev, &bot, &lam, 4));
        assert!(!denot_leq(&ev, &lam, &bot, 4));
    }

    // ------------------------------------------------------------------
    // §4: loop + error "Urk" and fix
    // ------------------------------------------------------------------

    #[test]
    fn loop_plus_error_is_bottom() {
        // loop's denotation is ⊥ = the set of all exceptions; union with
        // {UserError "Urk"} is still ⊥.
        let data = DataEnv::new();
        let ev = DenotEvaluator::with_config(
            &data,
            DenotConfig {
                fuel: 50_000,
                ..DenotConfig::default()
            },
        );
        let e = Rc::new(Expr::add(Expr::diverge(), Expr::error("Urk")));
        let d = ev.eval_closed(&e);
        assert!(d.is_bottom(), "got {d:?}");
    }

    #[test]
    fn productive_recursion_is_not_bottom() {
        assert_eq!(
            eval_in_program("f x = if x == 0 then 42 else f (x - 1)", "f 10"),
            "42"
        );
    }

    #[test]
    fn self_referential_value_is_black_hole_bottom() {
        // black = black + 1 (§5.2): re-entrant thunk forcing is ⊥ without
        // consuming unbounded fuel.
        let d = eval_in_program("black = black + 1", "black");
        assert_eq!(d, "Bad {ALL}");
    }

    #[test]
    fn fuel_exhaustion_approximates_from_below_monotonically() {
        let data = DataEnv::new();
        // A computation needing a fair amount of fuel.
        let src = "letrec-free"; // placeholder to keep naming clear
        let _ = src;
        let e = core_of(r"(\f -> f 1 + f 2 + f 3) (\x -> x * x)");
        let mut last: Option<Denot> = None;
        for fuel in [1u64, 5, 20, 100, 10_000] {
            let ev = DenotEvaluator::with_config(
                &data,
                DenotConfig {
                    fuel,
                    ..DenotConfig::default()
                },
            );
            let d = ev.eval_closed(&e);
            if let Some(prev) = &last {
                assert!(
                    denot_leq(&ev, prev, &d, 8),
                    "fuel increase must move the approximant up"
                );
            }
            last = Some(d);
        }
        let data2 = DataEnv::new();
        let ev = DenotEvaluator::new(&data2);
        assert!(
            matches!(last, Some(Denot::Ok(Value::Int(14)))),
            "{:?}",
            show_denot(&ev, &last.unwrap(), 4)
        );
    }

    // ------------------------------------------------------------------
    // §4.3: case and exception-finding mode
    // ------------------------------------------------------------------

    #[test]
    fn case_on_bad_scrutinee_unions_all_alternatives() {
        let d = eval_denot(
            r#"case raise Overflow of { True -> 1/0; False -> raise (UserError "Urk") }"#,
        );
        let Denot::Bad(s) = d else {
            panic!("expected Bad")
        };
        assert!(s.contains(&Exception::Overflow));
        assert!(s.contains(&Exception::DivideByZero));
        assert!(s.contains(&urk()));
        assert!(!s.is_all());
    }

    #[test]
    fn exception_finding_mode_binds_bad_empty() {
        // The alternative returns its pattern variable; since it is bound
        // to Bad {}, it contributes *no* exceptions.
        let d = eval_denot("case raise Overflow of { Just x -> x; Nothing -> 2 }");
        let Denot::Bad(s) = d else {
            panic!("expected Bad")
        };
        assert_eq!(s, ExnSet::singleton(Exception::Overflow));
    }

    #[test]
    fn case_switching_turns_into_refinement() {
        // §4.5's worked example: with e = raise E, x = raise X and
        // constant alternatives, lhs denotes Bad {E,X} and rhs Bad {E}:
        // lhs ⊑ rhs but not equal.
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        let lhs = ev.eval_closed(&core_of(
            r#"case raise Overflow of
                 { True -> (\x -> 1) (raise DivideByZero)
                 ; False -> (\x -> 1) (raise DivideByZero) }"#,
        ));
        // After pushing the application inside and simplifying with a
        // normal function, the DivideByZero branch disappears:
        let rhs = ev.eval_closed(&core_of("case raise Overflow of { True -> 1; False -> 1 }"));
        assert_eq!(compare_denots(&ev, &lhs, &rhs, 8), Verdict::Equal);
        // The sharper §4.5 shape: alternatives that *do* raise lose
        // exceptions when simplified away.
        let lhs2 = ev.eval_closed(&core_of(
            "case raise Overflow of { True -> raise DivideByZero; False -> raise DivideByZero }",
        ));
        let rhs2 = ev.eval_closed(&core_of("raise Overflow"));
        assert_eq!(
            compare_denots(&ev, &lhs2, &rhs2, 8),
            Verdict::LeftRefinesToRight
        );
    }

    #[test]
    fn normal_case_selects_the_right_alternative() {
        assert_eq!(
            eval_show("case Just 3 of { Just n -> n + 1; Nothing -> 0 }"),
            "4"
        );
        assert_eq!(eval_show("case 2 of { 1 -> 10; 2 -> 20; _ -> 30 }"), "20");
        assert_eq!(eval_show(r#"case "a" of { "a" -> 1; _ -> 2 }"#), "1");
    }

    #[test]
    fn missing_alternative_is_pattern_match_failure() {
        let d = eval_denot("case Nothing of { Just n -> n }");
        let Denot::Bad(s) = d else {
            panic!("expected Bad")
        };
        assert!(matches!(
            s.some_member(),
            Some(Exception::PatternMatchFail(_))
        ));
    }

    // ------------------------------------------------------------------
    // §3.2: exceptional values hide in lazy structures (zipWith)
    // ------------------------------------------------------------------

    const ZIP_PRELUDE: &str = "zipWith f [] [] = []\n\
         zipWith f (x:xs) (y:ys) = f x y : zipWith f xs ys\n\
         zipWith f xs ys = raise (UserError \"Unequal lists\")";

    #[test]
    fn zipwith_direct_exception() {
        // zipWith (+) [] [1] returns an exception value directly.
        let out = eval_in_program(ZIP_PRELUDE, "zipWith (+) [] [1]");
        assert_eq!(out, "Bad {UserError \"Unequal lists\"}");
    }

    #[test]
    fn zipwith_exception_at_the_end_of_the_spine() {
        let out = eval_in_program(ZIP_PRELUDE, "zipWith (+) [1] [1, 2]");
        assert_eq!(out, "Cons 2 (Bad {UserError \"Unequal lists\"})");
    }

    #[test]
    fn zipwith_exceptional_elements_in_a_defined_spine() {
        let out = eval_in_program(ZIP_PRELUDE, "zipWith (/) [1, 2] [1, 0]");
        assert_eq!(out, "Cons 1 (Cons (Bad {DivideByZero}) Nil)");
    }

    #[test]
    fn seq_forces_exceptions_out_of_structures() {
        // seq on WHNF only: the spine constructor is normal.
        assert_eq!(eval_show("seq (Cons (1/0) Nil) 5"), "5");
        let d = eval_denot("seq (1/0) 5");
        let Denot::Bad(s) = d else {
            panic!("expected Bad")
        };
        assert!(s.contains(&Exception::DivideByZero));
        assert_eq!(eval_show("seq 1 5"), "5");
    }

    // ------------------------------------------------------------------
    // raise and nested raises
    // ------------------------------------------------------------------

    #[test]
    fn raise_of_exceptional_argument_propagates_the_set() {
        let d = eval_denot("raise (raise Overflow)");
        let Denot::Bad(s) = d else {
            panic!("expected Bad")
        };
        assert_eq!(s, ExnSet::singleton(Exception::Overflow));
    }

    #[test]
    fn raise_forces_string_payloads() {
        let d = eval_denot(r#"raise (UserError "Urk")"#);
        let Denot::Bad(s) = d else {
            panic!("expected Bad")
        };
        assert_eq!(s, ExnSet::singleton(urk()));
    }

    // ------------------------------------------------------------------
    // §5.4: mapException and unsafeIsException
    // ------------------------------------------------------------------

    #[test]
    fn map_exception_rewrites_every_member() {
        let out = eval_show(r#"mapException (\x -> UserError "Urk") ((1/0) + raise Overflow)"#);
        assert_eq!(out, "Bad {UserError \"Urk\"}");
    }

    #[test]
    fn map_exception_leaves_normal_values_alone() {
        assert_eq!(
            eval_show(r#"mapException (\x -> UserError "Urk") 42"#),
            "42"
        );
    }

    #[test]
    fn map_exception_preserves_bottom() {
        let data = DataEnv::new();
        let ev = DenotEvaluator::with_config(
            &data,
            DenotConfig {
                fuel: 20_000,
                ..DenotConfig::default()
            },
        );
        let e = Rc::new(Expr::prim(
            urk_syntax::core::PrimOp::MapExn,
            [Expr::lam("x", Expr::con("Overflow", [])), Expr::diverge()],
        ));
        assert!(ev.eval_closed(&e).is_bottom());
    }

    #[test]
    fn unsafe_is_exception_optimistic_and_pessimistic() {
        assert_eq!(eval_show("unsafeIsException (1/0)"), "True");
        assert_eq!(eval_show("unsafeIsException 3"), "False");
        // Optimistic: even ⊥ answers True.
        let data = DataEnv::new();
        let probe = Rc::new(Expr::prim(
            urk_syntax::core::PrimOp::UnsafeIsException,
            [Expr::diverge()],
        ));
        let opt = DenotEvaluator::new(&data);
        assert_eq!(show_denot(&opt, &opt.eval_closed(&probe), 4), "True");
        // Pessimistic: ⊥ answers ⊥.
        let pess = DenotEvaluator::with_config(
            &data,
            DenotConfig {
                pessimistic_is_exception: true,
                ..DenotConfig::default()
            },
        );
        assert!(pess.eval_closed(&probe).is_bottom());
    }

    // ------------------------------------------------------------------
    // The precise baseline (§3.4 design 1)
    // ------------------------------------------------------------------

    #[test]
    fn precise_semantics_is_order_dependent() {
        let e = core_of(r#"(1/0) + raise (UserError "Urk")"#);
        let l2r = PreciseEvaluator::new(PreciseConfig {
            order: EvalOrder::LeftToRight,
            ..PreciseConfig::default()
        });
        let r2l = PreciseEvaluator::new(PreciseConfig {
            order: EvalOrder::RightToLeft,
            ..PreciseConfig::default()
        });
        assert!(matches!(
            l2r.eval_closed(&e),
            PDenot::Exn(Exception::DivideByZero)
        ));
        assert!(matches!(
            r2l.eval_closed(&e),
            PDenot::Exn(Exception::UserError(_))
        ));
    }

    #[test]
    fn precise_addition_does_not_commute() {
        let a = core_of(r#"(1/0) + raise (UserError "Urk")"#);
        let b = core_of(r#"raise (UserError "Urk") + (1/0)"#);
        let ev = PreciseEvaluator::new(PreciseConfig::default());
        let da = ev.eval_closed(&a);
        let db = ev.eval_closed(&b);
        assert_ne!(ev.show(&da, 4), ev.show(&db, 4));
    }

    #[test]
    fn precise_case_propagates_without_exploring() {
        let e = core_of("case raise Overflow of { True -> 1/0; False -> 2 }");
        let ev = PreciseEvaluator::new(PreciseConfig::default());
        assert!(matches!(
            ev.eval_closed(&e),
            PDenot::Exn(Exception::Overflow)
        ));
    }

    #[test]
    fn precise_normal_evaluation_agrees_with_imprecise() {
        for src in [
            "1 + 2 * 3",
            r"(\x -> x + 1) 41",
            "case Just 5 of { Just n -> n; Nothing -> 0 }",
        ] {
            let e = core_of(src);
            let pev = PreciseEvaluator::new(PreciseConfig::default());
            let pd = pev.eval_closed(&e);
            assert_eq!(pev.show(&pd, 8), eval_show(src), "on {src}");
        }
    }

    #[test]
    fn precise_distinguishes_bottom_from_exceptions() {
        let ev = PreciseEvaluator::new(PreciseConfig {
            fuel: 10_000,
            ..PreciseConfig::default()
        });
        let d = ev.eval_closed(&Rc::new(Expr::diverge()));
        assert!(matches!(d, PDenot::Bot));
        let d2 = ev.eval_closed(&core_of("raise Overflow"));
        assert!(matches!(d2, PDenot::Exn(Exception::Overflow)));
    }

    // ------------------------------------------------------------------
    // The non-deterministic baseline (§3.4 design 2)
    // ------------------------------------------------------------------

    #[test]
    fn nondet_deterministic_terms_have_one_outcome() {
        let outcomes = enumerate_outcomes(&core_of("1 + 2"), &NondetConfig::default());
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes.contains("3"));
    }

    #[test]
    fn nondet_choice_surfaces_both_exceptions() {
        let outcomes = enumerate_outcomes(
            &core_of(r#"(1/0) + raise (UserError "Urk")"#),
            &NondetConfig::default(),
        );
        assert_eq!(outcomes.len(), 2, "{outcomes:?}");
    }

    #[test]
    fn nondet_beta_reduction_fails_the_paper_example() {
        // let x = (1/0) + raise (UserError "Urk")
        // in (getException x, getException x)
        let shared = core_of(
            r#"let x = (1/0) + raise (UserError "Urk")
               in (getException x, getException x)"#,
        );
        // ... with x substituted by its right-hand side:
        let substituted = core_of(
            r#"(getException ((1/0) + raise (UserError "Urk")),
                getException ((1/0) + raise (UserError "Urk")))"#,
        );
        let cfg = NondetConfig::default();
        let shared_outcomes = enumerate_outcomes(&shared, &cfg);
        let subst_outcomes = enumerate_outcomes(&substituted, &cfg);
        // Sharing forces one choice: both components always agree.
        assert_eq!(shared_outcomes.len(), 2, "{shared_outcomes:?}");
        // Substitution makes the choices independent: four outcomes,
        // including mismatched pairs. Beta reduction is invalid.
        assert_eq!(subst_outcomes.len(), 4, "{subst_outcomes:?}");
        assert!(!same_outcome_sets(&shared, &substituted, &cfg));
        assert!(subst_outcomes.is_superset(&shared_outcomes));
    }

    // ------------------------------------------------------------------
    // Comparison machinery
    // ------------------------------------------------------------------

    #[test]
    fn compare_ground_values() {
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        let a = ev.eval_closed(&core_of("[1, 2, 3]"));
        let b = ev.eval_closed(&core_of("1 : 2 : 3 : []"));
        assert_eq!(compare_denots(&ev, &a, &b, 8), Verdict::Equal);
        let c = ev.eval_closed(&core_of("[1, 2]"));
        assert_eq!(compare_denots(&ev, &a, &c, 8), Verdict::Incomparable);
    }

    #[test]
    fn compare_respects_exception_set_inclusion() {
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        let both = ev.eval_closed(&core_of(r#"(1/0) + raise (UserError "Urk")"#));
        let one = ev.eval_closed(&core_of("1/0"));
        assert_eq!(
            compare_denots(&ev, &both, &one, 8),
            Verdict::LeftRefinesToRight
        );
        assert_eq!(
            compare_denots(&ev, &one, &both, 8),
            Verdict::RightRefinesToLeft
        );
    }

    #[test]
    fn error_this_is_not_error_that() {
        // §4.5: the lost law — error "This" = error "That" no longer holds,
        // and rightly not.
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        let this = ev.eval_closed(&Rc::new(Expr::error("This")));
        let that = ev.eval_closed(&Rc::new(Expr::error("That")));
        assert_eq!(compare_denots(&ev, &this, &that, 8), Verdict::Incomparable);
    }

    #[test]
    fn functions_compare_via_probes() {
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        // \x -> x and \y -> y are equal.
        let a = ev.eval_closed(&core_of(r"\x -> x"));
        let b = ev.eval_closed(&core_of(r"\y -> y"));
        assert_eq!(compare_denots(&ev, &a, &b, 6), Verdict::Equal);
        // \x -> x (strict in probe) vs \x -> 3 (discards probe) differ.
        let c = ev.eval_closed(&core_of(r"\x -> 3"));
        assert_ne!(compare_denots(&ev, &a, &c, 6), Verdict::Equal);
    }

    #[test]
    fn show_denot_renders_structures() {
        assert_eq!(eval_show("[1, 2]"), "Cons 1 (Cons 2 Nil)");
        assert_eq!(eval_show("(1, (2, 3))"), "Pair 1 (Pair 2 3)");
        assert_eq!(eval_show(r"\x -> x"), "<function>");
        assert_eq!(eval_show("'q'"), "'q'");
    }

    #[test]
    fn strings_and_chars_evaluate() {
        assert_eq!(eval_show(r#"strAppend "ab" "cd""#), "\"abcd\"");
        assert_eq!(eval_show(r#"strLen "abcd""#), "4");
        assert_eq!(eval_show("showInt 42"), "\"42\"");
        assert_eq!(eval_show("ord 'a'"), "97");
        assert_eq!(eval_show("chr 98"), "'b'");
        assert_eq!(eval_show("eqChar 'a' 'a'"), "True");
        let d = eval_denot("chr (-1)");
        assert!(matches!(d, Denot::Bad(_)));
    }
}
