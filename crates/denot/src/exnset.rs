//! The exception-set lattice `P(E)⊥` of §4.1.
//!
//! An exceptional value carries a *set* of exceptions. The ordering is
//! reverse inclusion:
//!
//! ```text
//! S1 ⊑ S2  ⟺  S1 ⊇ S2
//! ```
//!
//! so the bottom element is the set of **all** exceptions (which the paper
//! identifies with `⊥` itself, after adding `NonTermination` to the
//! `Exception` type), and the top element is the empty set — the curious
//! value `Bad {}` that no term denotes but that the `case` rule's
//! exception-finding mode binds pattern variables to (§4.3).
//!
//! # Representation
//!
//! Sets are on the hot path of the denotational evaluator: every `(+)`
//! rule, every exception-finding `case`, and every `Bad` propagation
//! unions them. Almost all sets that arise in practice contain only the
//! eight payload-free builtin constructors, so the representation is
//!
//! * a **bitmask** over [`Exception::nullary_constructors`] (one bit per
//!   payload-free constructor), plus
//! * an optional [`Rc`]-shared **spill set** holding the payload-carrying
//!   members (`UserError`, `PatternMatchFail`), plus
//! * a distinguished `⊥` flag for the set of all exceptions.
//!
//! Unions of mask-only sets are a single `|`; a union where only one side
//! spills shares the other's `Rc` (copy-on-write), so the common cases
//! allocate nothing. Iteration interleaves mask bits 0–1, the spill set,
//! then bits 2–7, which is exactly `Exception`'s `Ord` order — `Display`
//! output and [`ExnSet::some_member`] are unchanged from the plain
//! `BTreeSet` representation this replaces.

use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

use urk_syntax::Exception;

/// The mask bit flagging `⊥` (the set of all exceptions).
const ALL: u16 = 1 << 15;

/// How many mask bits sort *below* the payload-carrying constructors
/// (`DivideByZero`, `Overflow`); the remaining bits sort above them.
const BITS_BELOW_SPILL: u8 = 2;

/// A set of exceptions: either a finite set, or the set of all exceptions
/// (`⊥`, which includes `NonTermination`).
///
/// Invariants: when the `ALL` flag is set the spill is `None` and no other
/// mask bit is set; a spill is never `Some` of an empty set. Together these
/// make derived equality structural.
#[derive(Clone, PartialEq, Eq)]
pub struct ExnSet {
    mask: u16,
    spill: Option<Rc<BTreeSet<Exception>>>,
}

impl ExnSet {
    /// The empty set — the top of the lattice, `Bad {}` of §4.1.
    pub fn empty() -> ExnSet {
        ExnSet {
            mask: 0,
            spill: None,
        }
    }

    /// A singleton set. Allocation-free for the payload-free constructors.
    pub fn singleton(e: Exception) -> ExnSet {
        match e.nullary_index() {
            Some(i) => ExnSet {
                mask: 1 << i,
                spill: None,
            },
            None => ExnSet {
                mask: 0,
                spill: Some(Rc::new(BTreeSet::from([e]))),
            },
        }
    }

    /// The bottom element (all exceptions).
    pub fn bottom() -> ExnSet {
        ExnSet {
            mask: ALL,
            spill: None,
        }
    }

    fn spill_set(&self) -> Option<&BTreeSet<Exception>> {
        self.spill.as_deref()
    }

    /// True if this is the empty set.
    pub fn is_empty(&self) -> bool {
        self.mask == 0 && self.spill.is_none()
    }

    /// True if this is `⊥` (all exceptions).
    pub fn is_all(&self) -> bool {
        self.mask == ALL
    }

    /// Number of members of a finite set (`None` for `⊥`).
    pub fn len(&self) -> Option<usize> {
        if self.is_all() {
            return None;
        }
        Some(self.mask.count_ones() as usize + self.spill_set().map_or(0, BTreeSet::len))
    }

    /// Set membership. Everything is a member of `All`.
    pub fn contains(&self, e: &Exception) -> bool {
        if self.is_all() {
            return true;
        }
        match e.nullary_index() {
            Some(i) => self.mask & (1 << i) != 0,
            None => self.spill_set().is_some_and(|s| s.contains(e)),
        }
    }

    /// Whether the set denotes possible non-termination (`⊥` or an explicit
    /// `NonTermination` member) — the condition in §4.4's `getException`
    /// self-loop rule.
    pub fn may_diverge(&self) -> bool {
        self.contains(&Exception::NonTermination)
    }

    /// Set union — how `(+)`, application-of-`Bad`, and the `case` rule
    /// combine argument exception sets (§4.2–4.3). O(1) unless *both*
    /// sides carry distinct spill sets.
    pub fn union(&self, other: &ExnSet) -> ExnSet {
        if self.is_all() || other.is_all() {
            return ExnSet::bottom();
        }
        let spill = match (&self.spill, &other.spill) {
            (None, s) | (s, None) => s.clone(),
            (Some(a), Some(b)) if Rc::ptr_eq(a, b) => Some(a.clone()),
            (Some(a), Some(b)) => {
                // Share the larger side's Rc when it already subsumes the
                // smaller; merge (one allocation) otherwise.
                let (big, small) = if a.len() >= b.len() { (a, b) } else { (b, a) };
                if small.iter().all(|e| big.contains(e)) {
                    Some(big.clone())
                } else {
                    Some(Rc::new(big.iter().chain(small.iter()).cloned().collect()))
                }
            }
        };
        ExnSet {
            mask: self.mask | other.mask,
            spill,
        }
    }

    /// Inserts one exception (a no-op on `⊥`, which already has every
    /// member).
    pub fn insert(&mut self, e: Exception) {
        if self.is_all() {
            return;
        }
        match e.nullary_index() {
            Some(i) => self.mask |= 1 << i,
            None => match &mut self.spill {
                Some(s) => {
                    if !s.contains(&e) {
                        Rc::make_mut(s).insert(e);
                    }
                }
                None => self.spill = Some(Rc::new(BTreeSet::from([e]))),
            },
        }
    }

    /// The information ordering: `self ⊑ other ⟺ self ⊇ other`.
    pub fn leq(&self, other: &ExnSet) -> bool {
        if self.is_all() {
            return true;
        }
        if other.is_all() {
            return false;
        }
        if other.mask & !self.mask != 0 {
            return false;
        }
        match (self.spill_set(), other.spill_set()) {
            (_, None) => true,
            (None, Some(b)) => b.is_empty(),
            (Some(a), Some(b)) => {
                Rc::ptr_eq(
                    self.spill.as_ref().expect("spill checked"),
                    other.spill.as_ref().expect("spill checked"),
                ) || b.is_subset(a)
            }
        }
    }

    /// Iterates the members of a finite set in `Exception`'s `Ord` order
    /// (empty for `⊥`, whose members cannot be enumerated).
    pub fn iter(&self) -> impl Iterator<Item = Exception> + '_ {
        let finite = !self.is_all();
        let bit = move |i: u8| {
            (finite && self.mask & (1 << i) != 0)
                .then(|| Exception::nullary_constructors()[i as usize].clone())
        };
        (0..BITS_BELOW_SPILL)
            .filter_map(bit)
            .chain(
                self.spill_set()
                    .filter(|_| finite)
                    .into_iter()
                    .flatten()
                    .cloned(),
            )
            .chain((BITS_BELOW_SPILL..8).filter_map(bit))
    }

    /// The members, if the set is finite, in `Ord` order.
    pub fn members(&self) -> Option<Vec<Exception>> {
        if self.is_all() {
            return None;
        }
        Some(self.iter().collect())
    }

    /// An arbitrary-but-deterministic member (the least in the `Ord` on
    /// `Exception`), if one exists. `All` has no canonical member.
    pub fn some_member(&self) -> Option<Exception> {
        if self.is_all() {
            return None;
        }
        self.iter().next()
    }
}

impl fmt::Display for ExnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // One shared rendering for every layer that shows a set.
        f.write_str(&urk_syntax::pretty_exception_set(self.members().as_deref()))
    }
}

impl fmt::Debug for ExnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExnSet{self}")
    }
}

impl FromIterator<Exception> for ExnSet {
    fn from_iter<T: IntoIterator<Item = Exception>>(iter: T) -> ExnSet {
        let mut out = ExnSet::empty();
        for e in iter {
            out.insert(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urk() -> Exception {
        Exception::UserError("Urk".into())
    }

    #[test]
    fn ordering_is_reverse_inclusion() {
        let small = ExnSet::singleton(Exception::DivideByZero);
        let big = ExnSet::from_iter([Exception::DivideByZero, urk()]);
        // Bigger sets are *lower* (less informative).
        assert!(big.leq(&small));
        assert!(!small.leq(&big));
        // Bottom below everything; empty above everything.
        assert!(ExnSet::bottom().leq(&small));
        assert!(small.leq(&ExnSet::empty()));
        assert!(!ExnSet::empty().leq(&small));
    }

    #[test]
    fn union_is_the_lattice_meet() {
        let a = ExnSet::singleton(Exception::DivideByZero);
        let b = ExnSet::singleton(urk());
        let u = a.union(&b);
        assert!(u.leq(&a));
        assert!(u.leq(&b));
        assert!(u.contains(&Exception::DivideByZero));
        assert!(u.contains(&urk()));
        // Union with ⊥ is ⊥ — "loop + error Urk" denotes ⊥ (§4.2).
        assert!(a.union(&ExnSet::bottom()).is_all());
    }

    #[test]
    fn bottom_contains_everything_including_nontermination() {
        assert!(ExnSet::bottom().contains(&Exception::NonTermination));
        assert!(ExnSet::bottom().contains(&urk()));
        assert!(ExnSet::bottom().may_diverge());
        assert!(!ExnSet::singleton(urk()).may_diverge());
        assert!(ExnSet::singleton(Exception::NonTermination).may_diverge());
    }

    #[test]
    fn empty_set_is_expressible_but_memberless() {
        let e = ExnSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.some_member(), None);
        assert!(!e.contains(&urk()));
    }

    #[test]
    fn leq_is_a_partial_order() {
        let sets = [
            ExnSet::empty(),
            ExnSet::singleton(urk()),
            ExnSet::from_iter([urk(), Exception::Overflow]),
            ExnSet::bottom(),
        ];
        for a in &sets {
            assert!(a.leq(a), "reflexive");
            for b in &sets {
                for c in &sets {
                    if a.leq(b) && b.leq(c) {
                        assert!(a.leq(c), "transitive");
                    }
                }
                if a.leq(b) && b.leq(a) {
                    assert_eq!(a, b, "antisymmetric");
                }
            }
        }
    }

    #[test]
    fn display_is_stable() {
        let s = ExnSet::from_iter([urk(), Exception::DivideByZero]);
        assert_eq!(s.to_string(), "{DivideByZero, UserError \"Urk\"}");
        assert_eq!(ExnSet::bottom().to_string(), "{ALL}");
    }

    // --------------------------------------------------------------
    // Representation invariants of the bitmask + spill encoding
    // --------------------------------------------------------------

    /// Every set the mask and spill can describe, compared against the
    /// reference `BTreeSet` semantics.
    fn reference(members: &[Exception]) -> BTreeSet<Exception> {
        members.iter().cloned().collect()
    }

    #[test]
    fn iteration_is_in_ord_order_with_payloads_interleaved() {
        let members = vec![
            Exception::HeapOverflow,
            Exception::UserError("a".into()),
            Exception::DivideByZero,
            Exception::PatternMatchFail("f".into()),
            Exception::NonTermination,
            Exception::Overflow,
        ];
        let s = ExnSet::from_iter(members.clone());
        let got: Vec<Exception> = s.iter().collect();
        let want: Vec<Exception> = reference(&members).into_iter().collect();
        assert_eq!(got, want, "iter() must follow Exception's Ord");
        assert_eq!(s.members(), Some(want.clone()));
        assert_eq!(s.some_member(), Some(want[0].clone()));
        assert_eq!(s.len(), Some(6));
    }

    #[test]
    fn nullary_singletons_do_not_allocate_a_spill() {
        for e in Exception::nullary_constructors() {
            let s = ExnSet::singleton(e.clone());
            assert!(s.spill.is_none(), "{e} needs no spill");
            assert_eq!(s.len(), Some(1));
            assert!(s.contains(&e));
        }
        let s = ExnSet::singleton(urk());
        assert!(s.spill.is_some(), "payload members spill");
    }

    #[test]
    fn union_shares_the_spill_rc_copy_on_write() {
        let with_payload = ExnSet::from_iter([urk(), Exception::Overflow]);
        let mask_only = ExnSet::singleton(Exception::DivideByZero);
        let u = with_payload.union(&mask_only);
        assert!(
            Rc::ptr_eq(
                with_payload.spill.as_ref().unwrap(),
                u.spill.as_ref().unwrap()
            ),
            "union with a mask-only set must not copy the spill"
        );
        // Self-union shares too.
        let v = with_payload.union(&with_payload);
        assert!(Rc::ptr_eq(
            with_payload.spill.as_ref().unwrap(),
            v.spill.as_ref().unwrap()
        ));
        // A subsuming spill is shared rather than re-merged.
        let small = ExnSet::singleton(urk());
        let w = with_payload.union(&small);
        assert!(Rc::ptr_eq(
            with_payload.spill.as_ref().unwrap(),
            w.spill.as_ref().unwrap()
        ));
        // Distinct spills genuinely merge.
        let other = ExnSet::singleton(Exception::UserError("other".into()));
        let m = with_payload.union(&other);
        assert_eq!(m.len(), Some(3));
        assert!(m.contains(&urk()));
        assert!(m.contains(&Exception::UserError("other".into())));
    }

    #[test]
    fn insert_preserves_sharing_until_a_write_diverges() {
        let a = ExnSet::from_iter([urk()]);
        let mut b = a.clone();
        // Inserting a member b already has must not copy the spill.
        b.insert(urk());
        assert!(Rc::ptr_eq(
            a.spill.as_ref().unwrap(),
            b.spill.as_ref().unwrap()
        ));
        // Inserting a new payload member copies b's spill, leaving a alone.
        b.insert(Exception::PatternMatchFail("g".into()));
        assert_eq!(a.len(), Some(1));
        assert_eq!(b.len(), Some(2));
    }

    #[test]
    fn all_edges_insert_union_len_members() {
        let mut bot = ExnSet::bottom();
        bot.insert(urk());
        assert!(bot.is_all(), "insert on ⊥ is a no-op");
        assert_eq!(bot.len(), None);
        assert_eq!(bot.members(), None);
        assert_eq!(bot.iter().count(), 0, "⊥ has no enumerable members");
        assert!(bot.union(&ExnSet::empty()).is_all());
        assert!(ExnSet::empty().union(&bot).is_all());
        assert!(!bot.is_empty());
        // ⊥ equals itself however it was built.
        assert_eq!(ExnSet::bottom(), ExnSet::from_iter([urk()]).union(&bot));
    }

    #[test]
    fn equality_is_structural_across_construction_orders() {
        let a = ExnSet::from_iter([urk(), Exception::Overflow, Exception::Interrupt]);
        let mut b = ExnSet::singleton(Exception::Interrupt);
        b.insert(Exception::Overflow);
        b.insert(urk());
        assert_eq!(a, b);
        let c = ExnSet::singleton(Exception::Overflow)
            .union(&ExnSet::singleton(urk()))
            .union(&ExnSet::singleton(Exception::Interrupt));
        assert_eq!(a, c);
    }

    #[test]
    fn exhaustive_small_lattice_against_reference_sets() {
        // All subsets of a 5-member universe mixing mask and spill
        // members: union/leq/contains must agree with BTreeSet.
        let universe = [
            Exception::DivideByZero,
            Exception::Overflow,
            Exception::NonTermination,
            urk(),
            Exception::PatternMatchFail("f".into()),
        ];
        let subsets: Vec<(ExnSet, BTreeSet<Exception>)> = (0u32..32)
            .map(|bits| {
                let picked: Vec<Exception> = universe
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| bits & (1 << i) != 0)
                    .map(|(_, e)| e.clone())
                    .collect();
                (ExnSet::from_iter(picked.clone()), reference(&picked))
            })
            .collect();
        for (sa, ra) in &subsets {
            for e in &universe {
                assert_eq!(sa.contains(e), ra.contains(e));
            }
            assert_eq!(sa.len(), Some(ra.len()));
            for (sb, rb) in &subsets {
                let u = sa.union(sb);
                let ru: BTreeSet<Exception> = ra.union(rb).cloned().collect();
                assert_eq!(u.members().unwrap(), ru.into_iter().collect::<Vec<_>>());
                assert_eq!(sa.leq(sb), rb.is_subset(ra), "{sa} leq {sb}");
            }
        }
    }
}
