//! The exception-set lattice `P(E)⊥` of §4.1.
//!
//! An exceptional value carries a *set* of exceptions. The ordering is
//! reverse inclusion:
//!
//! ```text
//! S1 ⊑ S2  ⟺  S1 ⊇ S2
//! ```
//!
//! so the bottom element is the set of **all** exceptions (which the paper
//! identifies with `⊥` itself, after adding `NonTermination` to the
//! `Exception` type), and the top element is the empty set — the curious
//! value `Bad {}` that no term denotes but that the `case` rule's
//! exception-finding mode binds pattern variables to (§4.3).

use std::collections::BTreeSet;
use std::fmt;

use urk_syntax::Exception;

/// A set of exceptions: either a finite set, or the set of all exceptions
/// (`⊥`, which includes `NonTermination`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExnSet {
    /// A finite set of exceptions.
    Finite(BTreeSet<Exception>),
    /// The set of *all* exceptions — the bottom element, identified with
    /// non-termination (§4.1: "we identify ⊥ with the set of all
    /// exceptions").
    All,
}

impl ExnSet {
    /// The empty set — the top of the lattice, `Bad {}` of §4.1.
    pub fn empty() -> ExnSet {
        ExnSet::Finite(BTreeSet::new())
    }

    /// A singleton set.
    pub fn singleton(e: Exception) -> ExnSet {
        let mut s = BTreeSet::new();
        s.insert(e);
        ExnSet::Finite(s)
    }

    /// The bottom element (all exceptions).
    pub fn bottom() -> ExnSet {
        ExnSet::All
    }

    /// Builds a set from an iterator of exceptions.
    pub fn from_iter(iter: impl IntoIterator<Item = Exception>) -> ExnSet {
        ExnSet::Finite(iter.into_iter().collect())
    }

    /// True if this is the empty set.
    pub fn is_empty(&self) -> bool {
        matches!(self, ExnSet::Finite(s) if s.is_empty())
    }

    /// True if this is `⊥` (all exceptions).
    pub fn is_all(&self) -> bool {
        matches!(self, ExnSet::All)
    }

    /// Set membership. Everything is a member of `All`.
    pub fn contains(&self, e: &Exception) -> bool {
        match self {
            ExnSet::Finite(s) => s.contains(e),
            ExnSet::All => true,
        }
    }

    /// Whether the set denotes possible non-termination (`⊥` or an explicit
    /// `NonTermination` member) — the condition in §4.4's `getException`
    /// self-loop rule.
    pub fn may_diverge(&self) -> bool {
        self.contains(&Exception::NonTermination)
    }

    /// Set union — how `(+)`, application-of-`Bad`, and the `case` rule
    /// combine argument exception sets (§4.2–4.3).
    pub fn union(&self, other: &ExnSet) -> ExnSet {
        match (self, other) {
            (ExnSet::All, _) | (_, ExnSet::All) => ExnSet::All,
            (ExnSet::Finite(a), ExnSet::Finite(b)) => {
                ExnSet::Finite(a.union(b).cloned().collect())
            }
        }
    }

    /// Inserts one exception.
    pub fn insert(&mut self, e: Exception) {
        if let ExnSet::Finite(s) = self {
            s.insert(e);
        }
    }

    /// The information ordering: `self ⊑ other ⟺ self ⊇ other`.
    pub fn leq(&self, other: &ExnSet) -> bool {
        match (self, other) {
            (ExnSet::All, _) => true,
            (ExnSet::Finite(_), ExnSet::All) => false,
            (ExnSet::Finite(a), ExnSet::Finite(b)) => b.is_subset(a),
        }
    }

    /// The members, if the set is finite.
    pub fn members(&self) -> Option<&BTreeSet<Exception>> {
        match self {
            ExnSet::Finite(s) => Some(s),
            ExnSet::All => None,
        }
    }

    /// An arbitrary-but-deterministic member (the least in the `Ord` on
    /// `Exception`), if one exists. `All` has no canonical member.
    pub fn some_member(&self) -> Option<&Exception> {
        match self {
            ExnSet::Finite(s) => s.iter().next(),
            ExnSet::All => None,
        }
    }
}

impl fmt::Display for ExnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExnSet::All => f.write_str("{ALL}"),
            ExnSet::Finite(s) => {
                f.write_str("{")?;
                for (i, e) in s.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl FromIterator<Exception> for ExnSet {
    fn from_iter<T: IntoIterator<Item = Exception>>(iter: T) -> ExnSet {
        ExnSet::Finite(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urk() -> Exception {
        Exception::UserError("Urk".into())
    }

    #[test]
    fn ordering_is_reverse_inclusion() {
        let small = ExnSet::singleton(Exception::DivideByZero);
        let big = ExnSet::from_iter([Exception::DivideByZero, urk()]);
        // Bigger sets are *lower* (less informative).
        assert!(big.leq(&small));
        assert!(!small.leq(&big));
        // Bottom below everything; empty above everything.
        assert!(ExnSet::bottom().leq(&small));
        assert!(small.leq(&ExnSet::empty()));
        assert!(!ExnSet::empty().leq(&small));
    }

    #[test]
    fn union_is_the_lattice_meet() {
        let a = ExnSet::singleton(Exception::DivideByZero);
        let b = ExnSet::singleton(urk());
        let u = a.union(&b);
        assert!(u.leq(&a));
        assert!(u.leq(&b));
        assert!(u.contains(&Exception::DivideByZero));
        assert!(u.contains(&urk()));
        // Union with ⊥ is ⊥ — "loop + error Urk" denotes ⊥ (§4.2).
        assert!(a.union(&ExnSet::All).is_all());
    }

    #[test]
    fn bottom_contains_everything_including_nontermination() {
        assert!(ExnSet::All.contains(&Exception::NonTermination));
        assert!(ExnSet::All.contains(&urk()));
        assert!(ExnSet::All.may_diverge());
        assert!(!ExnSet::singleton(urk()).may_diverge());
        assert!(ExnSet::singleton(Exception::NonTermination).may_diverge());
    }

    #[test]
    fn empty_set_is_expressible_but_memberless() {
        let e = ExnSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.some_member(), None);
        assert!(!e.contains(&urk()));
    }

    #[test]
    fn leq_is_a_partial_order() {
        let sets = [
            ExnSet::empty(),
            ExnSet::singleton(urk()),
            ExnSet::from_iter([urk(), Exception::Overflow]),
            ExnSet::All,
        ];
        for a in &sets {
            assert!(a.leq(a), "reflexive");
            for b in &sets {
                for c in &sets {
                    if a.leq(b) && b.leq(c) {
                        assert!(a.leq(c), "transitive");
                    }
                }
                if a.leq(b) && b.leq(a) {
                    assert_eq!(a, b, "antisymmetric");
                }
            }
        }
    }

    #[test]
    fn display_is_stable() {
        let s = ExnSet::from_iter([urk(), Exception::DivideByZero]);
        assert_eq!(s.to_string(), "{DivideByZero, UserError \"Urk\"}");
        assert_eq!(ExnSet::All.to_string(), "{ALL}");
    }
}
