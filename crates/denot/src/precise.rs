//! The **precise** baseline semantics — §3.4's first rejected design.
//!
//! This is the ML/FL-style treatment: an exceptional value carries exactly
//! *one* exception, the language definition fixes the evaluation order of
//! primitive operations (configurably left-to-right or right-to-left, so
//! the law validator can exhibit the order-dependence), exceptions are
//! distinct from non-termination, and `case` simply propagates an
//! exceptional scrutinee.
//!
//! Under this semantics `e1 + e2 ≠ e2 + e1` whenever the two operands raise
//! different exceptions — the paper's motivating failure — and the law
//! validator in `urk-transform` uses exactly this evaluator to demonstrate
//! which transformations the precise design forfeits.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use urk_syntax::core::{Alt, AltCon, Expr, PrimOp};
use urk_syntax::{Exception, Symbol};

/// Which operand of a primitive a precise implementation evaluates first.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum EvalOrder {
    #[default]
    LeftToRight,
    RightToLeft,
}

/// A denotation in the precise semantics: normal, one exception, or ⊥
/// (which here is *distinct* from every exception).
#[derive(Clone, Debug)]
pub enum PDenot {
    Ok(PValue),
    Exn(Exception),
    Bot,
}

impl PDenot {
    /// True if the result is an exception or divergence.
    pub fn is_abnormal(&self) -> bool {
        !matches!(self, PDenot::Ok(_))
    }
}

/// A weak-head-normal value.
#[derive(Clone)]
pub enum PValue {
    Int(i64),
    Char(char),
    Str(Rc<str>),
    Con(Symbol, Vec<PThunk>),
    Fun(Rc<PClosure>),
}

impl fmt::Debug for PValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PValue::Int(n) => write!(f, "Int({n})"),
            PValue::Char(c) => write!(f, "Char({c:?})"),
            PValue::Str(s) => write!(f, "Str({s:?})"),
            PValue::Con(c, fs) => write!(f, "Con({c}, {} fields)", fs.len()),
            PValue::Fun(_) => f.write_str("Fun(<closure>)"),
        }
    }
}

/// A function closure.
pub struct PClosure {
    pub param: Symbol,
    pub body: Rc<Expr>,
    pub env: PEnv,
}

/// A memoizing lazy thunk.
pub type PThunk = Rc<PThunkCell>;

/// Thunk states mirror the imprecise evaluator's.
pub enum PThunkState {
    Pending(Rc<Expr>, PEnv),
    Evaluating,
    Done(PDenot),
}

pub struct PThunkCell {
    pub state: RefCell<PThunkState>,
}

impl PThunkCell {
    pub fn pending(e: Rc<Expr>, env: PEnv) -> PThunk {
        Rc::new(PThunkCell {
            state: RefCell::new(PThunkState::Pending(e, env)),
        })
    }

    pub fn done(d: PDenot) -> PThunk {
        Rc::new(PThunkCell {
            state: RefCell::new(PThunkState::Done(d)),
        })
    }
}

/// A persistent environment (linked list).
#[derive(Clone, Default)]
pub struct PEnv(Option<Rc<PEnvNode>>);

struct PEnvNode {
    name: Symbol,
    thunk: PThunk,
    rest: PEnv,
}

impl PEnv {
    pub fn empty() -> PEnv {
        PEnv(None)
    }

    pub fn bind(&self, name: Symbol, thunk: PThunk) -> PEnv {
        PEnv(Some(Rc::new(PEnvNode {
            name,
            thunk,
            rest: self.clone(),
        })))
    }

    pub fn lookup(&self, name: Symbol) -> Option<PThunk> {
        let mut cur = self;
        while let Some(n) = &cur.0 {
            if n.name == name {
                return Some(n.thunk.clone());
            }
            cur = &n.rest;
        }
        None
    }
}

/// Configuration for the precise evaluator.
#[derive(Clone, Debug)]
pub struct PreciseConfig {
    pub fuel: u64,
    pub max_depth: u32,
    pub order: EvalOrder,
    /// §3.4's "go non-deterministic" design: when set, the evaluation order
    /// of each primitive is decided by the oracle instead of `order`, and
    /// `GetException` is treated as a *pure* function. Used by
    /// [`crate::nondet`].
    pub oracle_driven: bool,
}

impl Default for PreciseConfig {
    fn default() -> PreciseConfig {
        PreciseConfig {
            fuel: 1_000_000,
            max_depth: 600,
            order: EvalOrder::LeftToRight,
            oracle_driven: false,
        }
    }
}

/// The precise-semantics evaluator.
///
/// # Panics
///
/// Panics on dynamically ill-typed programs; type-check first.
pub struct PreciseEvaluator {
    config: PreciseConfig,
    fuel: Cell<u64>,
    depth: Cell<u32>,
    /// Oracle decision tape (used when `oracle_driven`).
    oracle_bits: RefCell<Vec<bool>>,
    oracle_cursor: Cell<usize>,
    oracle_consumed: Cell<usize>,
}

impl PreciseEvaluator {
    pub fn new(config: PreciseConfig) -> PreciseEvaluator {
        let fuel = config.fuel;
        PreciseEvaluator {
            config,
            fuel: Cell::new(fuel),
            depth: Cell::new(0),
            oracle_bits: RefCell::new(Vec::new()),
            oracle_cursor: Cell::new(0),
            oracle_consumed: Cell::new(0),
        }
    }

    /// Installs an oracle decision tape (positions beyond the tape default
    /// to `false`) and resets fuel.
    pub fn set_oracle(&self, bits: Vec<bool>) {
        *self.oracle_bits.borrow_mut() = bits;
        self.oracle_cursor.set(0);
        self.oracle_consumed.set(0);
        self.fuel.set(self.config.fuel);
        self.depth.set(0);
    }

    /// Number of oracle decisions consumed by the last run.
    pub fn oracle_decisions(&self) -> usize {
        self.oracle_consumed.get()
    }

    fn decide(&self) -> bool {
        let i = self.oracle_consumed.get();
        self.oracle_consumed.set(i + 1);
        self.oracle_bits.borrow().get(i).copied().unwrap_or(false)
    }

    pub fn eval_closed(&self, e: &Rc<Expr>) -> PDenot {
        self.eval(e, &PEnv::empty())
    }

    pub fn eval(&self, e: &Rc<Expr>, env: &PEnv) -> PDenot {
        let f = self.fuel.get();
        if f == 0 {
            return PDenot::Bot;
        }
        self.fuel.set(f - 1);
        let d = self.depth.get();
        if d >= self.config.max_depth {
            return PDenot::Bot;
        }
        self.depth.set(d + 1);
        let r = self.eval_inner(e, env);
        self.depth.set(self.depth.get() - 1);
        r
    }

    fn eval_inner(&self, e: &Rc<Expr>, env: &PEnv) -> PDenot {
        match &**e {
            Expr::Var(v) => {
                let t = env
                    .lookup(*v)
                    .unwrap_or_else(|| panic!("unbound variable '{v}'"));
                self.force(&t)
            }
            Expr::Int(n) => PDenot::Ok(PValue::Int(*n)),
            Expr::Char(c) => PDenot::Ok(PValue::Char(*c)),
            Expr::Str(s) => PDenot::Ok(PValue::Str(s.clone())),
            Expr::Con(c, args) if self.config.oracle_driven && c.as_str() == "GetException" => {
                // The non-deterministic design's *pure* getException.
                match self.eval(&args[0], env) {
                    PDenot::Ok(v) => PDenot::Ok(PValue::Con(
                        Symbol::intern("OK"),
                        vec![PThunkCell::done(PDenot::Ok(v))],
                    )),
                    PDenot::Exn(x) => PDenot::Ok(PValue::Con(
                        Symbol::intern("Bad"),
                        vec![PThunkCell::done(PDenot::Ok(exception_to_pvalue(&x)))],
                    )),
                    PDenot::Bot => PDenot::Bot,
                }
            }
            Expr::Con(c, args) => {
                let fields = args
                    .iter()
                    .map(|a| PThunkCell::pending(a.clone(), env.clone()))
                    .collect();
                PDenot::Ok(PValue::Con(*c, fields))
            }
            Expr::Lam(x, b) => PDenot::Ok(PValue::Fun(Rc::new(PClosure {
                param: *x,
                body: b.clone(),
                env: env.clone(),
            }))),
            Expr::App(f, x) => match self.eval(f, env) {
                PDenot::Ok(PValue::Fun(clo)) => {
                    let arg = PThunkCell::pending(x.clone(), env.clone());
                    self.eval(&clo.body, &clo.env.bind(clo.param, arg))
                }
                PDenot::Ok(v) => panic!("application of non-function {v:?}"),
                abnormal => abnormal, // the argument is never touched
            },
            Expr::Let(x, rhs, body) => {
                let t = PThunkCell::pending(rhs.clone(), env.clone());
                self.eval(body, &env.bind(*x, t))
            }
            Expr::LetRec(binds, body) => {
                let env2 = self.bind_recursive(binds, env);
                self.eval(body, &env2)
            }
            Expr::Case(scrut, alts) => match self.eval(scrut, env) {
                PDenot::Ok(v) => {
                    for alt in alts {
                        if let Some(env2) = match_alt(alt, &v, env) {
                            return self.eval(&alt.rhs, &env2);
                        }
                    }
                    PDenot::Exn(Exception::PatternMatchFail("case".into()))
                }
                abnormal => abnormal, // precise: no exception-finding mode
            },
            Expr::Prim(op, args) => self.eval_prim(*op, args, env),
            Expr::Raise(x) => match self.eval(x, env) {
                PDenot::Ok(v) => match self.pvalue_to_exception(&v) {
                    Ok(exn) => PDenot::Exn(exn),
                    Err(d) => d,
                },
                abnormal => abnormal,
            },
        }
    }

    pub fn bind_recursive(&self, binds: &[(Symbol, Rc<Expr>)], env: &PEnv) -> PEnv {
        let thunks: Vec<PThunk> = binds
            .iter()
            .map(|(_, rhs)| PThunkCell::pending(rhs.clone(), PEnv::empty()))
            .collect();
        let mut env2 = env.clone();
        for ((name, _), t) in binds.iter().zip(&thunks) {
            env2 = env2.bind(*name, t.clone());
        }
        for ((_, rhs), t) in binds.iter().zip(&thunks) {
            *t.state.borrow_mut() = PThunkState::Pending(rhs.clone(), env2.clone());
        }
        env2
    }

    pub fn force(&self, t: &PThunk) -> PDenot {
        let pending = {
            match &*t.state.borrow() {
                PThunkState::Done(d) => return d.clone(),
                PThunkState::Evaluating => return PDenot::Bot,
                PThunkState::Pending(e, env) => (e.clone(), env.clone()),
            }
        };
        *t.state.borrow_mut() = PThunkState::Evaluating;
        let d = self.eval(&pending.0, &pending.1);
        *t.state.borrow_mut() = PThunkState::Done(d.clone());
        d
    }

    fn eval_prim(&self, op: PrimOp, args: &[Rc<Expr>], env: &PEnv) -> PDenot {
        match op {
            PrimOp::Seq => match self.eval(&args[0], env) {
                PDenot::Ok(_) => self.eval(&args[1], env),
                abnormal => abnormal,
            },
            PrimOp::MapExn => {
                // Precise mapException: rewrite the single exception.
                match self.eval(&args[1], env) {
                    PDenot::Exn(x) => {
                        let f = self.eval(&args[0], env);
                        let arg = PThunkCell::done(PDenot::Ok(exception_to_pvalue(&x)));
                        match f {
                            PDenot::Ok(PValue::Fun(clo)) => {
                                match self.eval(&clo.body, &clo.env.bind(clo.param, arg)) {
                                    PDenot::Ok(v) => match self.pvalue_to_exception(&v) {
                                        Ok(exn) => PDenot::Exn(exn),
                                        Err(d) => d,
                                    },
                                    abnormal => abnormal,
                                }
                            }
                            PDenot::Ok(v) => panic!("mapException of non-function {v:?}"),
                            abnormal => abnormal,
                        }
                    }
                    other => other,
                }
            }
            PrimOp::UnsafeGetException => match self.eval(&args[0], env) {
                PDenot::Ok(v) => PDenot::Ok(PValue::Con(
                    Symbol::intern("OK"),
                    vec![PThunkCell::done(PDenot::Ok(v))],
                )),
                PDenot::Exn(x) => PDenot::Ok(PValue::Con(
                    Symbol::intern("Bad"),
                    vec![PThunkCell::done(PDenot::Ok(exception_to_pvalue(&x)))],
                )),
                PDenot::Bot => PDenot::Bot,
            },
            PrimOp::UnsafeIsException => match self.eval(&args[0], env) {
                PDenot::Ok(_) => PDenot::Ok(pbool(false)),
                PDenot::Exn(_) => PDenot::Ok(pbool(true)),
                PDenot::Bot => PDenot::Bot,
            },
            _ if op.arity() == 1 => match self.eval(&args[0], env) {
                PDenot::Ok(v) => self.prim_unary(op, &v),
                abnormal => abnormal,
            },
            _ => {
                // The defining feature of the precise design: a *fixed*
                // evaluation order, first exception wins.
                let left_first = if self.config.oracle_driven {
                    !self.decide()
                } else {
                    self.config.order == EvalOrder::LeftToRight
                };
                let (first, second) = if left_first {
                    (&args[0], &args[1])
                } else {
                    (&args[1], &args[0])
                };
                let d1 = match self.eval(first, env) {
                    PDenot::Ok(v) => v,
                    abnormal => return abnormal,
                };
                let d2 = match self.eval(second, env) {
                    PDenot::Ok(v) => v,
                    abnormal => return abnormal,
                };
                let (vl, vr) = if left_first { (d1, d2) } else { (d2, d1) };
                self.prim_binary(op, &vl, &vr)
            }
        }
    }

    fn prim_unary(&self, op: PrimOp, v: &PValue) -> PDenot {
        match (op, v) {
            (PrimOp::Neg, PValue::Int(n)) => match n.checked_neg() {
                Some(m) => PDenot::Ok(PValue::Int(m)),
                None => PDenot::Exn(Exception::Overflow),
            },
            (PrimOp::ShowInt, PValue::Int(n)) => {
                PDenot::Ok(PValue::Str(Rc::from(n.to_string().as_str())))
            }
            (PrimOp::StrLen, PValue::Str(s)) => PDenot::Ok(PValue::Int(s.chars().count() as i64)),
            (PrimOp::Ord, PValue::Char(c)) => PDenot::Ok(PValue::Int(*c as i64)),
            (PrimOp::Chr, PValue::Int(n)) => {
                match u32::try_from(*n).ok().and_then(char::from_u32) {
                    Some(c) => PDenot::Ok(PValue::Char(c)),
                    None => PDenot::Exn(Exception::Overflow),
                }
            }
            _ => panic!("ill-typed unary primop {op:?}"),
        }
    }

    fn prim_binary(&self, op: PrimOp, v1: &PValue, v2: &PValue) -> PDenot {
        use PrimOp::*;
        let int = |n: Option<i64>| match n {
            Some(n) => PDenot::Ok(PValue::Int(n)),
            None => PDenot::Exn(Exception::Overflow),
        };
        match (op, v1, v2) {
            (Add, PValue::Int(a), PValue::Int(b)) => int(a.checked_add(*b)),
            (Sub, PValue::Int(a), PValue::Int(b)) => int(a.checked_sub(*b)),
            (Mul, PValue::Int(a), PValue::Int(b)) => int(a.checked_mul(*b)),
            (Div, PValue::Int(_), PValue::Int(0)) => PDenot::Exn(Exception::DivideByZero),
            (Div, PValue::Int(a), PValue::Int(b)) => int(a.checked_div(*b)),
            (Mod, PValue::Int(_), PValue::Int(0)) => PDenot::Exn(Exception::DivideByZero),
            (Mod, PValue::Int(a), PValue::Int(b)) => int(a.checked_rem(*b)),
            (IntEq, PValue::Int(a), PValue::Int(b)) => PDenot::Ok(pbool(a == b)),
            (IntLt, PValue::Int(a), PValue::Int(b)) => PDenot::Ok(pbool(a < b)),
            (IntLe, PValue::Int(a), PValue::Int(b)) => PDenot::Ok(pbool(a <= b)),
            (IntGt, PValue::Int(a), PValue::Int(b)) => PDenot::Ok(pbool(a > b)),
            (IntGe, PValue::Int(a), PValue::Int(b)) => PDenot::Ok(pbool(a >= b)),
            (CharEq, PValue::Char(a), PValue::Char(b)) => PDenot::Ok(pbool(a == b)),
            (StrEq, PValue::Str(a), PValue::Str(b)) => PDenot::Ok(pbool(a == b)),
            (StrAppend, PValue::Str(a), PValue::Str(b)) => {
                PDenot::Ok(PValue::Str(Rc::from(format!("{a}{b}").as_str())))
            }
            _ => panic!("ill-typed binary primop {op:?}"),
        }
    }

    fn pvalue_to_exception(&self, v: &PValue) -> Result<Exception, PDenot> {
        let PValue::Con(name, fields) = v else {
            panic!("raise applied to non-Exception value {v:?}");
        };
        let payload = match fields.first() {
            None => None,
            Some(t) => match self.force(t) {
                PDenot::Ok(PValue::Str(s)) => Some(s.to_string()),
                PDenot::Ok(v) => panic!("exception payload is not a string: {v:?}"),
                abnormal => return Err(abnormal),
            },
        };
        Ok(Exception::from_constructor(*name, payload.as_deref())
            .unwrap_or_else(|| panic!("unknown exception constructor '{name}'")))
    }

    /// Renders a denotation to `depth` (for the nondet outcome sets).
    pub fn show(&self, d: &PDenot, depth: u32) -> String {
        match d {
            PDenot::Bot => "⊥".into(),
            PDenot::Exn(e) => format!("Exn {e}"),
            PDenot::Ok(v) => self.show_value(v, depth, false),
        }
    }

    fn show_value(&self, v: &PValue, depth: u32, nested: bool) -> String {
        match v {
            PValue::Int(n) => n.to_string(),
            PValue::Char(c) => format!("{c:?}"),
            PValue::Str(s) => format!("{s:?}"),
            PValue::Fun(_) => "<function>".into(),
            PValue::Con(c, fields) if fields.is_empty() => c.to_string(),
            PValue::Con(c, fields) => {
                if depth == 0 {
                    return format!("{c} ...");
                }
                let mut out = String::new();
                if nested {
                    out.push('(');
                }
                out.push_str(&c.to_string());
                for f in fields {
                    out.push(' ');
                    let inner = self.force(f);
                    out.push_str(&match inner {
                        PDenot::Bot => "⊥".into(),
                        PDenot::Exn(e) => format!("(Exn {e})"),
                        PDenot::Ok(v) => self.show_value(&v, depth - 1, true),
                    });
                }
                if nested {
                    out.push(')');
                }
                out
            }
        }
    }
}

fn match_alt(alt: &Alt, v: &PValue, env: &PEnv) -> Option<PEnv> {
    match (&alt.con, v) {
        (AltCon::Default, _) => {
            let mut env2 = env.clone();
            if let Some(b) = alt.binders.first() {
                env2 = env2.bind(*b, PThunkCell::done(PDenot::Ok(v.clone())));
            }
            Some(env2)
        }
        (AltCon::Int(n), PValue::Int(m)) if n == m => Some(env.clone()),
        (AltCon::Char(a), PValue::Char(b)) if a == b => Some(env.clone()),
        (AltCon::Str(a), PValue::Str(b)) if **a == **b => Some(env.clone()),
        (AltCon::Con(c), PValue::Con(d, fields)) if c == d => {
            let mut env2 = env.clone();
            for (b, f) in alt.binders.iter().zip(fields) {
                env2 = env2.bind(*b, f.clone());
            }
            Some(env2)
        }
        _ => None,
    }
}

/// The information order of the precise domain: `Bot` below everything,
/// exceptions only below themselves, values structural.
pub fn pdenot_leq(ev: &PreciseEvaluator, d1: &PDenot, d2: &PDenot, depth: u32) -> bool {
    match (d1, d2) {
        (PDenot::Bot, _) => true,
        (_, PDenot::Bot) => false,
        (PDenot::Exn(a), PDenot::Exn(b)) => a == b,
        (PDenot::Exn(_), PDenot::Ok(_)) | (PDenot::Ok(_), PDenot::Exn(_)) => false,
        (PDenot::Ok(v1), PDenot::Ok(v2)) => pvalue_leq(ev, v1, v2, depth),
    }
}

fn pvalue_leq(ev: &PreciseEvaluator, v1: &PValue, v2: &PValue, depth: u32) -> bool {
    if depth == 0 {
        return true;
    }
    match (v1, v2) {
        (PValue::Int(a), PValue::Int(b)) => a == b,
        (PValue::Char(a), PValue::Char(b)) => a == b,
        (PValue::Str(a), PValue::Str(b)) => a == b,
        (PValue::Con(c1, f1), PValue::Con(c2, f2)) => {
            c1 == c2
                && f1.len() == f2.len()
                && f1.iter().zip(f2).all(|(a, b)| {
                    let da = ev.force(a);
                    let db = ev.force(b);
                    pdenot_leq(ev, &da, &db, depth - 1)
                })
        }
        (PValue::Fun(_), PValue::Fun(_)) => {
            // Probe with marked exceptions and with ⊥.
            let probes = [
                PDenot::Exn(Exception::UserError("#probe".into())),
                PDenot::Bot,
                PDenot::Ok(PValue::Int(0)),
            ];
            probes.iter().all(|p| {
                let r1 = papply(ev, v1, p.clone());
                let r2 = papply(ev, v2, p.clone());
                pdenot_leq(ev, &r1, &r2, depth - 1)
            })
        }
        _ => false,
    }
}

fn papply(ev: &PreciseEvaluator, f: &PValue, arg: PDenot) -> PDenot {
    let PValue::Fun(clo) = f else {
        panic!("probe application of a non-function");
    };
    let t = PThunkCell::done(arg);
    ev.eval(&clo.body, &clo.env.bind(clo.param, t))
}

/// Compares two precise denotations (see [`crate::compare::Verdict`]).
pub fn compare_pdenots(
    ev: &PreciseEvaluator,
    d1: &PDenot,
    d2: &PDenot,
    depth: u32,
) -> crate::compare::Verdict {
    use crate::compare::Verdict;
    match (pdenot_leq(ev, d1, d2, depth), pdenot_leq(ev, d2, d1, depth)) {
        (true, true) => Verdict::Equal,
        (true, false) => Verdict::LeftRefinesToRight,
        (false, true) => Verdict::RightRefinesToLeft,
        (false, false) => Verdict::Incomparable,
    }
}

fn pbool(b: bool) -> PValue {
    PValue::Con(Symbol::intern(if b { "True" } else { "False" }), vec![])
}

/// Converts a runtime exception to an in-language value.
pub fn exception_to_pvalue(e: &Exception) -> PValue {
    let name = e.constructor_symbol();
    match e.payload() {
        None => PValue::Con(name, vec![]),
        Some(s) => PValue::Con(
            name,
            vec![PThunkCell::done(PDenot::Ok(PValue::Str(Rc::from(s))))],
        ),
    }
}
