//! The semantic domain `M t = t⊥ ⊕ P(E)⊥` of §4.1, in its tagged
//! presentation:
//!
//! ```text
//! M t = { Ok v  | v ∈ t }
//!     ∪ { Bad s | s ⊆ E }
//!     ∪ { Bad (E ∪ {NonTermination}) }        -- this is ⊥
//! ```
//!
//! Values are *lazy*: constructor fields are unevaluated denotational
//! thunks, so exceptional values can hide inside data structures exactly as
//! §3.2's `zipWith` examples require.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use urk_syntax::core::Expr;
use urk_syntax::Symbol;

use crate::exnset::ExnSet;

/// An element of the semantic domain.
#[derive(Clone, Debug)]
pub enum Denot {
    /// A normal value.
    Ok(Value),
    /// An exceptional value carrying a set of exceptions; `Bad(All)` is ⊥.
    Bad(ExnSet),
}

impl Denot {
    /// The bottom element.
    pub fn bottom() -> Denot {
        Denot::Bad(ExnSet::bottom())
    }

    /// The paper's auxiliary `S(·)`: the empty set for a normal value, the
    /// exception set for an exceptional one (§4.2).
    pub fn exn_part(&self) -> ExnSet {
        match self {
            Denot::Ok(_) => ExnSet::empty(),
            Denot::Bad(s) => s.clone(),
        }
    }

    /// True if this is `⊥`.
    pub fn is_bottom(&self) -> bool {
        matches!(self, Denot::Bad(s) if s.is_all())
    }

    /// True if this is any exceptional value.
    pub fn is_bad(&self) -> bool {
        matches!(self, Denot::Bad(_))
    }
}

/// A (weak-head) normal value.
#[derive(Clone)]
pub enum Value {
    Int(i64),
    Char(char),
    Str(Rc<str>),
    /// A constructor value with lazy fields.
    Con(Symbol, Vec<DThunk>),
    /// A function closure. A lambda is a *normal* value (§4.2: `λx.⊥ ≠ ⊥`).
    Fun(Rc<Closure>),
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "Int({n})"),
            Value::Char(c) => write!(f, "Char({c:?})"),
            Value::Str(s) => write!(f, "Str({s:?})"),
            Value::Con(c, fields) => write!(f, "Con({c}, {} fields)", fields.len()),
            Value::Fun(_) => f.write_str("Fun(<closure>)"),
        }
    }
}

/// A function closure.
pub struct Closure {
    pub param: Symbol,
    pub body: Rc<Expr>,
    pub env: Env,
}

impl fmt::Debug for Closure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Closure(\\{} -> ...)", self.param)
    }
}

/// A shared, memoizing denotational thunk.
pub type DThunk = Rc<Thunk>;

/// The state of a thunk.
pub enum ThunkState {
    /// Not yet forced.
    Pending(Rc<Expr>, Env),
    /// Currently being forced. Re-entrant forcing is a semantic black hole
    /// and denotes ⊥ (a directly self-referential value, §5.2).
    Evaluating,
    /// Forced to a denotation.
    Done(Denot),
}

/// A memoizing thunk cell.
pub struct Thunk {
    pub state: RefCell<ThunkState>,
}

impl Thunk {
    /// A thunk that will evaluate `expr` in `env`.
    pub fn pending(expr: Rc<Expr>, env: Env) -> DThunk {
        Rc::new(Thunk {
            state: RefCell::new(ThunkState::Pending(expr, env)),
        })
    }

    /// An already-forced thunk.
    pub fn done(d: Denot) -> DThunk {
        Rc::new(Thunk {
            state: RefCell::new(ThunkState::Done(d)),
        })
    }

    /// The `Bad {}` thunk used by the exception-finding mode of §4.3.
    pub fn bad_empty() -> DThunk {
        Thunk::done(Denot::Bad(ExnSet::empty()))
    }
}

impl fmt::Debug for Thunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.state.borrow() {
            ThunkState::Pending(_, _) => f.write_str("Thunk(pending)"),
            ThunkState::Evaluating => f.write_str("Thunk(evaluating)"),
            ThunkState::Done(d) => write!(f, "Thunk({d:?})"),
        }
    }
}

/// A persistent environment: an immutable linked list of bindings.
#[derive(Clone, Default)]
pub struct Env(Option<Rc<EnvNode>>);

struct EnvNode {
    name: Symbol,
    thunk: DThunk,
    rest: Env,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env(None)
    }

    /// Extends with one binding.
    pub fn bind(&self, name: Symbol, thunk: DThunk) -> Env {
        Env(Some(Rc::new(EnvNode {
            name,
            thunk,
            rest: self.clone(),
        })))
    }

    /// Looks up a variable.
    pub fn lookup(&self, name: Symbol) -> Option<DThunk> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if node.name == name {
                return Some(node.thunk.clone());
            }
            cur = &node.rest;
        }
        None
    }

    /// Number of bindings (for diagnostics).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        while let Some(node) = &cur.0 {
            n += 1;
            cur = &node.rest;
        }
        n
    }

    /// True if no bindings are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Env({} bindings)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exn_part_matches_the_paper_s_s_function() {
        assert!(Denot::Ok(Value::Int(1)).exn_part().is_empty());
        let bad = Denot::Bad(ExnSet::singleton(urk_syntax::Exception::DivideByZero));
        assert!(!bad.exn_part().is_empty());
        assert!(Denot::bottom().exn_part().is_all());
    }

    #[test]
    fn env_shadowing_and_lookup() {
        let x = Symbol::intern("x");
        let y = Symbol::intern("y");
        let env = Env::empty()
            .bind(x, Thunk::done(Denot::Ok(Value::Int(1))))
            .bind(y, Thunk::done(Denot::Ok(Value::Int(2))))
            .bind(x, Thunk::done(Denot::Ok(Value::Int(3))));
        let got = env.lookup(x).expect("bound");
        match &*got.state.borrow() {
            ThunkState::Done(Denot::Ok(Value::Int(n))) => assert_eq!(*n, 3),
            _ => panic!("expected the innermost binding"),
        }
        assert!(env.lookup(Symbol::intern("z")).is_none());
        assert_eq!(env.len(), 3);
        assert!(Env::empty().is_empty());
    }

    #[test]
    fn bad_empty_thunk_is_the_exception_finding_probe() {
        let t = Thunk::bad_empty();
        match &*t.state.borrow() {
            ThunkState::Done(Denot::Bad(s)) => assert!(s.is_empty()),
            _ => panic!("expected a forced Bad {{}} thunk"),
        };
    }
}
