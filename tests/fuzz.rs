//! The coverage-guided differential fuzzer, held to its own contracts:
//! byte-for-byte determinism per seed, a clean replay of the checked-in
//! minimized corpus, and the seeded-bug acceptance criterion — arming
//! `sabotage_async_restore` must produce a found, shrunk, replayable
//! counterexample whose minimized form fails the *same* check.
//!
//! Determinism is the property that makes a fuzzer a regression tool
//! rather than a slot machine: every number in the summary line and
//! every byte of the persisted corpus is a function of the seed alone.

use std::fs;
use std::path::PathBuf;

use urk_fuzz::{list_cases, load_case, run_fuzz, run_oracle, CheckKind, FuzzConfig, OracleConfig};

/// A fresh per-test scratch directory (removed and recreated on entry,
/// so reruns never see stale cases).
fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("urk-fuzz-it-{}-{}", tag, std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).expect("create scratch dir");
    d
}

/// Sorted `(name, bytes)` snapshot of a directory.
fn dir_snapshot(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .expect("read dir")
        .map(|e| {
            let e = e.expect("dir entry");
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).expect("read file"),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn two_campaigns_with_one_seed_agree_byte_for_byte() {
    let mut runs = Vec::new();
    for tag in ["a", "b"] {
        let dir = scratch(&format!("det-{tag}"));
        let cfg = FuzzConfig {
            seed: 7,
            execs: 160,
            corpus_dir: Some(dir.clone()),
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg).expect("campaign runs");
        runs.push((report.deterministic_summary(), dir_snapshot(&dir)));
    }
    assert_eq!(runs[0].0, runs[1].0, "summary lines differ across runs");
    assert_eq!(runs[0].1, runs[1].1, "persisted corpora differ across runs");
    assert!(!runs[0].1.is_empty(), "campaign persisted no corpus");
}

#[test]
fn checked_in_corpus_replays_clean() {
    let corpus = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let cases = list_cases(&corpus);
    assert!(!cases.is_empty(), "no checked-in corpus at {corpus:?}");
    let cfg = OracleConfig {
        chaos_seeds: vec![3],
        ..OracleConfig::default()
    };
    for path in cases {
        let src = fs::read_to_string(&path).expect("read case");
        let case = load_case(&src).expect("load case");
        let v = run_oracle(&case.ctx, &case.query, &cfg);
        assert!(v.failure.is_none(), "{}: {:?}", path.display(), v.failure);
    }
}

#[test]
fn sabotage_is_found_shrunk_and_replayable() {
    let out = scratch("sabotage");
    let cfg = FuzzConfig {
        sabotage: true,
        execs: 400,
        out_dir: Some(out.clone()),
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&cfg).expect("campaign runs");
    let cx = report
        .counterexample
        .expect("the seeded sabotage bug was not found");
    assert_eq!(cx.kind, CheckKind::ChaosFailure, "{}", cx.detail);
    assert!(
        cx.minimized.len() <= cx.original.len(),
        "shrinking grew the term:\n  original:  {}\n  minimized: {}",
        cx.original,
        cx.minimized
    );

    // The persisted counterexample replays self-contained and still
    // fails the same check under the same oracle settings.
    let path = cx.path.expect("counterexample was not persisted");
    let src = fs::read_to_string(&path).expect("read counterexample");
    let case = load_case(&src).expect("load counterexample");
    let oracle_cfg = OracleConfig {
        chaos_seeds: vec![1u64.wrapping_mul(0x9E37_79B9_7F4A_7C15)],
        sabotage: true,
        ..OracleConfig::default()
    };
    let v = run_oracle(&case.ctx, &case.query, &oracle_cfg);
    match v.failure {
        Some(f) => assert_eq!(f.kind, CheckKind::ChaosFailure, "{}", f.detail),
        None => panic!("minimized counterexample no longer fails"),
    }

    // Shrinking itself is deterministic: a second identical campaign
    // minimizes to the identical term.
    let out2 = scratch("sabotage-2");
    let report2 = run_fuzz(&FuzzConfig {
        out_dir: Some(out2),
        ..cfg
    })
    .expect("second campaign runs");
    let cx2 = report2.counterexample.expect("second run found nothing");
    assert_eq!(cx.minimized, cx2.minimized, "shrinking is nondeterministic");
}

#[test]
fn a_campaign_exercises_both_failure_free_paths() {
    // No sabotage, modest budget: the report's accounting must add up
    // and coverage must be non-trivial (features strictly exceed the
    // op-pair edge subset because stats buckets and outcomes count too).
    let report = run_fuzz(&FuzzConfig {
        seed: 5,
        execs: 120,
        ..FuzzConfig::default()
    })
    .expect("campaign runs");
    assert!(report.counterexample.is_none(), "clean campaign failed");
    assert_eq!(report.execs, 120);
    assert!(report.features > report.edges, "no non-edge features seen");
    assert!(report.plateau_at <= report.execs);
    let line = report.deterministic_summary();
    assert!(line.contains("failure=none"), "{line}");
}

#[test]
fn corpus_case_files_round_trip_through_their_own_prelude() {
    // A case file embeds its prelude; loading must succeed even if the
    // ambient fuzzer prelude later drifts. The save/load guarantee is
    // alpha-invariant (the admission gate compares canonical de Bruijn
    // bytes, since desugaring a reloaded case invents fresh binder
    // names), so that is what a re-render must preserve. Loaded queries
    // whose match-compiled form carries gensym binders print
    // unparseably and are legitimately unrenderable — the fuzzer never
    // persists those — but every checked-in case must load, and at
    // least some of the corpus must survive the full cycle.
    let corpus = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let cases = list_cases(&corpus);
    assert!(!cases.is_empty(), "no checked-in corpus");
    let mut survived = 0usize;
    for path in &cases {
        let src = fs::read_to_string(path).expect("read case");
        let case = load_case(&src).expect("every checked-in case loads");
        let rendered = urk_fuzz::render_case(&case.query, &[]);
        if let Ok(reloaded) = load_case(&rendered) {
            assert_eq!(
                urk_syntax::expr_canonical_bytes(&case.query),
                urk_syntax::expr_canonical_bytes(&reloaded.query),
                "query meaning drifted through render/load: {}",
                path.display()
            );
            survived += 1;
        }
    }
    assert!(
        survived * 2 >= cases.len(),
        "most corpus cases should survive a save/load cycle: {survived}/{}",
        cases.len()
    );
}
