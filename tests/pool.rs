//! The multi-worker evaluation service: determinism across worker
//! counts and submission orders, soundness of pooled (and cached)
//! answers against the denotational exception sets, fault isolation,
//! and bounded shutdown.
//!
//! The through-line is the paper's refinement criterion: a pool may
//! schedule jobs onto any worker and serve answers from a shared cache
//! *because* every admissible answer is a member of the expression's
//! denoted exception set (or its value) — so none of the pool's
//! non-determinism (scheduling, completion order, cache population
//! races) may ever be observable in the results.

use std::sync::Arc;
use std::time::{Duration, Instant};

use urk::{EvalPool, Exception, JobResult, Options, PoolConfig, Session, Supervisor};

/// A mixed corpus: values, top-level exceptions, exceptions buried in
/// lazy structure, and duplicates (so the cache has something to hit).
const CORPUS: &[&str] = &[
    "sum [1 .. 40]",
    r#"(1/0) + error "Urk""#,
    "zipWith (/) [1, 2] [1, 0]",
    "head (tail [1])",
    "take 5 (iterate (\\x -> x * 2) 1)",
    "sort [3, 1, 2]",
    "sum [1 .. 40]",
    r#"(1/0) + error "Urk""#,
    "length [1 .. 100]",
    "1 + 2 * 3",
];

/// Collapses a job result to what the semantics says is observable: the
/// rendered answer and the representative exception (stats legitimately
/// vary with cache behaviour and scheduling).
fn observable(results: &[JobResult]) -> Vec<Result<(String, Option<Exception>), String>> {
    results
        .iter()
        .map(|r| match r {
            Ok(out) => Ok((out.rendered.clone(), out.exception.clone())),
            Err(e) => Err(e.0.clone()),
        })
        .collect()
}

fn pool_with(workers: usize, cache_cap: usize) -> EvalPool {
    EvalPool::start(
        &[],
        Options::default(),
        PoolConfig {
            workers,
            cache_cap,
            ..PoolConfig::default()
        },
    )
    .expect("pool starts")
}

#[test]
fn batches_are_identical_across_worker_counts() {
    let baseline = {
        let pool = pool_with(1, 128);
        observable(&pool.eval_batch(CORPUS))
    };
    for workers in [2, 8] {
        let pool = pool_with(workers, 128);
        let got = observable(&pool.eval_batch(CORPUS));
        assert_eq!(
            got, baseline,
            "{workers} workers must answer exactly as 1 worker does"
        );
    }
}

#[test]
fn results_are_invariant_under_submission_order_permutation() {
    // A fixed permutation (reverse, then rotate by 3) — no RNG, so the
    // test is reproducible.
    let n = CORPUS.len();
    let perm: Vec<usize> = (0..n).map(|i| (n - 1 - i + 3) % n).collect();
    let permuted: Vec<&str> = perm.iter().map(|&i| CORPUS[i]).collect();

    let pool = pool_with(4, 128);
    let direct = observable(&pool.eval_batch(CORPUS));
    let shuffled = observable(&pool.eval_batch(&permuted));

    for (slot, &orig) in perm.iter().enumerate() {
        assert_eq!(
            shuffled[slot], direct[orig],
            "job {orig} must get the same answer wherever it sits in the batch"
        );
    }
}

#[test]
fn pooled_exception_outcomes_are_members_of_the_denoted_set() {
    // Run the corpus hot enough that later duplicates are served from
    // the cache — cached answers must satisfy the same refinement
    // criterion as fresh ones.
    let pool = pool_with(4, 128);
    let mut results = pool.eval_batch(CORPUS);
    results.extend(pool.eval_batch(CORPUS));

    let oracle = Session::new();
    for (i, result) in results.iter().enumerate() {
        let src = CORPUS[i % CORPUS.len()];
        let out = result.as_ref().expect("corpus jobs succeed");
        match &out.exception {
            None => {
                // A value answer is admissible only when the denotation
                // is not (purely) exceptional at the top.
                // (Structure-buried exceptions render inside the value.)
            }
            Some(e) => {
                let set = oracle
                    .exception_set(src)
                    .expect("oracle evaluates")
                    .unwrap_or_else(|| {
                        panic!("{src}: machine raised {e} but denotation is a value")
                    });
                assert!(
                    set.contains(e),
                    "{src}: representative {e} is not in the denoted set {set}"
                );
            }
        }
    }
    assert!(
        pool.cache_stats().hits > 0,
        "the second round must exercise cached answers"
    );
}

#[test]
fn worker_panics_fail_one_job_not_the_pool() {
    // With typechecking off, an ill-typed term panics the machine; the
    // supervisor turns that into an error on that job only.
    let options = Options {
        typecheck: false,
        ..Options::default()
    };
    let pool = EvalPool::start(
        &[],
        options,
        PoolConfig {
            workers: 2,
            ..PoolConfig::default()
        },
    )
    .expect("pool starts");

    let results = pool.eval_batch(&["1 2", "3 + 4", "1 2", "5 * 5"]);
    assert!(results[0].is_err(), "applying an integer must fail the job");
    assert_eq!(results[1].as_ref().expect("fine").rendered, "7");
    assert!(results[2].is_err());
    assert_eq!(results[3].as_ref().expect("fine").rendered, "25");

    // The pool keeps serving after the panics.
    assert_eq!(pool.eval_one("6 * 7").expect("usable").rendered, "42");
}

#[test]
fn per_job_deadlines_cancel_runaways_without_poisoning_neighbours() {
    let pool = EvalPool::start(
        &[],
        Options::default(),
        PoolConfig {
            workers: 2,
            supervisor: Supervisor::with_deadline(150),
            ..PoolConfig::default()
        },
    )
    .expect("pool starts");

    let diverge = "let f = \\n -> f (n + 1) in f 0";
    let results = pool.eval_batch(&["1 + 1", diverge, "2 + 2", diverge]);

    for i in [1, 3] {
        let out = results[i].as_ref().expect("cancellation is an answer");
        assert_eq!(out.exception, Some(Exception::Timeout));
        assert!(out.timed_out);
        assert!(
            !out.cache_hit,
            "an asynchronous Timeout answer must never come from the cache"
        );
    }
    assert_eq!(results[0].as_ref().expect("fine").rendered, "2");
    assert_eq!(results[2].as_ref().expect("fine").rendered, "4");

    // Run the runaway again: a Timeout is an async outcome, so the
    // previous round must not have cached it.
    let again = pool.eval_one(diverge).expect("cancelled again");
    assert!(!again.cache_hit);
    assert_eq!(again.exception, Some(Exception::Timeout));
}

#[test]
fn shutdown_now_cancels_in_flight_jobs_within_a_bounded_join() {
    // No deadlines: these jobs would run forever unless shutdown's
    // Interrupt stops them.
    let pool = Arc::new(
        EvalPool::start(
            &[],
            Options::default(),
            PoolConfig {
                workers: 2,
                supervisor: Supervisor::default(),
                ..PoolConfig::default()
            },
        )
        .expect("pool starts"),
    );

    let submitter = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || {
            let jobs = vec!["let f = \\n -> f (n + 1) in f 0"; 6];
            pool.eval_batch(&jobs)
        })
    };
    // Let the workers pick jobs up before pulling the plug.
    std::thread::sleep(Duration::from_millis(300));

    let started = Instant::now();
    assert!(
        pool.shutdown_now(Duration::from_secs(30)),
        "every worker must exit within the grace period"
    );
    assert!(started.elapsed() < Duration::from_secs(30));

    // The submitter unblocks: every slot has an answer — Interrupt for
    // the in-flight jobs, a pool error for the cancelled queue.
    let results = submitter.join().expect("submitter finishes");
    assert_eq!(results.len(), 6);
    let mut interrupted = 0;
    let mut cancelled = 0;
    for result in &results {
        match result {
            Ok(out) => {
                assert_eq!(out.exception, Some(Exception::Interrupt));
                interrupted += 1;
            }
            Err(e) => {
                assert!(e.0.contains("cancelled"), "unexpected error: {e}");
                cancelled += 1;
            }
        }
    }
    assert!(interrupted >= 1, "some job was in flight when we shut down");
    assert_eq!(interrupted + cancelled, 6);

    // Submitting after shutdown fails cleanly rather than hanging.
    assert!(pool.eval_one("1 + 1").is_err());
}

#[test]
fn a_poisoned_cache_shard_does_not_stop_the_pool() {
    // A panic while holding a shard lock used to poison it, and every
    // later `.expect("...poisoned")` lookup cascaded that one panic into
    // every worker that touched the shard. The locks now recover
    // (`into_inner`): the cache state is a plain map with no cross-lock
    // invariant, so the pool must keep serving — including through the
    // poisoned shard itself.
    let pool = pool_with(2, 64);
    assert_eq!(pool.eval_one("1 + 1").expect("warm").rendered, "2");

    for shard in 0..pool.shared_cache().shard_count() {
        pool.shared_cache().poison_shard_for_test(shard);
    }

    // Fresh evaluations route to (formerly) poisoned shards on both the
    // lookup and insert paths and still answer.
    let exprs: Vec<String> = (0..32).map(|i| format!("{i} * 2")).collect();
    let results = pool.eval_batch(&exprs);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("pool keeps serving").rendered,
            (i * 2).to_string()
        );
    }

    // The cache itself still works: a repeat of the batch hits it.
    let before = pool.cache_stats().hits;
    pool.eval_batch(&exprs);
    assert!(
        pool.cache_stats().hits >= before + exprs.len() as u64,
        "recovered shards must keep caching: {:?}",
        pool.cache_stats()
    );
}

#[test]
fn cache_hit_and_miss_counters_are_stamped_onto_per_result_stats() {
    // One worker makes hit/miss accounting deterministic: the first job
    // populates the cache, the next four hit it.
    let pool = pool_with(1, 64);
    let results = pool.eval_batch(&["sum [1 .. 30]"; 5]);

    let first = results[0].as_ref().expect("evals");
    assert!(!first.cache_hit);
    assert_eq!((first.stats.cache_hits, first.stats.cache_misses), (0, 1));
    assert!(first.stats.steps > 0);

    for r in &results[1..] {
        let out = r.as_ref().expect("evals");
        assert!(out.cache_hit);
        assert_eq!((out.stats.cache_hits, out.stats.cache_misses), (1, 0));
        assert_eq!(out.attempts, 0, "a cache hit runs no machine");
        assert_eq!(
            out.stats.steps, first.stats.steps,
            "a hit reports the populating evaluation's counters"
        );
        assert_eq!(out.rendered, first.rendered);
    }

    let cache = pool.cache_stats();
    assert_eq!((cache.hits, cache.misses, cache.insertions), (4, 1, 1));
    assert_eq!(cache.entries, 1);
    assert!((cache.hit_rate() - 0.8).abs() < 1e-9);

    // And the pooled answer matches a plain single-threaded session's.
    assert_eq!(
        first.rendered,
        Session::new()
            .eval("sum [1 .. 30]")
            .expect("evals")
            .rendered
    );
}

#[test]
fn disabling_the_cache_leaves_counters_untouched() {
    let pool = pool_with(2, 0);
    let results = pool.eval_batch(&["1 + 1", "1 + 1", "1 + 1"]);
    for r in &results {
        let out = r.as_ref().expect("evals");
        assert!(!out.cache_hit);
        assert_eq!((out.stats.cache_hits, out.stats.cache_misses), (0, 0));
    }
    let cache = pool.cache_stats();
    assert_eq!((cache.hits, cache.misses, cache.entries), (0, 0, 0));
}

#[test]
fn verify_code_does_not_perturb_the_cache_key() {
    // The arena verifier is run-only plumbing: it can panic on a corrupt
    // arena but never change an answer, so toggling it must address the
    // same cache entries (like the interrupt handle and the chaos plan).
    let session = Session::new();
    let expr = session.compile_expr("sum [1 .. 10]").expect("compiles");
    let options = Options::default();
    let plain = urk::cache::cache_key(
        &expr,
        &options.machine,
        &options.denot,
        options.render_depth,
        urk::Backend::Compiled,
        options.tier,
    );
    let verifying = urk::cache::cache_key(
        &expr,
        &urk::MachineConfig {
            verify_code: true,
            ..options.machine.clone()
        },
        &options.denot,
        options.render_depth,
        urk::Backend::Compiled,
        options.tier,
    );
    assert_eq!(
        plain, verifying,
        "verify_code must not address different cache entries"
    );
}

#[test]
fn optimized_sessions_match_pooled_answers() {
    // The optimiser now runs the exception-effect analysis and its
    // licensed rewrites over the whole program (Prelude included); an
    // optimised session must still answer exactly as the pool's plain
    // workers do on the golden corpus.
    let pool = pool_with(2, 64);
    let golden = observable(&pool.eval_batch(CORPUS));

    let mut optimized = Session::new();
    let report = optimized.optimize().expect("optimizes");
    assert!(report.total_rewrites() > 0);
    for (src, expected) in CORPUS.iter().zip(&golden) {
        let out = optimized.eval(src).expect("evals");
        let expected = expected.as_ref().expect("golden jobs succeed");
        assert_eq!(out.rendered, expected.0, "{src}");
        assert_eq!(out.exception, expected.1, "{src}");
    }
}

#[test]
fn pools_serve_user_programs_loaded_into_every_worker() {
    let pool = EvalPool::start(
        &["double x = x + x", "quad x = double (double x)"],
        Options::default(),
        PoolConfig {
            workers: 3,
            ..PoolConfig::default()
        },
    )
    .expect("pool starts");
    let results = pool.eval_batch(&["quad 10", "double 21", "quad (double 5)"]);
    let rendered: Vec<&str> = results
        .iter()
        .map(|r| r.as_ref().expect("evals").rendered.as_str())
        .collect();
    assert_eq!(rendered, ["40", "42", "40"]);

    // A bad source is rejected up front, on the calling thread.
    assert!(EvalPool::start(
        &["bad = 1 + 'c'"],
        Options::default(),
        PoolConfig::default()
    )
    .is_err());
}
