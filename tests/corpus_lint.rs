//! The static exception-effect lint, run over the checked-in minimized
//! fuzz corpus. The corpus is machine-generated and deterministic (one
//! seed produces it byte-for-byte), which makes it a good lint fixture:
//! terms the fuzzer kept for coverage are exactly the shapes — raises
//! buried under laziness, dead alternatives, partial matches — the lint
//! exists to flag. The snapshot pins the aggregate findings; if the
//! corpus is regenerated (`urk fuzz --seed 1 --execs 2000 --corpus
//! corpus`), recompute the counts printed by the failure message.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use urk_analysis::{lint_program, LintCode};
use urk_syntax::{desugar_program, parse_program, DataEnv};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Parses one case file into a lintable core program.
fn lint_case(src: &str) -> Vec<urk_analysis::Diagnostic> {
    let mut data = DataEnv::new();
    let parsed = parse_program(src).expect("corpus case parses");
    let prog = desugar_program(&parsed, &mut data).expect("corpus case desugars");
    lint_program(&prog, &data)
}

#[test]
fn every_corpus_case_lints_deterministically() {
    let mut paths: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "urk"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no checked-in corpus");
    for path in &paths {
        let src = fs::read_to_string(path).expect("read case");
        let a = lint_case(&src);
        let b = lint_case(&src);
        // Breadcrumb paths embed gensym counters that depend on global
        // intern state, so digit runs are normalized before comparing.
        let show = |ds: &[urk_analysis::Diagnostic]| {
            ds.iter()
                .map(|d| {
                    let mut norm = String::new();
                    let mut in_digits = false;
                    for c in format!("{}@{}:{}", d.code, d.binding, d.path).chars() {
                        if c.is_ascii_digit() {
                            if !in_digits {
                                norm.push('N');
                            }
                            in_digits = true;
                        } else {
                            in_digits = false;
                            norm.push(c);
                        }
                    }
                    norm
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            show(&a),
            show(&b),
            "{}: lint order unstable",
            path.display()
        );
        for d in &a {
            assert!(
                matches!(
                    d.code,
                    LintCode::AlwaysRaises
                        | LintCode::UnreachableAlt
                        | LintCode::DeadExceptionBranch
                        | LintCode::MatchMayFail
                        | LintCode::DiscardedException
                        | LintCode::DeadHandler
                ),
                "{}: unexpected code {:?}",
                path.display(),
                d.code
            );
        }
    }
}

#[test]
fn corpus_lint_histogram_matches_the_snapshot() {
    let mut histogram: BTreeMap<String, usize> = BTreeMap::new();
    let mut cases = 0usize;
    let mut entries: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "urk"))
        .collect();
    entries.sort();
    for path in entries {
        let src = fs::read_to_string(&path).expect("read case");
        cases += 1;
        for d in lint_case(&src) {
            // Every case embeds the same prelude; count only findings in
            // the generated term so the snapshot reflects the corpus.
            if d.binding == urk_syntax::Symbol::intern("counterexample") {
                *histogram.entry(d.code.to_string()).or_default() += 1;
            }
        }
    }
    let got: Vec<String> = histogram
        .iter()
        .map(|(code, n)| format!("{code}x{n}"))
        .collect();
    // Recorded from the checked-in corpus (seed 1, 2000 execs). The
    // fuzzer keeps raise-heavy, partial-match-heavy terms, so a corpus
    // with zero findings would itself be suspicious.
    let want = corpus_lint_snapshot();
    assert_eq!(
        got, want,
        "lint findings drifted for the checked-in corpus ({cases} cases); \
         if the corpus was deliberately regenerated, update corpus_lint_snapshot()"
    );
}

/// The pinned aggregate findings for `corpus/` — see the test above.
fn corpus_lint_snapshot() -> Vec<String> {
    // URK005 lights up heavily here by design: the fuzzer keeps terms
    // that bury raises under laziness, and a never-demanded binding with
    // a raising right-hand side is the canonical such shape.
    vec![
        "URK001x4".to_string(),
        "URK002x14".to_string(),
        "URK005x14".to_string(),
    ]
}
