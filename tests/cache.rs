//! The content-addressed result cache: byte-identical replay, key
//! sensitivity to every semantics-relevant configuration field, key
//! *insensitivity* to spelling, and the capacity bound under stress.

use urk::{
    cache_key, Backend, CacheKey, CachedEval, DenotConfig, EvalPool, MachineConfig, Options,
    OrderPolicy, PoolConfig, ResultCache, Session, Stats, Tier,
};

#[test]
fn a_cache_hit_renders_byte_identically_to_a_fresh_eval() {
    let pool = EvalPool::start(
        &[],
        Options::default(),
        PoolConfig {
            workers: 2,
            cache_cap: 128,
            ..PoolConfig::default()
        },
    )
    .expect("pool starts");

    let exprs = [
        "take 5 (iterate (\\x -> x * 2) 1)",
        r#"(1/0) + error "Urk""#,
        "zipWith (/) [1, 2] [1, 0]",
    ];
    // First round populates; the second is guaranteed to hit (inserts
    // complete before eval_batch returns).
    let cold = pool.eval_batch(&exprs);
    let warm = pool.eval_batch(&exprs);

    let fresh = Session::new();
    for ((src, cold), warm) in exprs.iter().zip(&cold).zip(&warm) {
        let cold = cold.as_ref().expect("evals");
        let warm = warm.as_ref().expect("evals");
        assert!(warm.cache_hit, "{src}: second round must hit");
        assert_eq!(warm.rendered, cold.rendered, "{src}");
        assert_eq!(warm.exception, cold.exception, "{src}");
        let direct = fresh.eval(src).expect("evals");
        assert_eq!(
            warm.rendered, direct.rendered,
            "{src}: replay must be byte-identical"
        );
        assert_eq!(warm.exception, direct.exception, "{src}");
    }
}

#[test]
fn every_semantics_relevant_config_field_changes_the_key() {
    let session = Session::new();
    let expr = session.compile_expr("1 + 2").expect("compiles");
    let m = MachineConfig::default();
    let d = DenotConfig::default();
    let base = cache_key(&expr, &m, &d, 32, Backend::Tree, Tier::One);

    type Mutation = (
        &'static str,
        Box<dyn Fn(&mut MachineConfig, &mut DenotConfig, &mut u32, &mut Backend, &mut Tier)>,
    );
    let mutations: Vec<Mutation> = vec![
        (
            "order=r",
            Box::new(|m, _, _, _, _| m.order = OrderPolicy::RightToLeft),
        ),
        (
            "order=s7",
            Box::new(|m, _, _, _, _| m.order = OrderPolicy::Seeded(7)),
        ),
        (
            "order=s8",
            Box::new(|m, _, _, _, _| m.order = OrderPolicy::Seeded(8)),
        ),
        (
            "blackholes",
            Box::new(|m, _, _, _, _| m.blackholes = urk::BlackholeMode::Loop),
        ),
        ("max_steps", Box::new(|m, _, _, _, _| m.max_steps += 1)),
        ("max_stack", Box::new(|m, _, _, _, _| m.max_stack += 1)),
        ("max_heap", Box::new(|m, _, _, _, _| m.max_heap += 1)),
        (
            "timeout_on_step_limit",
            Box::new(|m, _, _, _, _| m.timeout_on_step_limit = true),
        ),
        ("gc", Box::new(|m, _, _, _, _| m.gc = false)),
        (
            "gc_threshold",
            Box::new(|m, _, _, _, _| m.gc_threshold += 1),
        ),
        (
            "event_schedule",
            Box::new(|m, _, _, _, _| m.event_schedule.push((10, urk::Exception::Interrupt))),
        ),
        ("fuel", Box::new(|_, d, _, _, _| d.fuel += 1)),
        ("max_depth", Box::new(|_, d, _, _, _| d.max_depth += 1)),
        (
            "pessimistic",
            Box::new(|_, d, _, _, _| d.pessimistic_is_exception = true),
        ),
        ("render_depth", Box::new(|_, _, r, _, _| *r = 16)),
        ("backend", Box::new(|_, _, _, b, _| *b = Backend::Compiled)),
        ("tier", Box::new(|_, _, _, _, t| *t = Tier::Two)),
    ];

    let mut seen = vec![base.clone()];
    for (name, mutate) in &mutations {
        let mut m2 = m.clone();
        let mut d2 = d.clone();
        let mut rd = 32u32;
        let mut be = Backend::Tree;
        let mut tier = Tier::One;
        mutate(&mut m2, &mut d2, &mut rd, &mut be, &mut tier);
        let key = cache_key(&expr, &m2, &d2, rd, be, tier);
        assert_ne!(key, base, "changing {name} must change the cache key");
        assert!(
            !seen.contains(&key),
            "{name} must not collide with another mutation's key"
        );
        seen.push(key);
    }

    // Run-only plumbing is deliberately *not* part of the key.
    let mut m3 = m.clone();
    m3.interrupt = Some(urk::InterruptHandle::new());
    assert_eq!(
        cache_key(&expr, &m3, &d, 32, Backend::Tree, Tier::One),
        base
    );
}

#[test]
fn keys_are_invariant_under_spelling_and_recompilation() {
    let session = Session::new();
    let m = MachineConfig::default();
    let d = DenotConfig::default();
    let key = |src: &str| {
        cache_key(
            &session.compile_expr(src).expect("compiles"),
            &m,
            &d,
            32,
            Backend::Tree,
            Tier::One,
        )
    };

    // Alpha-renaming and whitespace don't change the program.
    assert_eq!(key("\\x -> x + 1"), key("\\y -> y + 1"));
    assert_eq!(key("1    +     2"), key("1 + 2"));
    // Recompiling the identical source mints fresh internal symbols;
    // the canonical form must not see them.
    assert_eq!(
        key("map (\\x -> x * x) [1, 2]"),
        key("map (\\x -> x * x) [1, 2]")
    );
    // ... but genuinely different programs differ.
    assert_ne!(key("1 + 2"), key("2 + 1"));
    assert_ne!(key("\\a -> \\b -> a"), key("\\a -> \\b -> b"));
}

#[test]
fn capacity_is_respected_under_ten_thousand_inserts() {
    let cache = ResultCache::new(256);
    for n in 0..10_000u64 {
        let key = CacheKey {
            fingerprint: n.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            expr: n.to_le_bytes().to_vec(),
            config: Vec::new(),
        };
        cache.insert(
            key,
            CachedEval {
                rendered: n.to_string(),
                exception: None,
                stats: Stats::default(),
            },
        );
        assert!(
            cache.entries() <= 256,
            "population exceeded capacity at insert {n}"
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.insertions, 10_000);
    assert!(stats.entries <= 256);
    assert!(
        stats.evictions >= 10_000 - 256,
        "almost everything must have been evicted: {stats:?}"
    );
}

#[test]
fn non_divisible_capacities_hold_their_full_population_under_stress() {
    // `ResultCache::new` used to compute one per-shard cap by integer
    // division, silently discarding `capacity % nshards` slots — a
    // `--cache-cap 31` cache (16 shards) could never hold more than 16
    // entries. The remainder is now spread over the leading shards, so
    // the full configured population must be reachable — and still
    // never exceeded — for capacities that don't divide evenly.
    for capacity in [17, 31, 100, 257] {
        let cache = ResultCache::new(capacity);
        let nshards = cache.shard_count() as u64;
        // Keys striped round-robin across shards (the fingerprint *is*
        // the shard selector modulo nshards), so every shard sees its
        // share and the remainder slots actually fill.
        for n in 0..4_000u64 {
            let key = CacheKey {
                fingerprint: n % nshards + (n / nshards) * nshards,
                expr: n.to_le_bytes().to_vec(),
                config: Vec::new(),
            };
            cache.insert(
                key,
                CachedEval {
                    rendered: n.to_string(),
                    exception: None,
                    stats: Stats::default(),
                },
            );
            assert!(
                cache.entries() <= capacity,
                "capacity {capacity}: population exceeded the bound at insert {n}"
            );
        }
        assert_eq!(
            cache.entries(),
            capacity,
            "capacity {capacity}: the full configured population must be reachable"
        );
        let stats = cache.stats();
        assert_eq!(stats.insertions, 4_000);
        assert_eq!(stats.evictions, 4_000 - capacity as u64);
    }
}

#[test]
fn pooled_eviction_respects_the_bound_end_to_end() {
    let pool = EvalPool::start(
        &[],
        Options::default(),
        PoolConfig {
            workers: 2,
            cache_cap: 8,
            ..PoolConfig::default()
        },
    )
    .expect("pool starts");
    let exprs: Vec<String> = (0..40).map(|i| format!("{i} + 0")).collect();
    let results = pool.eval_batch(&exprs);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.as_ref().expect("evals").rendered, i.to_string());
    }
    let stats = pool.cache_stats();
    assert!(stats.entries <= 8, "{stats:?}");
    assert_eq!(stats.capacity, 8);
    assert!(stats.evictions > 0, "{stats:?}");
}

#[test]
fn render_depth_is_an_option_not_a_constant() {
    // The old Session::eval hardcoded depth 32; it now honours
    // Options::render_depth for both plain and supervised evaluation.
    let mut session = Session::new();
    session.options.render_depth = 2;
    assert_eq!(
        session.eval("[1, 2, 3]").expect("evals").rendered,
        "Cons 1 (Cons 2 (Cons ...))"
    );
    assert_eq!(
        session
            .eval_supervised("[1, 2, 3]", &urk::Supervisor::new())
            .expect("evals")
            .result
            .rendered,
        "Cons 1 (Cons 2 (Cons ...))"
    );
    session.options.render_depth = 32;
    assert_eq!(
        session.eval("[1, 2, 3]").expect("evals").rendered,
        "Cons 1 (Cons 2 (Cons 3 Nil))"
    );
}
