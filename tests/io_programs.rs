//! Larger IO programs through both runners: the machine implementation
//! and the §4.4 semantic transition system, cross-checked on traces.

use std::collections::BTreeSet;

use urk::{Exception, IoResult, SemIoResult, Session};

#[test]
fn line_echo_with_transformation() {
    // Read three characters, emit them upper-shifted by ord arithmetic.
    let mut s = Session::new();
    s.load(
        r#"shift c = chr (ord c - 32)
main = do
  a <- getChar
  b <- getChar
  c <- getChar
  putChar (shift a)
  putChar (shift b)
  putChar (shift c)
  return ()"#,
    )
    .expect("loads");
    let out = s.run_main("abc").expect("runs");
    assert_eq!(out.trace.output(), "ABC");
    assert_eq!(out.trace.to_string(), "?a ?b ?c !A !B !C");

    // The semantic runner produces the identical trace.
    let sem = s.run_main_semantic("abc", 0).expect("runs");
    assert_eq!(sem.trace.to_string(), "?a ?b ?c !A !B !C");
}

#[test]
fn interactive_calculator_with_recovery() {
    // Reads two digits, divides, recovers from division by zero.
    let mut s = Session::new();
    s.load(
        r#"digit c = ord c - 48
main = do
  a <- getChar
  b <- getChar
  v <- getException (digit a / digit b)
  case v of
    OK n  -> putStr (showInt n)
    Bad e -> putStr "undefined""#,
    )
    .expect("loads");
    let ok = s.run_main("82").expect("runs");
    assert_eq!(ok.trace.output(), "4");
    let div0 = s.run_main("80").expect("runs");
    assert_eq!(div0.trace.output(), "undefined");
}

#[test]
fn nested_get_exception_boundaries() {
    // An inner handler recovers; the outer one never sees the exception.
    let mut s = Session::new();
    s.load(
        r#"inner x = do
  v <- getException (100 / x)
  case v of
    OK n  -> return n
    Bad e -> return 0
main = do
  r <- inner 0
  v <- getException (r + 1)
  case v of
    OK n  -> putStr (showInt n)
    Bad e -> putStr "outer saw it""#,
    )
    .expect("loads");
    let out = s.run_main("").expect("runs");
    assert_eq!(out.trace.output(), "1");
}

#[test]
fn io_actions_are_first_class_values() {
    // Store IO actions in a list and perform them in order (§3.5: a value
    // of type IO t is a first-class value).
    let mut s = Session::new();
    s.load(
        r#"performAll actions = case actions of
  []   -> return ()
  a:as -> a >> performAll as
main = performAll [putChar 'x', putChar 'y', putChar 'z']"#,
    )
    .expect("loads");
    let out = s.run_main("").expect("runs");
    assert_eq!(out.trace.output(), "xyz");
}

#[test]
fn exceptional_io_action_value_is_uncaught_when_performed() {
    // main itself evaluates to an exceptional value.
    let mut s = Session::new();
    s.load(r#"main = if 1 / 0 > 0 then putChar 'a' else putChar 'b'"#)
        .expect("loads");
    let out = s.run_main("").expect("runs");
    assert!(matches!(
        out.result,
        IoResult::Uncaught(Exception::DivideByZero)
    ));
    // Semantic runner: the uncaught set contains DivideByZero.
    let sem = s.run_main_semantic("", 3).expect("runs");
    let SemIoResult::Uncaught(set) = sem.result else {
        panic!("{:?}", sem.result)
    };
    assert!(set.contains(&Exception::DivideByZero));
}

#[test]
fn machine_trace_is_one_of_the_semantic_traces() {
    // The machine is one resolution of the semantic non-determinism: its
    // trace must appear among the semantic runner's traces over seeds.
    let mut s = Session::new();
    s.load(
        r#"main = do
  v <- getException ((1/0) + error "Urk")
  case v of
    Bad DivideByZero -> putStr "div"
    Bad (UserError m) -> putStr m
    _ -> putStr "?""#,
    )
    .expect("loads");
    let machine_trace = s.run_main("").expect("runs").trace.to_string();
    let semantic: BTreeSet<String> = (0..32)
        .map(|seed| {
            s.run_main_semantic("", seed)
                .expect("runs")
                .trace
                .to_string()
        })
        .collect();
    assert!(
        semantic.contains(&machine_trace),
        "{machine_trace} not in {semantic:?}"
    );
    // And the semantic runner explores more than one behaviour.
    assert!(semantic.len() >= 2);
}

#[test]
fn long_running_io_with_interrupt_schedule() {
    let mut s = Session::new();
    s.options.machine.event_schedule = vec![(50_000, Exception::Interrupt)];
    s.load(
        r#"busy n = if n == 0 then 0 else busy (n - 1)
main = do
  a <- getException (busy 100)
  b <- getException (busy 100000)
  c <- getException (busy 10)
  case (a, b, c) of
    (OK x, Bad Interrupt, OK z) -> putStr "second interrupted only"
    _ -> putStr "unexpected""#,
    )
    .expect("loads");
    let out = s.run_main("").expect("runs");
    assert_eq!(out.trace.output(), "second interrupted only");
}
