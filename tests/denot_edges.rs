//! Edge cases of the denotational layer: the `P(E)⊥` lattice laws, the
//! refinement comparator, and rendering — including a proptest that union
//! really is the lattice meet (§4.1's ordering).

use proptest::prelude::*;
use std::rc::Rc;

use urk_denot::{compare_denots, show_denot, Denot, DenotEvaluator, ExnSet, Verdict};
use urk_syntax::{desugar_expr, parse_expr_src, DataEnv, Exception};

fn exn_strategy() -> impl Strategy<Value = Exception> {
    prop_oneof![
        Just(Exception::DivideByZero),
        Just(Exception::Overflow),
        Just(Exception::NonTermination),
        Just(Exception::Interrupt),
        "[a-c]{1,3}".prop_map(Exception::UserError),
    ]
}

fn set_strategy() -> impl Strategy<Value = ExnSet> {
    prop_oneof![
        8 => proptest::collection::btree_set(exn_strategy(), 0..5)
            .prop_map(ExnSet::from_iter),
        1 => Just(ExnSet::bottom()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Union is the meet of the ⊑ order: a greatest lower bound.
    #[test]
    fn union_is_the_lattice_meet(a in set_strategy(), b in set_strategy(), c in set_strategy()) {
        let u = a.union(&b);
        // Lower bound.
        prop_assert!(u.leq(&a));
        prop_assert!(u.leq(&b));
        // Greatest among lower bounds.
        if c.leq(&a) && c.leq(&b) {
            prop_assert!(c.leq(&u));
        }
        // Union is commutative, associative, idempotent.
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a.clone());
        let ab_c = a.union(&b).union(&c);
        let a_bc = a.union(&b.union(&c));
        prop_assert_eq!(ab_c, a_bc);
    }

    /// ⊥ is the bottom, the empty set the top.
    #[test]
    fn bottom_and_top(a in set_strategy()) {
        prop_assert!(ExnSet::bottom().leq(&a));
        prop_assert!(a.leq(&ExnSet::empty()));
        prop_assert!(ExnSet::bottom().union(&a).is_all());
    }
}

fn eval(src: &str) -> (DataEnv, Denot) {
    let data = DataEnv::new();
    let e = Rc::new(desugar_expr(&parse_expr_src(src).expect("parses"), &data).expect("desugars"));
    let ev = DenotEvaluator::new(&data);
    let d = ev.eval_closed(&e);
    (data, d)
}

#[test]
fn compare_mixed_kinds_is_incomparable() {
    let (data, int_val) = eval("42");
    let ev = DenotEvaluator::new(&data);
    let (_, con_val) = eval("Just 42");
    let (_, bad) = eval("raise Overflow");
    assert_eq!(
        compare_denots(&ev, &int_val, &con_val, 4),
        Verdict::Incomparable
    );
    assert_eq!(
        compare_denots(&ev, &int_val, &bad, 4),
        Verdict::Incomparable
    );
    assert_eq!(
        compare_denots(&ev, &con_val, &bad, 4),
        Verdict::Incomparable
    );
}

#[test]
fn bad_empty_sits_above_every_bad() {
    let empty = Denot::Bad(ExnSet::empty());
    let one = Denot::Bad(ExnSet::singleton(Exception::Overflow));
    let data = DataEnv::new();
    let ev = DenotEvaluator::new(&data);
    assert_eq!(
        compare_denots(&ev, &one, &empty, 4),
        Verdict::LeftRefinesToRight
    );
    assert_eq!(
        compare_denots(&ev, &Denot::bottom(), &empty, 4),
        Verdict::LeftRefinesToRight
    );
    // But Bad {} is still not a normal value.
    let (_, ok) = eval("1");
    assert_eq!(compare_denots(&ev, &empty, &ok, 4), Verdict::Incomparable);
}

#[test]
fn structural_comparison_cuts_off_at_depth_zero() {
    let (data, a) = eval("[1, 2, 3]");
    let ev = DenotEvaluator::new(&data);
    let (_, b) = eval("[1, 2, 9]");
    // Depth 0: assumed related (the cut-off).
    assert_eq!(compare_denots(&ev, &a, &b, 0), Verdict::Equal);
    // Enough depth: the difference shows.
    assert_eq!(compare_denots(&ev, &a, &b, 8), Verdict::Incomparable);
}

#[test]
fn show_denot_depth_limits_rendering() {
    let (data, d) = eval("[1, 2, 3]");
    let ev = DenotEvaluator::new(&data);
    assert_eq!(show_denot(&ev, &d, 1), "Cons 1 (Cons ...)");
    assert_eq!(show_denot(&ev, &d, 8), "Cons 1 (Cons 2 (Cons 3 Nil))");
}

#[test]
fn exceptional_fields_render_inside_structures() {
    let (data, d) = eval("(1/0, raise Overflow)");
    let ev = DenotEvaluator::new(&data);
    assert_eq!(
        show_denot(&ev, &d, 4),
        "Pair (Bad {DivideByZero}) (Bad {Overflow})"
    );
}

#[test]
fn deeply_nested_exception_finding_mode() {
    // Nested cases under a Bad scrutinee union transitively.
    let (_, d) = eval(
        "case raise Overflow of
           { True -> case raise DivideByZero of { True -> 1; False -> 2 }
           ; False -> raise (UserError \"x\") }",
    );
    let Denot::Bad(s) = d else { panic!("{d:?}") };
    assert!(s.contains(&Exception::Overflow));
    assert!(s.contains(&Exception::DivideByZero));
    assert!(s.contains(&Exception::UserError("x".into())));
    assert!(!s.is_all());
}

#[test]
fn exception_finding_mode_does_not_leak_binder_sets() {
    // Binders are Bad {} — even when an alternative scrutinises its binder
    // again, no phantom exceptions appear.
    let (_, d) = eval(
        "case raise Overflow of
           { Just x -> case x of { True -> 1/0; False -> 2 }
           ; Nothing -> 3 }",
    );
    let Denot::Bad(s) = d else { panic!("{d:?}") };
    // Overflow from the scrutinee, DivideByZero from the explored inner
    // alternative — but nothing from x itself.
    assert_eq!(
        s,
        ExnSet::from_iter([Exception::Overflow, Exception::DivideByZero])
    );
}

#[test]
fn string_payload_exceptions_are_distinct_set_members() {
    let (_, d) = eval(r#"raise (UserError "a") + (raise (UserError "b") + raise (UserError "a"))"#);
    let Denot::Bad(s) = d else { panic!() };
    let members = s.members().expect("finite");
    assert_eq!(members.len(), 2);
}
