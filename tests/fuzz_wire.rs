//! Wire-level fuzzing of `urk serve`: a seeded [`FrameMutator`] stream
//! is thrown at a live server while a well-behaved client shares the
//! pool, and every attack is held to the two-tier failure policy —
//! malformed payloads cost one error response and nothing else,
//! untrustworthy length prefixes cost the connection, and mid-frame
//! hangups cost nobody anything. The good client's answers must stay
//! byte-identical throughout: abuse on one connection is invisible on
//! another.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use urk::{Client, Options, PoolConfig, RemoteOutcome, ServeConfig, Server};
use urk_fuzz::{Expectation, FrameMutator};
use urk_io::wire::Request;
use urk_io::{read_frame, Response};

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one attack on a fresh connection and asserts the policy tier
/// the mutator tagged it with.
fn deliver(addr: std::net::SocketAddr, attack: &urk_fuzz::FrameAttack) {
    let mut stream = TcpStream::connect(addr).expect("attack connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    stream.write_all(&attack.bytes).expect("attack writes");
    stream.flush().expect("attack flushes");
    match attack.expect {
        Expectation::ErrorAndKeep => {
            let reply = read_frame(&mut stream)
                .expect("a frame comes back")
                .expect("not EOF");
            match Response::decode(&reply).expect("decodes") {
                Response::Error { .. } => {}
                other => panic!("{}: expected an error response, got {other:?}", attack.name),
            }
            assert_keeps_serving(&mut stream, attack.name);
        }
        Expectation::AnswerAndKeep => {
            let reply = read_frame(&mut stream)
                .expect("a frame comes back")
                .expect("not EOF");
            Response::decode(&reply).expect("a well-formed response");
            assert_keeps_serving(&mut stream, attack.name);
        }
        Expectation::Disconnect => {
            // The server may write one final error frame before hanging
            // up, but the stream must reach EOF without further service.
            while let Ok(Some(reply)) = read_frame(&mut stream) {
                Response::decode(&reply).expect("a well-formed response");
            }
        }
        Expectation::ClientCloses => {
            // Hang up mid-frame; the server just reaps us. The shared
            // pool assertions below prove nobody else noticed.
            drop(stream);
        }
    }
}

/// The surviving-connection check: a fresh ping on the same stream still
/// gets a well-formed answer.
fn assert_keeps_serving(stream: &mut TcpStream, attack: &str) {
    let ping = Request::Ping { id: 999_999 }.encode();
    stream.write_all(&frame(&ping)).expect("ping writes");
    stream.flush().expect("ping flushes");
    let reply = read_frame(stream)
        .unwrap_or_else(|e| panic!("{attack}: connection died after attack: {e:?}"))
        .unwrap_or_else(|| panic!("{attack}: connection closed after attack"));
    Response::decode(&reply).expect("ping answer decodes");
}

#[test]
fn frame_attacks_never_disturb_a_well_behaved_neighbour() {
    let server = Server::start(
        &[],
        Options::default(),
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            pool: PoolConfig {
                workers: 2,
                ..PoolConfig::default()
            },
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    let mut good = Client::connect(addr).expect("good client connects");
    let mut mutator = FrameMutator::new(11);
    let mut seen = std::collections::BTreeSet::new();
    for i in 0..48 {
        let attack = mutator.next_attack();
        seen.insert(attack.name);
        deliver(addr, &attack);
        if i % 8 == 7 {
            // The well-behaved neighbour: byte-identical answers, no
            // matter what the attack stream did meanwhile.
            let got = good
                .eval_batch(&["6 * 7", "1 / 0"], None)
                .expect("good client still serves");
            let rendered: Vec<&str> = got
                .iter()
                .map(|o| match o {
                    RemoteOutcome::Done { rendered, .. } => rendered.as_str(),
                    other => panic!("good client got {other:?}"),
                })
                .collect();
            assert_eq!(rendered, ["42", "(raise DivideByZero)"]);
        }
    }
    // A 48-attack stream at this seed must have exercised every tier.
    for want in [
        "garbage-payload",
        "wrong-shape-json",
        "truncated-json",
        "bitflip",
        "oversized-length",
        "midframe-close",
        "valid-request",
    ] {
        assert!(seen.contains(want), "attack class {want} never generated");
    }
}
