//! Pinned re-runs of the two proptest regression seeds checked in at
//! `tests/properties.proptest-regressions`.
//!
//! The seed file records the *shrunk* counterexamples proptest found
//! (nested `Let`/`Case`/`Raise` terms with shadowed binders inside `Case`
//! alternatives and `Raise` inside primops). The vendored deterministic
//! property runner cannot replay upstream proptest's byte seeds, so the
//! shrunk terms are reconstructed here verbatim from the seed file's
//! comments and pinned against *every* property the generated suite
//! checks: machine/denot agreement under all order policies, rewrite
//! validity of each catalogue transformation and of the whole optimizer
//! pipeline, fuel monotonicity, and the pretty/parse round trip.

use std::rc::Rc;

use urk_denot::{compare_denots, denot_leq, show_denot, Denot, DenotConfig, DenotEvaluator, Value};
use urk_machine::{MEnv, Machine, MachineConfig, OrderPolicy, Outcome};
use urk_syntax::core::{Alt, CoreProgram, Expr, PrimOp};
use urk_syntax::{desugar_expr, parse_expr_src, pretty, DataEnv, Symbol};
use urk_transform::{
    apply_everywhere, BetaReduce, CaseOfCase, CaseOfKnownCon, CaseOfLiteral, CommutePrimArgs,
    DeadLetElim, InlineLet, Optimizer, Transform,
};

fn raise_user_error(msg: &str) -> Expr {
    Expr::raise(Expr::con("UserError", [Expr::str(msg)]))
}

fn raise_con(name: &str) -> Expr {
    Expr::raise(Expr::con(name, []))
}

/// Seed 1 (`cc 1165bde8…`): shadowed `Let` binders (`pc` bound three
/// times), a shadowed binder inside a `Case` alternative (`pb`), and
/// `Raise` inside `Add`/`Sub`/`Seq` primops.
fn seed_1() -> Expr {
    Expr::let_(
        "pc",
        Expr::prim(
            PrimOp::Add,
            [
                Expr::let_(
                    "pb",
                    Expr::int(76),
                    Expr::case(
                        Expr::con("Nothing", []),
                        vec![
                            Alt::con("Just", vec![Symbol::intern("pb")], raise_user_error("Urk")),
                            Alt::con("Nothing", vec![], raise_con("DivideByZero")),
                        ],
                    ),
                ),
                Expr::let_(
                    "pd",
                    Expr::prim(PrimOp::Seq, [raise_user_error("Urk"), Expr::int(90)]),
                    Expr::let_("pa", raise_user_error("Urk"), raise_user_error("Urk")),
                ),
            ],
        ),
        Expr::let_(
            "pa",
            raise_con("Overflow"),
            Expr::let_(
                "pc",
                Expr::prim(PrimOp::Sub, [Expr::int(37), raise_con("DivideByZero")]),
                Expr::let_("pc", Expr::var("pc"), Expr::int(0)),
            ),
        ),
    )
}

/// Seed 2 (`cc b70ff45b…`): `Case` nested in a constructor field, shadowed
/// alternative binders (`pa`), and a used binder (`pc`) bound by `Case` on
/// an exceptional scrutinee deep inside primops.
fn seed_2() -> Expr {
    let inner_inner_case = Expr::case(
        Expr::prim(
            PrimOp::IntLt,
            [
                Expr::prim(PrimOp::Mod, [Expr::int(7), raise_con("Overflow")]),
                raise_con("DivideByZero"),
            ],
        ),
        vec![
            Alt::con(
                "True",
                vec![],
                Expr::let_("pb", raise_con("Overflow"), raise_con("Overflow")),
            ),
            Alt::con(
                "False",
                vec![],
                Expr::prim(PrimOp::Mod, [Expr::int(38), raise_con("Overflow")]),
            ),
        ],
    );
    let middle_case = Expr::case(
        Expr::prim(PrimOp::IntLt, [inner_inner_case, Expr::int(7)]),
        vec![
            Alt::con(
                "True",
                vec![],
                Expr::let_(
                    "pa",
                    Expr::let_("pb", Expr::int(7), raise_con("DivideByZero")),
                    Expr::case(
                        Expr::con("Just", [Expr::int(64)]),
                        vec![
                            Alt::con("Just", vec![Symbol::intern("pa")], raise_user_error("Urk")),
                            Alt::con("Nothing", vec![], raise_con("Overflow")),
                        ],
                    ),
                ),
            ),
            Alt::con(
                "False",
                vec![],
                Expr::let_(
                    "pd",
                    Expr::app(Expr::lam("pa", raise_user_error("Urk")), Expr::int(85)),
                    Expr::prim(PrimOp::Div, [raise_user_error("Urk"), Expr::int(65)]),
                ),
            ),
        ],
    );
    Expr::case(
        Expr::con("Just", [middle_case]),
        vec![
            Alt::con(
                "Just",
                vec![Symbol::intern("pc")],
                Expr::prim(
                    PrimOp::Seq,
                    [
                        raise_con("Overflow"),
                        Expr::prim(
                            PrimOp::Add,
                            [
                                Expr::case(
                                    Expr::prim(PrimOp::IntLt, [Expr::int(0), Expr::var("pc")]),
                                    vec![
                                        Alt::con("True", vec![], Expr::int(0)),
                                        Alt::con("False", vec![], Expr::var("pc")),
                                    ],
                                ),
                                Expr::int(0),
                            ],
                        ),
                    ],
                ),
            ),
            Alt::con("Nothing", vec![], Expr::int(1)),
        ],
    )
}

fn machine_result(e: &Rc<Expr>, policy: OrderPolicy) -> Outcome {
    let mut m = Machine::new(MachineConfig {
        order: policy,
        ..MachineConfig::default()
    });
    m.eval(e.clone(), &MEnv::empty(), true).expect("terminates")
}

/// The `machine_sound_wrt_denotational_semantics` property, pinned.
fn check_machine_sound(e: Expr) {
    let e = Rc::new(e);
    let data = DataEnv::new();
    let ev = DenotEvaluator::new(&data);
    let denot = ev.eval_closed(&e);
    for policy in [
        OrderPolicy::LeftToRight,
        OrderPolicy::RightToLeft,
        OrderPolicy::Seeded(11),
    ] {
        match (&denot, machine_result(&e, policy)) {
            (Denot::Ok(Value::Int(n)), Outcome::Value(node)) => {
                let mut m2 = Machine::new(MachineConfig {
                    order: policy,
                    ..MachineConfig::default()
                });
                let Outcome::Value(node2) = m2
                    .eval(e.clone(), &MEnv::empty(), true)
                    .expect("terminates")
                else {
                    unreachable!()
                };
                assert_eq!(m2.render(node2, 4), n.to_string());
                let _ = node;
            }
            (Denot::Bad(set), Outcome::Caught(exn)) => {
                assert!(
                    set.contains(&exn),
                    "machine ({policy:?}) chose {exn} outside {set}"
                );
            }
            (d, o) => panic!("layer mismatch under {policy:?}: {d:?} vs {o:?}"),
        }
    }
}

/// The `transformations_are_valid_rewrites` property, pinned.
fn check_transforms(e: &Expr) {
    let transforms: Vec<Box<dyn Transform>> = vec![
        Box::new(BetaReduce),
        Box::new(InlineLet),
        Box::new(DeadLetElim),
        Box::new(CaseOfKnownCon),
        Box::new(CaseOfLiteral),
        Box::new(CommutePrimArgs),
        Box::new(CaseOfCase),
    ];
    let data = DataEnv::new();
    for t in &transforms {
        let (out, n) = apply_everywhere(t.as_ref(), e);
        if n == 0 {
            continue;
        }
        let ev = DenotEvaluator::new(&data);
        let dl = ev.eval_closed(&Rc::new(e.clone()));
        let dr = ev.eval_closed(&Rc::new(out.clone()));
        let v = compare_denots(&ev, &dl, &dr, 6);
        assert!(
            v.is_valid_rewrite(),
            "{} produced {:?}:\n  before: {}\n   after: {}",
            t.name(),
            v,
            pretty(e),
            pretty(&out),
        );
    }
}

/// The `optimizer_pipeline_is_a_valid_rewrite` property, pinned.
fn check_optimizer_pipeline(e: &Expr) {
    let main = Symbol::intern("main$seed");
    let prog = CoreProgram {
        binds: vec![(main, Rc::new(e.clone()))],
        sigs: Vec::new(),
    };
    let opt = Optimizer::new();
    let (out, _) = opt.optimize(&prog);
    let data = DataEnv::new();
    let ev = DenotEvaluator::new(&data);
    let before = {
        let env = ev.bind_recursive(&prog.binds, &urk_denot::Env::empty());
        ev.eval(&Rc::new(Expr::Var(main)), &env)
    };
    let after = {
        let env = ev.bind_recursive(&out.binds, &urk_denot::Env::empty());
        ev.eval(&Rc::new(Expr::Var(main)), &env)
    };
    let v = compare_denots(&ev, &before, &after, 6);
    assert!(
        v.is_valid_rewrite(),
        "pipeline produced {v:?} on {}",
        pretty(e)
    );
}

/// The `fuel_monotonicity` property, pinned.
fn check_fuel_monotonicity(e: Expr) {
    let e = Rc::new(e);
    let data = DataEnv::new();
    let mut prev: Option<Denot> = None;
    for fuel in [4u64, 16, 64, 1024, 1_000_000] {
        let ev = DenotEvaluator::with_config(
            &data,
            DenotConfig {
                fuel,
                ..DenotConfig::default()
            },
        );
        let d = ev.eval_closed(&e);
        if let Some(p) = &prev {
            assert!(
                denot_leq(&ev, p, &d, 6),
                "fuel {} downgraded {} to {}",
                fuel,
                show_denot(&ev, p, 6),
                show_denot(&ev, &d, 6)
            );
        }
        prev = Some(d);
    }
}

/// The `parse_pretty_roundtrip` property, pinned.
fn check_roundtrip(e: &Expr) {
    let printed = pretty(e);
    let data = DataEnv::new();
    let reparsed = parse_expr_src(&printed)
        .unwrap_or_else(|err| panic!("pretty output failed to parse: {err}\n{printed}"));
    let core = desugar_expr(&reparsed, &data)
        .unwrap_or_else(|err| panic!("pretty output failed to desugar: {err}\n{printed}"));
    assert!(
        core.alpha_eq(e),
        "roundtrip changed the term:\n  original: {}\n  reparsed: {}",
        pretty(e),
        pretty(&core)
    );
}

#[test]
fn seed_1_machine_sound() {
    check_machine_sound(seed_1());
}

#[test]
fn seed_2_machine_sound() {
    check_machine_sound(seed_2());
}

#[test]
fn seed_1_transforms_valid() {
    check_transforms(&seed_1());
}

#[test]
fn seed_2_transforms_valid() {
    check_transforms(&seed_2());
}

#[test]
fn seed_1_optimizer_pipeline_valid() {
    check_optimizer_pipeline(&seed_1());
}

#[test]
fn seed_2_optimizer_pipeline_valid() {
    check_optimizer_pipeline(&seed_2());
}

#[test]
fn seed_1_fuel_monotone() {
    check_fuel_monotonicity(seed_1());
}

#[test]
fn seed_2_fuel_monotone() {
    check_fuel_monotonicity(seed_2());
}

#[test]
fn seed_1_pretty_roundtrip() {
    check_roundtrip(&seed_1());
}

#[test]
fn seed_2_pretty_roundtrip() {
    check_roundtrip(&seed_2());
}
