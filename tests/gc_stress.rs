//! Garbage-collection stress through the whole stack: long-running IO
//! programs with a small collection threshold must keep working, including
//! across `getException` boundaries, poisoned thunks, and async events —
//! and after every interrupted episode the heap must audit clean (no
//! stranded black holes: the §5.1 restore reached every in-flight thunk).

use std::rc::Rc;

use urk::{Exception, IoResult, Session};
use urk_machine::{MEnv, Machine, MachineConfig, Outcome};
use urk_syntax::{desugar_expr, parse_expr_src, DataEnv};

fn small_heap_session() -> Session {
    let mut s = Session::new();
    s.options.machine.gc_threshold = 30_000;
    s
}

#[test]
fn io_loop_with_churn_and_recovery() {
    let mut s = small_heap_session();
    s.load(
        r#"mk n = if n == 0 then [] else n : mk (n - 1)
crunch n = sum (mk n) / (n % 3)
step i acc = do
  v <- getException (crunch i)
  case v of
    OK x  -> return (acc + 1)
    Bad e -> return acc
runAll i acc = if i == 0 then return acc else step i acc >>= runAll (i - 1)
main = do
  good <- runAll 120 0
  putStr (showInt good)"#,
    )
    .expect("loads");
    let out = s.run_main("").expect("runs");
    // Of 1..120, multiples of 3 divide by zero: 40 bad, 80 good.
    assert_eq!(out.trace.output(), "80");
    let IoResult::Done(_) = out.result else {
        panic!("{:?}", out.result)
    };
}

#[test]
fn gc_does_not_lose_poisoned_thunks_in_use() {
    let mut s = small_heap_session();
    s.load(
        r#"mk n = if n == 0 then [] else n : mk (n - 1)
main = do
  a <- getException (1 / 0)
  u <- getException (sum (mk 2000))
  b <- getException (1 / 0)
  case (a, b) of
    (Bad x, Bad y) -> putStr "both bad"
    _ -> putStr "unexpected""#,
    )
    .expect("loads");
    let out = s.run_main("").expect("runs");
    assert_eq!(out.trace.output(), "both bad");
}

#[test]
fn interrupted_then_resumed_computation_survives_gc() {
    let mut s = small_heap_session();
    s.options.machine.event_schedule = vec![(60_000, Exception::Interrupt)];
    s.load(
        r#"mk n = if n == 0 then [] else n : mk (n - 1)
work = sum (mk 600)
main = do
  a <- getException work
  b <- getException work
  case (a, b) of
    (Bad Interrupt, OK n) -> putStr (strAppend "resumed: " (showInt n))
    (OK n, OK m)          -> putStr "not interrupted"
    _                     -> putStr "unexpected""#,
    )
    .expect("loads");
    let out = s.run_main("").expect("runs");
    // Either the interrupt landed in the first getException (and the
    // second resumed to the value), or the schedule fired elsewhere; both
    // getExceptions of the *shared* `work` must agree on the value.
    assert!(
        out.trace.output().starts_with("resumed: 180300")
            || out.trace.output() == "not interrupted",
        "{}",
        out.trace.output()
    );
}

#[test]
fn no_black_hole_survives_an_interrupted_episode() {
    // Machine-level audit: interrupt episodes at many different step
    // points (so the trim races every phase — mid-update, mid-apply,
    // mid-GC) and after each completed episode check the heap holds zero
    // black holes and the allocator's books balance.
    let data = DataEnv::new();
    let src = "let s = (let g = \\n -> if n == 0 then 0 else n + g (n - 1) in g 250) in s + 1";
    let core =
        Rc::new(desugar_expr(&parse_expr_src(src).expect("parses"), &data).expect("desugars"));
    for at in (50u64..2_000).step_by(50) {
        let mut m = Machine::new(MachineConfig {
            event_schedule: vec![(at, Exception::Interrupt)],
            gc_threshold: 500,
            ..MachineConfig::default()
        });
        let out = m
            .eval(core.clone(), &MEnv::empty(), true)
            .expect("within limits");
        let audit = m.audit_heap();
        assert_eq!(
            audit.blackholes, 0,
            "episode interrupted at step {at} stranded black holes: {audit:?} ({out:?})"
        );
        assert!(
            audit.is_consistent(),
            "heap inconsistent after interrupt at step {at}: {audit:?}"
        );
    }
}

#[test]
fn re_evaluation_after_interruption_agrees_with_the_denotational_oracle() {
    // The §5.1 resumability claim, end to end: interrupt an episode, then
    // evaluate the same expression again on the *same machine* (restored
    // thunks and all) and compare with the oracle.
    let data = DataEnv::new();
    let src = "let s = (let g = \\n -> if n == 0 then 0 else n + g (n - 1) in g 250) in s + 1";
    let core =
        Rc::new(desugar_expr(&parse_expr_src(src).expect("parses"), &data).expect("desugars"));
    let ev = urk_denot::DenotEvaluator::with_config(
        &data,
        urk::DenotConfig {
            max_depth: 2_000,
            ..urk::DenotConfig::default()
        },
    );
    let oracle = urk_denot::show_denot(&ev, &ev.eval_closed(&core), 16);
    assert_eq!(oracle, "31376");

    for at in [100u64, 700, 1_500] {
        let mut m = Machine::new(MachineConfig {
            event_schedule: vec![(at, Exception::Interrupt)],
            gc_threshold: 500,
            ..MachineConfig::default()
        });
        let first = m
            .eval(core.clone(), &MEnv::empty(), true)
            .expect("within limits");
        assert!(
            matches!(first, Outcome::Caught(Exception::Interrupt)),
            "interrupt at {at}: {first:?}"
        );
        // The schedule is exhausted; re-evaluation must now reach the
        // oracle's value using whatever the trim left behind.
        let second = m
            .eval(core.clone(), &MEnv::empty(), true)
            .expect("within limits");
        let Outcome::Value(n) = second else {
            panic!("re-evaluation after interrupt at {at}: {second:?}")
        };
        assert_eq!(m.render(n, 16), oracle, "after interrupt at {at}");
        assert!(m.audit_heap().is_consistent());
    }
}
