//! Garbage-collection stress through the whole stack: long-running IO
//! programs with a small collection threshold must keep working, including
//! across `getException` boundaries, poisoned thunks, and async events.

use urk::{Exception, IoResult, Session};

fn small_heap_session() -> Session {
    let mut s = Session::new();
    s.options.machine.gc_threshold = 30_000;
    s
}

#[test]
fn io_loop_with_churn_and_recovery() {
    let mut s = small_heap_session();
    s.load(
        r#"mk n = if n == 0 then [] else n : mk (n - 1)
crunch n = sum (mk n) / (n % 3)
step i acc = do
  v <- getException (crunch i)
  case v of
    OK x  -> return (acc + 1)
    Bad e -> return acc
runAll i acc = if i == 0 then return acc else step i acc >>= runAll (i - 1)
main = do
  good <- runAll 120 0
  putStr (showInt good)"#,
    )
    .expect("loads");
    let out = s.run_main("").expect("runs");
    // Of 1..120, multiples of 3 divide by zero: 40 bad, 80 good.
    assert_eq!(out.trace.output(), "80");
    let IoResult::Done(_) = out.result else {
        panic!("{:?}", out.result)
    };
}

#[test]
fn gc_does_not_lose_poisoned_thunks_in_use() {
    let mut s = small_heap_session();
    s.load(
        r#"mk n = if n == 0 then [] else n : mk (n - 1)
main = do
  a <- getException (1 / 0)
  u <- getException (sum (mk 2000))
  b <- getException (1 / 0)
  case (a, b) of
    (Bad x, Bad y) -> putStr "both bad"
    _ -> putStr "unexpected""#,
    )
    .expect("loads");
    let out = s.run_main("").expect("runs");
    assert_eq!(out.trace.output(), "both bad");
}

#[test]
fn interrupted_then_resumed_computation_survives_gc() {
    let mut s = small_heap_session();
    s.options.machine.event_schedule = vec![(60_000, Exception::Interrupt)];
    s.load(
        r#"mk n = if n == 0 then [] else n : mk (n - 1)
work = sum (mk 600)
main = do
  a <- getException work
  b <- getException work
  case (a, b) of
    (Bad Interrupt, OK n) -> putStr (strAppend "resumed: " (showInt n))
    (OK n, OK m)          -> putStr "not interrupted"
    _                     -> putStr "unexpected""#,
    )
    .expect("loads");
    let out = s.run_main("").expect("runs");
    // Either the interrupt landed in the first getException (and the
    // second resumed to the value), or the schedule fired elsewhere; both
    // getExceptions of the *shared* `work` must agree on the value.
    assert!(
        out.trace.output().starts_with("resumed: 180300")
            || out.trace.output() == "not interrupted",
        "{}",
        out.trace.output()
    );
}
