//! Stats-drift guards for the generational heap's counter rename.
//!
//! The tagged-immediate representation superseded the PR 1 intern table,
//! and `Stats::interned_hits` became `Stats::unboxed_hits`. Renaming a
//! counter is an API *and* wire-format change: these tests pin that the
//! rename happened coherently everywhere an external consumer can see it
//! — the machine's `Stats`, the `urk serve` wire schema that
//! `examples/serve_load.rs` decodes with [`urk_io::Response::decode`],
//! and the live counters an evaluation actually produces.

use urk::{Backend, Session, Stats};
use urk_io::{Response, WireStats, WireTotals};

#[test]
fn stats_spells_the_unboxed_counter_and_not_the_old_name() {
    // Field existence is compile-checked by naming it; the Debug form is
    // the drift guard for anything that scrapes stats output.
    let stats = Stats {
        unboxed_hits: 7,
        ..Stats::default()
    };
    let debug = format!("{stats:?}");
    assert!(debug.contains("unboxed_hits"), "{debug}");
    assert!(
        !debug.contains("interned"),
        "the superseded intern-table counter leaked back into Stats: {debug}"
    );
}

#[test]
fn wire_results_carry_unboxed_hits_and_round_trip() {
    // The exact frame `urk serve` streams and `serve_load.rs` decodes.
    let resp = Response::Result {
        id: 4,
        index: 0,
        rendered: "4".into(),
        exception: None,
        cache_hit: false,
        attempts: 1,
        timed_out: false,
        stats: WireStats {
            steps: 42,
            allocations: 17,
            unboxed_hits: 9,
            fused_steps: 3,
            ic_hits: 2,
            ic_misses: 1,
            compile_ops: 0,
            compile_micros: 0,
            cache_hits: 0,
            cache_misses: 1,
            backend: "tree".into(),
            tier: "1".into(),
        },
    };
    let payload = resp.encode();
    let text = String::from_utf8(payload.clone()).expect("wire frames are UTF-8 JSON");
    assert!(text.contains("\"unboxed_hits\""), "{text}");
    assert!(
        !text.contains("interned_hits"),
        "stale wire key would break schema consumers: {text}"
    );
    assert_eq!(Response::decode(&payload).expect("decodes"), resp);
}

#[test]
fn wire_totals_carry_unboxed_hits_and_round_trip() {
    let resp = Response::Stats {
        id: 2,
        workers: 1,
        queue_depth: 0,
        queue_cap: 8,
        connections: 1,
        requests: 3,
        jobs_submitted: 3,
        jobs_shed: 0,
        protocol_errors: 0,
        backend: "compiled".into(),
        cache: Default::default(),
        totals: WireTotals {
            jobs: 3,
            steps: 123,
            unboxed_hits: 45,
            fused_steps: 12,
            ic_hits: 4,
            ic_misses: 2,
            compile_micros: 6,
            cache_hits: 1,
            cache_misses: 2,
        },
    };
    let payload = resp.encode();
    let text = String::from_utf8(payload.clone()).expect("wire frames are UTF-8 JSON");
    assert!(text.contains("\"unboxed_hits\""), "{text}");
    assert!(!text.contains("interned_hits"), "{text}");
    assert_eq!(Response::decode(&payload).expect("decodes"), resp);
}

#[test]
fn evaluations_actually_hit_the_unboxed_path_on_both_backends() {
    for backend in [Backend::Tree, Backend::Compiled] {
        let mut s = Session::new();
        s.options.backend = backend;
        let r = s.eval("(1 + 2) * 4").expect("evaluates");
        assert_eq!(r.rendered, "12");
        assert!(
            r.stats.unboxed_hits >= 1,
            "{backend:?}: small-integer arithmetic must hit the tagged \
             immediate path: {:?}",
            r.stats
        );
    }
}
