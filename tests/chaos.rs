//! The chaos differential suite: §5.1's robustness claim over many seeds.
//!
//! Every run injects a seeded fault plan (asynchronous exceptions at random
//! steps, forced collections, a shrinking heap budget) into a machine
//! evaluation and verifies the two invariants against the denotational
//! oracle:
//!
//! (a) **soundness under faults** — the observed behaviour is a member of
//!     the denotational exception set ∪ the plan's injectable asynchrony;
//! (b) **heap consistency** — the post-run audit finds zero stranded black
//!     holes and a coherent allocator, and the *same machine* re-evaluates
//!     to an oracle-consistent answer once the plan is disarmed.
//!
//! A final test arms the deliberately-broken injection point
//! (`sabotage_async_restore`) and demonstrates the audit fails when the
//! §5.1 restore invariant is actually violated — i.e. the checker checks.

use std::rc::Rc;

use urk::Session;
use urk_io::{chaos_run_with_plan, ChaosReport};
use urk_machine::{FaultPlan, MachineConfig};
use urk_syntax::core::Expr;
use urk_syntax::{desugar_expr, parse_expr_src, DataEnv, Exception};

/// The corpus: self-contained programs with distinct denotational shapes —
/// pure values of different sizes, a buried synchronous exception, an
/// order-dependent multi-exception set, and a pattern-match failure — so
/// the faults race every kind of trim.
const PROGRAMS: &[(&str, &str)] = &[
    (
        "fib",
        "let f = \\n -> if n < 2 then n else f (n - 1) + f (n - 2) in f 14",
    ),
    (
        "sum-buried-thunk",
        "let s = (let g = \\n -> if n == 0 then 0 else n + g (n - 1) in g 250) in s + 1",
    ),
    (
        "list-length",
        "let { upto = \\n -> if n == 0 then [] else n : upto (n - 1)
             ; len = \\xs -> case xs of { [] -> 0; y : ys -> 1 + len ys } }
         in len (upto 200)",
    ),
    (
        "divide-by-zero-at-depth",
        "let g = \\n -> if n == 0 then 1 / 0 else n + g (n - 1) in g 120",
    ),
    (
        "order-dependent-set",
        r#"(1/0) + (raise (UserError "Urk") + raise Overflow)"#,
    ),
    (
        "match-failure-at-depth",
        "let g = \\n -> if n == 0 then (case [] of { y : ys -> y }) else n + g (n - 1) in g 100",
    ),
];

const SEEDS_PER_PROGRAM: u64 = 34;

#[test]
fn two_hundred_seeded_runs_hold_both_invariants() {
    let session = Session::new();
    let mut runs = 0u32;
    let mut injected_runs = 0u32;
    for (name, src) in PROGRAMS {
        for seed in 0..SEEDS_PER_PROGRAM {
            let r = session
                .chaos_check(src, seed)
                .unwrap_or_else(|e| panic!("{name}: front-end error: {e}"));
            assert!(
                r.sound,
                "{name} seed {seed}: unsound — outcome {} not in oracle {} ∪ {:?}",
                r.outcome,
                r.oracle,
                r.plan.injectable()
            );
            assert!(
                r.heap_consistent,
                "{name} seed {seed}: heap audit failed after {}",
                r.outcome
            );
            assert!(
                r.reeval_ok,
                "{name} seed {seed}: re-evaluation after disarming disagrees with {}",
                r.oracle
            );
            runs += 1;
            if r.faults_fired > 0 {
                injected_runs += 1;
            }
        }
    }
    assert!(
        runs >= 200,
        "the suite must cover at least 200 runs: {runs}"
    );
    // Seeded generation leaves some plans empty; most must actually fire.
    assert!(
        injected_runs >= runs / 3,
        "too few runs actually injected faults: {injected_runs}/{runs}"
    );
}

fn core_of(data: &DataEnv, src: &str) -> Rc<Expr> {
    Rc::new(desugar_expr(&parse_expr_src(src).expect("parses"), data).expect("desugars"))
}

fn sabotage_report() -> ChaosReport {
    let data = DataEnv::new();
    // The outer addition forces the thunk `s`, keeping an update frame on
    // the stack for the whole inner loop; the injected interrupt trims
    // past it while the sabotaged restore strands the black hole.
    let query = core_of(
        &data,
        "let s = (let g = \\n -> if n == 0 then 0 else n + g (n - 1) in g 300) in s + 1",
    );
    let plan = FaultPlan {
        horizon: 50_000,
        injections: vec![(200, Exception::Interrupt)],
        sabotage_async_restore: true,
        ..FaultPlan::default()
    };
    chaos_run_with_plan(&data, &[], &query, &MachineConfig::default(), 400_000, plan)
}

#[test]
fn the_audit_fails_when_the_restore_invariant_is_broken() {
    let r = sabotage_report();
    assert!(
        !r.heap_consistent,
        "sabotaged restore must strand a black hole the audit sees: {r:?}"
    );
}

#[test]
fn the_same_plan_without_sabotage_passes() {
    // The control for the sabotage test: identical program and fault
    // schedule, honest restore — everything holds.
    let data = DataEnv::new();
    let query = core_of(
        &data,
        "let s = (let g = \\n -> if n == 0 then 0 else n + g (n - 1) in g 300) in s + 1",
    );
    let plan = FaultPlan {
        horizon: 50_000,
        injections: vec![(200, Exception::Interrupt)],
        ..FaultPlan::default()
    };
    let r = chaos_run_with_plan(&data, &[], &query, &MachineConfig::default(), 400_000, plan);
    assert!(r.passed(), "{r:?}");
    assert_eq!(r.outcome, "Caught(Interrupt)");
}

#[test]
fn failing_seeds_reproduce_exactly() {
    // Determinism is what makes a chaos failure a bug report: the same
    // seed must produce the same plan, outcome, and verdict.
    let session = Session::new();
    let (_, src) = PROGRAMS[1];
    for seed in [3u64, 17, 29] {
        let a = session.chaos_check(src, seed).expect("runs");
        let b = session.chaos_check(src, seed).expect("runs");
        assert_eq!(format!("{:?}", a.plan), format!("{:?}", b.plan));
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(
            (a.sound, a.heap_consistent, a.reeval_ok),
            (b.sound, b.heap_consistent, b.reeval_ok)
        );
    }
}
