//! The network serving tier: protocol recovery, remote/in-process
//! equivalence, deadline isolation across connections, load shedding,
//! and graceful shutdown.
//!
//! The refinement criterion is what makes a *network* tier sound at
//! all: an expression denotes a set of exceptions and any member is an
//! admissible answer, so an answer computed in another process (or
//! served from the pool's shared cache) is exactly as valid as a local
//! one. These tests hold the server to the strongest observable form of
//! that claim — remote outcomes byte-identical to in-process
//! [`EvalPool::eval_batch`] — and to its operational contracts: a bad
//! frame costs one error response, a full queue costs an explicit
//! `overloaded`, a slow job dies by its own deadline and nobody else's.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use urk::{
    Client, EvalPool, Options, PoolConfig, RemoteOutcome, ServeConfig, Server, Session, Supervisor,
};
use urk_io::{read_frame, Response};

/// The pool tests' mixed corpus: values, top-level exceptions,
/// exceptions buried in lazy structure, duplicates for the cache.
const CORPUS: &[&str] = &[
    "sum [1 .. 40]",
    r#"(1/0) + error "Urk""#,
    "zipWith (/) [1, 2] [1, 0]",
    "head (tail [1])",
    "take 5 (iterate (\\x -> x * 2) 1)",
    "sort [3, 1, 2]",
    "sum [1 .. 40]",
    r#"(1/0) + error "Urk""#,
    "length [1 .. 100]",
    "1 + 2 * 3",
];

fn server_with(pool: PoolConfig) -> Server {
    Server::start(
        &[],
        Options::default(),
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            pool,
        },
    )
    .expect("server starts")
}

#[test]
fn malformed_frames_cost_one_error_response_not_the_connection() {
    let server = server_with(PoolConfig {
        workers: 1,
        ..PoolConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connects");

    // Goldens: each bad payload earns an `error` response whose message
    // pins the failure mode, and the connection survives every one.
    let goldens: &[(&[u8], &str)] = &[
        (b"not json\n", "invalid JSON"),
        (b"{}\n", "'id'"),
        (
            b"{\"type\":\"frobnicate\",\"id\":1}\n",
            "unknown request type",
        ),
        (b"{\"type\":\"batch\",\"id\":1}\n", "'exprs'"),
        (b"{\"type\":\"batch\",\"id\":8,\"exprs\":[3]}\n", "strings"),
        (b"\xff\xfe\n", "UTF-8"),
    ];
    for (payload, needle) in goldens {
        match client.send_raw(payload).expect("connection survives") {
            Response::Error { message, .. } => assert!(
                message.contains(needle),
                "{payload:?}: error message {message:?} should mention {needle:?}"
            ),
            other => panic!("{payload:?}: expected an error response, got {other:?}"),
        }
    }

    // A salvageable id is echoed back so the client can match the error.
    match client
        .send_raw(b"{\"type\":\"frobnicate\",\"id\":42}\n")
        .expect("alive")
    {
        Response::Error { id, .. } => assert_eq!(id, Some(42)),
        other => panic!("expected an error response, got {other:?}"),
    }

    // After all that abuse the connection still evaluates.
    client.ping().expect("still alive");
    let got = client.eval_batch(&["6 * 7"], None).expect("still serves");
    assert_eq!(
        got,
        vec![RemoteOutcome::Done {
            rendered: "42".to_string(),
            exception: None,
            cache_hit: false,
            timed_out: false,
        }]
    );

    // And the abuse was counted.
    match client.stats().expect("stats") {
        Response::Stats {
            protocol_errors, ..
        } => assert_eq!(protocol_errors, goldens.len() as u64 + 1),
        other => panic!("expected stats, got {other:?}"),
    }
}

#[test]
fn an_oversized_length_field_drops_the_connection_after_one_error() {
    let server = server_with(PoolConfig {
        workers: 1,
        ..PoolConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
    // A length field past MAX_FRAME_LEN: the stream can no longer be
    // trusted, so the server answers once and hangs up.
    stream.write_all(&u32::MAX.to_be_bytes()).expect("writes");
    stream.flush().expect("flushes");

    let first = read_frame(&mut stream)
        .expect("one frame comes back")
        .expect("not EOF yet");
    match Response::decode(&first).expect("decodes") {
        Response::Error { message, .. } => assert!(message.contains("exceeds")),
        other => panic!("expected an error response, got {other:?}"),
    }
    assert!(
        matches!(read_frame(&mut stream), Ok(None) | Err(_)),
        "the connection must close after an untrustworthy length field"
    );
}

#[test]
fn remote_outcomes_are_byte_identical_to_in_process_evaluation() {
    let pool_config = PoolConfig {
        workers: 4,
        cache_cap: 128,
        ..PoolConfig::default()
    };

    // The in-process baseline.
    let pool = EvalPool::start(&[], Options::default(), pool_config.clone()).expect("pool starts");
    let baseline: Vec<(String, Option<String>)> = pool
        .eval_batch(CORPUS)
        .into_iter()
        .map(|r| {
            let out = r.expect("corpus jobs succeed");
            (out.rendered, out.exception.map(|e| e.to_string()))
        })
        .collect();

    // Several concurrent clients of one server, each running the whole
    // corpus a few times (duplicates make later rounds hit the shared
    // cache — a cached remote answer must be as good as a fresh one).
    let server = server_with(pool_config);
    let addr = server.local_addr();
    let all: Vec<Vec<RemoteOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connects");
                    let mut rounds = Vec::new();
                    for _ in 0..3 {
                        rounds.extend(client.eval_batch(CORPUS, None).expect("evaluates"));
                    }
                    rounds
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("joins"))
            .collect()
    });

    let oracle = Session::new();
    for rounds in &all {
        assert_eq!(rounds.len(), 3 * CORPUS.len());
        for (i, outcome) in rounds.iter().enumerate() {
            let src = CORPUS[i % CORPUS.len()];
            let (expected_rendered, expected_exception) = &baseline[i % CORPUS.len()];
            let RemoteOutcome::Done {
                rendered,
                exception,
                ..
            } = outcome
            else {
                panic!("{src}: expected a result, got {outcome:?}");
            };
            assert_eq!(rendered, expected_rendered, "{src}");
            assert_eq!(exception, expected_exception, "{src}");

            // A raised representative must be a member of the denoted
            // exception set — the refinement criterion, end to end over
            // the wire.
            if let Some(display) = exception {
                let set = oracle
                    .exception_set(src)
                    .expect("oracle evaluates")
                    .unwrap_or_else(|| {
                        panic!("{src}: server raised {display} but denotation is a value")
                    });
                assert!(
                    set.iter().any(|member| member.to_string() == *display),
                    "{src}: representative {display} is not in the denoted set {set}"
                );
            }
        }
    }
}

#[test]
fn deadlines_kill_slow_jobs_without_stalling_other_connections() {
    // Two workers: one gets wedged on the diverging job, the other keeps
    // serving the second connection.
    let server = server_with(PoolConfig {
        workers: 2,
        supervisor: Supervisor::default(),
        ..PoolConfig::default()
    });
    let addr = server.local_addr();
    let diverge = "let f = \\n -> f (n + 1) in f 0";

    let slow = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connects");
        client
            .eval_batch(&[diverge], Some(400))
            .expect("a timeout is an answer, not a dropped connection")
    });

    // While the runaway burns its 400ms, a second connection gets quick
    // answers well before the slow job's deadline resolves.
    let mut fast = Client::connect(addr).expect("connects");
    let started = Instant::now();
    let got = fast.eval_batch(&["2 + 2", "head [9]"], None).expect("fast");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "quick jobs must not queue behind a slow connection"
    );
    assert_eq!(
        got[0],
        RemoteOutcome::Done {
            rendered: "4".to_string(),
            exception: None,
            cache_hit: false,
            timed_out: false,
        }
    );

    let slow_results = slow.join().expect("joins");
    let RemoteOutcome::Done {
        rendered,
        exception,
        timed_out,
        cache_hit,
    } = &slow_results[0]
    else {
        panic!("expected a timeout result, got {slow_results:?}");
    };
    assert!(timed_out, "the supervisor's watchdog must have fired");
    assert_eq!(exception.as_deref(), Some("Timeout"));
    assert_eq!(rendered, "(raise Timeout)");
    assert!(
        !cache_hit,
        "an asynchronous Timeout must never be served from the cache"
    );

    // The per-request deadline must not have stuck to the pool: the same
    // expression without one, on a fresh connection, is cancelled only
    // by shutdown — so just check a quick job still runs instantly.
    let mut after = Client::connect(addr).expect("connects");
    let again = after.eval_batch(&["3 + 3"], None).expect("serves");
    assert_eq!(
        again[0],
        RemoteOutcome::Done {
            rendered: "6".to_string(),
            exception: None,
            cache_hit: false,
            timed_out: false,
        }
    );
}

#[test]
fn full_queues_shed_with_explicit_overloaded_responses_and_recover() {
    // One worker, a one-slot queue: a batch of one slow job plus many
    // quick ones must overflow admission, and every overflow must come
    // back as `overloaded` — never a hang, never a dropped frame.
    let server = server_with(PoolConfig {
        workers: 1,
        queue_cap: 1,
        cache_cap: 0,
        ..PoolConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let slow = "let f = \\n -> f (n + 1) in f 0";
    let mut exprs = vec![slow];
    exprs.extend(std::iter::repeat_n("1 + 1", 7));
    let outcomes = client
        .eval_batch(&exprs, Some(300))
        .expect("the batch completes");

    assert_eq!(outcomes.len(), 8);
    let shed = outcomes
        .iter()
        .filter(|o| matches!(o, RemoteOutcome::Overloaded))
        .count();
    let done = outcomes
        .iter()
        .filter(|o| matches!(o, RemoteOutcome::Done { .. }))
        .count();
    assert!(
        shed >= 5,
        "a one-slot queue admits at most the in-flight job, one queued job,\n\
         and whatever the worker drained mid-admission; got {shed} shed of 8"
    );
    assert_eq!(shed + done, 8, "every index answers: {outcomes:?}");

    // The slow job itself was admitted (first in) and died by deadline.
    assert!(
        matches!(
            &outcomes[0],
            RemoteOutcome::Done {
                timed_out: true,
                ..
            }
        ),
        "the head of the batch is admitted before the queue can fill: {:?}",
        outcomes[0]
    );

    // Shedding is a per-admission verdict, not a connection state: once
    // the queue drains, the same connection is served in full again.
    let recovered = client.eval_batch(&["2 * 21"], None).expect("recovers");
    assert_eq!(
        recovered,
        vec![RemoteOutcome::Done {
            rendered: "42".to_string(),
            exception: None,
            cache_hit: false,
            timed_out: false,
        }]
    );

    // And the stats frame accounts for the shed jobs.
    match client.stats().expect("stats") {
        Response::Stats {
            jobs_shed,
            jobs_submitted,
            queue_cap,
            workers,
            ..
        } => {
            assert_eq!(jobs_shed, shed as u64);
            assert_eq!(jobs_submitted, (8 - shed as u64) + 1);
            assert_eq!(queue_cap, 1);
            assert_eq!(workers, 1);
        }
        other => panic!("expected stats, got {other:?}"),
    }
}

#[test]
fn stats_snapshots_surface_pool_cache_and_protocol_counters() {
    let server = server_with(PoolConfig {
        workers: 2,
        cache_cap: 64,
        ..PoolConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connects");

    client.ping().expect("pong");
    let exprs = ["sum [1 .. 30]", "sum [1 .. 30]", "1/0"];
    client.eval_batch(&exprs, None).expect("evaluates");

    match client.stats().expect("stats") {
        Response::Stats {
            workers,
            queue_cap,
            connections,
            requests,
            jobs_submitted,
            jobs_shed,
            backend,
            cache,
            totals,
            ..
        } => {
            assert_eq!(workers, 2);
            assert_eq!(queue_cap, 256);
            assert_eq!(connections, 1);
            // ping + batch + this stats request.
            assert_eq!(requests, 3);
            assert_eq!(jobs_submitted, 3);
            assert_eq!(jobs_shed, 0);
            assert_eq!(backend, "tree");
            assert_eq!(cache.capacity, 64);
            assert!(
                cache.insertions >= 2,
                "both distinct pure outcomes are cached: {cache:?}"
            );
            assert_eq!(totals.jobs, 3);
            assert!(totals.steps > 0);
            assert_eq!(
                totals.cache_hits + totals.cache_misses,
                3,
                "every job either hit or missed: {totals:?}"
            );
        }
        other => panic!("expected stats, got {other:?}"),
    }
}

#[test]
fn a_shutdown_frame_drains_the_server_and_join_returns() {
    let server = server_with(PoolConfig {
        workers: 2,
        ..PoolConfig::default()
    });
    let addr = server.local_addr();

    // A second, idle connection: shutdown must not wait on it forever
    // (connection threads poll the stop flag between reads).
    let idle = Client::connect(addr).expect("connects");

    let mut client = Client::connect(addr).expect("connects");
    client.eval_batch(&["1 + 1"], None).expect("serves");
    client.shutdown().expect("acknowledged");

    let started = Instant::now();
    server.join();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "join must return promptly after a shutdown frame"
    );
    drop(idle);

    // The listener is gone: new connections are refused (or reset).
    assert!(
        TcpStream::connect(addr).is_err()
            || Client::connect(addr)
                .map(|mut c| c.ping().is_err())
                .unwrap_or(true),
        "a stopped server must not accept new work"
    );
}

#[test]
fn dropping_the_server_handle_stops_everything() {
    let addr = {
        let server = server_with(PoolConfig {
            workers: 1,
            ..PoolConfig::default()
        });
        let mut client = Client::connect(server.local_addr()).expect("connects");
        client.eval_batch(&["1 + 1"], None).expect("serves");
        server.local_addr()
        // `server` drops here: stop + join.
    };
    assert!(
        TcpStream::connect(addr).is_err()
            || Client::connect(addr)
                .map(|mut c| c.ping().is_err())
                .unwrap_or(true),
        "a dropped server must not accept new work"
    );
}
