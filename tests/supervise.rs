//! The supervised evaluation service: wall-clock cancellation, panic
//! isolation, budget escalation, and diagnosable aborts.

use std::time::{Duration, Instant};

use urk::{Error, Exception, MachineError, Session, Supervisor};

#[test]
fn infinite_loop_is_cancelled_at_the_wall_clock_deadline() {
    let session = Session::new();
    let started = Instant::now();
    let out = session
        .eval_supervised(
            "let f = \\n -> f (n + 1) in f 0",
            &Supervisor::with_deadline(100),
        )
        .expect("supervised evaluation returns rather than aborting");
    assert_eq!(out.result.exception, Some(Exception::Timeout));
    assert_eq!(out.result.rendered, "(raise Timeout)");
    assert!(out.timed_out);
    assert_eq!(out.attempts, 1);
    // The watchdog must have cancelled well before the 50M-step limit
    // would have — wall-clock, not step-count. Generous bound for CI.
    assert!(started.elapsed() < Duration::from_secs(30));

    // The session survives the cancellation and keeps serving requests.
    assert_eq!(session.eval("6 * 7").expect("usable").rendered, "42");
    assert_eq!(
        session
            .eval_supervised("1 + 2", &Supervisor::with_deadline(5_000))
            .expect("usable")
            .result
            .rendered,
        "3"
    );
}

#[test]
fn fast_requests_finish_before_the_watchdog_fires() {
    let session = Session::new();
    let out = session
        .eval_supervised(
            "map (\\x -> x * x) [1, 2, 3]",
            &Supervisor::with_deadline(5_000),
        )
        .expect("evals");
    assert_eq!(out.result.rendered, "Cons 1 (Cons 4 (Cons 9 Nil))");
    assert!(!out.timed_out);
    assert_eq!(out.attempts, 1);
    assert_eq!(out.result.exception, None);
}

#[test]
fn machine_panics_are_isolated_as_internal_errors() {
    // An ill-typed term panics the machine (the evaluators assume
    // well-typed input); under supervision that is a structured error and
    // the session survives. Typechecking is disabled to let the term in.
    let mut session = Session::new();
    session.options.typecheck = false;
    let err = session
        .eval_supervised("1 2", &Supervisor::new())
        .expect_err("applying an integer panics the machine");
    assert!(
        matches!(
            &err,
            Error::Machine {
                error: MachineError::Internal(_),
                ..
            }
        ),
        "expected an internal machine error, got: {err}"
    );

    // The machine that panicked is gone; the session is untouched.
    session.options.typecheck = true;
    assert_eq!(session.eval("1 + 1").expect("usable").rendered, "2");
}

#[test]
fn heap_overflow_is_retried_with_escalated_budgets() {
    let session = Session::new();
    // Retaining a 2000-element list overflows the first-attempt heap
    // budget; the escalated retry (x8) fits it.
    let supervisor = Supervisor {
        max_heap: Some(3_000),
        retries: 2,
        growth: 8,
        ..Supervisor::default()
    };
    let out = session
        .eval_supervised(
            "let upto = \\n -> if n == 0 then [] else n : upto (n - 1) in length (upto 2000)",
            &supervisor,
        )
        .expect("evals");
    assert_eq!(out.result.rendered, "2000");
    assert!(out.attempts > 1, "the first budget must be too small");
}

#[test]
fn exhausted_retries_report_the_resource_death() {
    let session = Session::new();
    let supervisor = Supervisor {
        max_heap: Some(2_000),
        retries: 0,
        ..Supervisor::default()
    };
    let out = session
        .eval_supervised(
            "let upto = \\n -> if n == 0 then [] else n : upto (n - 1) in length (upto 100000)",
            &supervisor,
        )
        .expect("a budget death under a catch mark is a caught exception");
    assert_eq!(out.result.exception, Some(Exception::HeapOverflow));
    assert_eq!(out.attempts, 1);
}

#[test]
fn aborted_runs_carry_their_stats_into_the_error() {
    // The Session::eval bugfix: hitting a hard limit used to discard the
    // counters; now the error reports how far the run got.
    let mut session = Session::new();
    session.options.machine.max_steps = 5_000;
    let err = session
        .eval("let f = \\n -> f (n + 1) in f 0")
        .expect_err("step limit");
    let Error::Machine { error, stats } = &err else {
        panic!("expected a machine error, got: {err}");
    };
    assert!(matches!(error, MachineError::StepLimit));
    let stats = stats.as_ref().expect("stats must be carried");
    assert!(stats.steps >= 5_000, "{stats:?}");
    assert!(stats.allocations > 0);
    // And the rendered error mentions them.
    assert!(err.to_string().contains("steps"), "{err}");
}
