//! Golden tests for trickier surface-syntax combinations: layout, guards,
//! `where`, sections, and sugar interacting — each checked end-to-end by
//! evaluating through the Session.

use urk::Session;

#[track_caller]
fn eval_program(prog: &str, query: &str) -> String {
    let mut s = Session::new();
    s.load(prog).expect("loads");
    s.eval(query).expect("evals").rendered
}

#[test]
fn guards_with_where_spanning_clauses() {
    let prog = r#"classify n
  | n < small = "small"
  | n < big   = "medium"
  | otherwise = "large"
  where small = 10
        big = 100"#;
    assert_eq!(eval_program(prog, "classify 5"), "\"small\"");
    assert_eq!(eval_program(prog, "classify 50"), "\"medium\"");
    assert_eq!(eval_program(prog, "classify 500"), "\"large\"");
}

#[test]
fn nested_where_blocks() {
    let prog = r#"poly x = a + b
  where a = x * c
          where c = 3
        b = x + 1"#;
    // Note: the inner where attaches to `a`'s equation.
    assert_eq!(eval_program(prog, "poly 2"), "9");
}

#[test]
fn case_with_nested_patterns_and_guards_in_alternatives() {
    let prog = r#"describe m = case m of
  Just (x, y) | x == y    -> "diagonal"
              | x < y     -> "above"
              | otherwise -> "below"
  Nothing -> "empty""#;
    assert_eq!(eval_program(prog, "describe (Just (3, 3))"), "\"diagonal\"");
    assert_eq!(eval_program(prog, "describe (Just (1, 3))"), "\"above\"");
    assert_eq!(eval_program(prog, "describe (Just (5, 3))"), "\"below\"");
    assert_eq!(eval_program(prog, "describe Nothing"), "\"empty\"");
}

#[test]
fn sections_compose_in_pipelines() {
    let s = Session::new();
    assert_eq!(
        s.eval("sum (map (* 3) (filter (> 2) [1 .. 5]))")
            .expect("evals")
            .rendered,
        "36"
    );
    assert_eq!(
        s.eval("map (10 -) [1, 2, 3]").expect("evals").rendered,
        "Cons 9 (Cons 8 (Cons 7 Nil))"
    );
    assert_eq!(
        s.eval(r"foldr (.) id [(+ 1), (* 2)] 5")
            .expect("evals")
            .rendered,
        "11"
    );
}

#[test]
fn do_blocks_with_let_and_nested_do() {
    let prog = r#"main = do
  let shout s = strAppend s "!"
  a <- getChar
  do putChar a
     putStr (shout "ok")
  return 0"#;
    let mut s = Session::new();
    s.load(prog).expect("loads");
    let out = s.run_main("z").expect("runs");
    assert_eq!(out.trace.output(), "zok!");
}

#[test]
fn operators_in_backticks_and_dollar() {
    let prog = "avg a b = (a + b) / 2";
    assert_eq!(eval_program(prog, "3 `avg` 7"), "5");
    assert_eq!(eval_program(prog, "showInt $ 1 `avg` 3"), "\"2\"");
}

#[test]
fn multiline_if_then_else_with_layout() {
    let prog = r#"grade n =
  if n >= 90
    then "A"
    else if n >= 80
      then "B"
      else "C""#;
    assert_eq!(eval_program(prog, "grade 95"), "\"A\"");
    assert_eq!(eval_program(prog, "grade 85"), "\"B\"");
    assert_eq!(eval_program(prog, "grade 50"), "\"C\"");
}

#[test]
fn deeply_nested_data_and_patterns() {
    let prog = r#"data Rose = Node Int [Rose]
flatten (Node v kids) = v : concatMap flatten kids
total t = sum (flatten t)"#;
    assert_eq!(
        eval_program(prog, "total (Node 1 [Node 2 [], Node 3 [Node 4 []]])"),
        "10"
    );
}

#[test]
fn string_patterns_in_case() {
    let prog = r#"dispatch cmd = case cmd of
  "inc" -> 1
  "dec" -> 0 - 1
  _     -> 0"#;
    assert_eq!(eval_program(prog, r#"dispatch "inc""#), "1");
    assert_eq!(eval_program(prog, r#"dispatch "dec""#), "-1");
    assert_eq!(eval_program(prog, r#"dispatch "nop""#), "0");
}

#[test]
fn char_literal_patterns_and_ranges() {
    let prog = r#"isVowel c = case c of
  'a' -> True
  'e' -> True
  'i' -> True
  'o' -> True
  'u' -> True
  _   -> False
countVowels s n i = if i == n then 0 else 0"#;
    assert_eq!(eval_program(prog, "isVowel 'e'"), "True");
    assert_eq!(eval_program(prog, "isVowel 'z'"), "False");
    assert_eq!(
        eval_program(
            prog,
            "length (filter isVowel ['h', 'a', 's', 'k', 'e', 'l', 'l'])"
        ),
        "2"
    );
}

#[test]
fn negative_literals_in_patterns_and_expressions() {
    let prog = r#"sign (-1) = "neg"
sign 0 = "zero"
sign n = if n < 0 then "neg" else "pos""#;
    assert_eq!(eval_program(prog, "sign (-1)"), "\"neg\"");
    assert_eq!(eval_program(prog, "sign (0 - 7)"), "\"neg\"");
    assert_eq!(eval_program(prog, "sign 0"), "\"zero\"");
    assert_eq!(eval_program(prog, "sign 9"), "\"pos\"");
}

#[test]
fn comments_everywhere() {
    let prog = r#"-- leading comment
f x = x + 1 -- trailing
{- block
   spanning lines -}
g y = f (f y) {- inline -} + 0"#;
    assert_eq!(eval_program(prog, "g 1"), "3");
}

#[test]
fn explicit_braces_mix_with_layout() {
    let prog = "f xs = case xs of { [] -> 0; y:ys -> y }\ng = f [42]";
    assert_eq!(eval_program(prog, "g"), "42");
}
