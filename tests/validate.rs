//! The translation-validation property battery.
//!
//! Three claims, each load-bearing for the tier-2 story:
//!
//! 1. **Completeness / zero false alarms** — every image the tier-2
//!    compiler actually emits (over the checked-in fuzz corpus and a
//!    sweep of random generator terms) validates cleanly. A validator
//!    that cries wolf would be switched off in practice, so this is as
//!    important as soundness.
//! 2. **Static rejection of corrupted licences** — the PR 9 acceptance
//!    sabotage (a fact claiming a wrong constant) needed a *differential
//!    execution* to catch; the validator now refuses the image before
//!    anything runs, along with forged demand vectors, forged
//!    `whnf_safe` claims, dropped certificate entries, and mutated
//!    certificate kinds. None of these tests ever links or steps a
//!    machine.
//! 3. **Strictness facts are differentially sound** — `demands[i]`
//!    claims that an exceptional argument in position `i` surfaces in
//!    the call's answer. That must-property is checked here by actually
//!    raising in each demanded position under *both* deterministic order
//!    policies, at both the tree backend and the validated tier-2
//!    backend; a never-demanded position must conversely stay lazy.

use std::fs;
use std::path::PathBuf;
use std::rc::Rc;

use urk::{tier2_facts_for, Backend, OrderPolicy, Session, Tier};
use urk_analysis::{analyze_program, audit_binding_facts};
use urk_machine::{
    compile_program, tier2_optimize_certified, validate_tier2, CertKind, FactVal, ValidationReport,
};
use urk_syntax::core::CoreProgram;
use urk_syntax::{desugar_program, parse_program, DataEnv, Symbol};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Parses `src`, compiles it at both tiers with certificates, and runs
/// the full validation pipeline (fact audit + machine-side validator)
/// against freshly recomputed facts.
fn compile_and_validate(src: &str) -> Result<ValidationReport, String> {
    let mut data = DataEnv::new();
    let prog = desugar_program(&parse_program(src).expect("parses"), &mut data).expect("desugars");
    let claimed = analyze_program(&prog, &data).binding_facts(&prog.binds);
    audit_binding_facts(&prog, &data, &claimed).map_err(|e| e.to_string())?;
    let facts = tier2_facts_for(analyze_program(&prog, &data), &prog.binds);
    let base = compile_program(&prog.binds);
    let (t2, cert) = tier2_optimize_certified(&base, &facts);
    let fresh = tier2_facts_for(analyze_program(&prog, &data), &prog.binds);
    validate_tier2(&base, &t2, &cert, &fresh).map_err(|e| e.to_string())
}

#[test]
fn every_corpus_case_validates_with_zero_false_alarms() {
    let mut paths: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "urk"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no checked-in corpus");
    let mut rewrites = 0usize;
    for path in &paths {
        let src = fs::read_to_string(path).expect("read case");
        let report = compile_and_validate(&src)
            .unwrap_or_else(|e| panic!("{}: false alarm: {e}", path.display()));
        rewrites += report.fused
            + report.spec_value
            + report.spec_region
            + report.const_subst
            + report.app_g;
    }
    // The corpus is raise- and call-heavy; a tier-2 pass that proved
    // nothing over it would make this battery vacuous.
    assert!(rewrites > 0, "the corpus must exercise tier-2 rewrites");
}

#[test]
fn random_generator_terms_validate_with_zero_false_alarms() {
    // 256 deterministic generator terms, each spliced as a binding over
    // the fuzz prelude (recursion, a partial match, division, a
    // higher-order combinator) so the compiler sees global calls too.
    let mut data = DataEnv::new();
    let prelude = desugar_program(
        &parse_program(urk_fuzz::FUZZ_PRELUDE_SRC).expect("parses"),
        &mut data,
    )
    .expect("desugars");
    for seed in 0..256u64 {
        let mut gen = urk_fuzz::TermGen::new(seed, 5);
        let term = gen.term();
        let mut binds = prelude.binds.clone();
        binds.push((Symbol::intern("candidate"), Rc::new(term)));
        let prog = CoreProgram {
            binds,
            sigs: Vec::new(),
        };
        let facts = tier2_facts_for(analyze_program(&prog, &data), &prog.binds);
        let base = compile_program(&prog.binds);
        let (t2, cert) = tier2_optimize_certified(&base, &facts);
        validate_tier2(&base, &t2, &cert, &facts)
            .unwrap_or_else(|e| panic!("seed {seed}: false alarm: {e}"));
    }
}

/// Compiles `src` under `corrupt`-ed facts and validates against fresh
/// ones — the corrupted-licence shape. Returns the validator's refusal.
fn reject_with_corrupt(src: &str, corrupt: impl FnOnce(&mut urk_machine::Tier2Facts)) -> String {
    let mut data = DataEnv::new();
    let prog = desugar_program(&parse_program(src).expect("parses"), &mut data).expect("desugars");
    let mut facts = tier2_facts_for(analyze_program(&prog, &data), &prog.binds);
    corrupt(&mut facts);
    let base = compile_program(&prog.binds);
    let (t2, cert) = tier2_optimize_certified(&base, &facts);
    let fresh = tier2_facts_for(analyze_program(&prog, &data), &prog.binds);
    validate_tier2(&base, &t2, &cert, &fresh)
        .expect_err("a corrupted licence must be refused statically")
        .to_string()
}

#[test]
fn the_pr9_sabotage_is_rejected_before_any_execution() {
    // The exact corrupted licence the differential battery catches at
    // runtime (`tests/tier2.rs`): `k` claimed to be 7 when it is 42. The
    // validator refuses the image without linking a machine at all.
    let msg = reject_with_corrupt("k = 42\nmain = k + 1", |f| {
        f.globals[0].value = Some(FactVal::Int(7));
    });
    assert!(
        msg.contains("freshly proven"),
        "refusal names the re-derived constant: {msg}"
    );
}

#[test]
fn a_corrupted_string_licence_is_rejected_by_content() {
    // String constants are compared by *content*, never by intern
    // index, so a licence swapping the text is refused even though the
    // image is shape-identical to an honest one.
    let msg = reject_with_corrupt("greet = \"hi\"\nmain = greet", |f| {
        f.globals[0].value = Some(FactVal::Str("bye".into()));
    });
    assert!(
        msg.contains("freshly proven"),
        "refusal names the re-derived constant: {msg}"
    );
}

#[test]
fn a_forged_demand_vector_is_rejected() {
    // `ignore` never demands its argument; a forged `[true]` licenses a
    // call speculation that could reorder or drop the argument's raise.
    let msg = reject_with_corrupt(
        "ignore x = 42 + 0\nmain = let r = ignore (1 / 0) in r + 1",
        |f| {
            f.globals[0].demands = vec![true];
        },
    );
    assert!(msg.contains("SpecCall"), "{msg}");
}

#[test]
fn a_dropped_certificate_entry_is_rejected() {
    let src = "sq x = x * x\nmain = sq 3";
    let mut data = DataEnv::new();
    let prog = desugar_program(&parse_program(src).expect("parses"), &mut data).expect("desugars");
    let facts = tier2_facts_for(analyze_program(&prog, &data), &prog.binds);
    let base = compile_program(&prog.binds);
    let (t2, mut cert) = tier2_optimize_certified(&base, &facts);
    assert!(
        !cert.entries.is_empty(),
        "the program must produce rewrites"
    );
    cert.entries.pop();
    validate_tier2(&base, &t2, &cert, &facts)
        .expect_err("an uncertified structural divergence must be refused");
}

#[test]
fn a_mutated_certificate_kind_is_rejected() {
    let src = "sq x = x * x\nmain = sq 3";
    let mut data = DataEnv::new();
    let prog = desugar_program(&parse_program(src).expect("parses"), &mut data).expect("desugars");
    let facts = tier2_facts_for(analyze_program(&prog, &data), &prog.binds);
    let base = compile_program(&prog.binds);
    let (t2, mut cert) = tier2_optimize_certified(&base, &facts);
    let at = cert
        .entries
        .iter()
        .position(|e| matches!(e.kind, CertKind::Fused))
        .expect("a strict arithmetic body fuses");
    // A Fused claim in a strict context re-labelled as a lazy-side
    // speculation: the obligation family no longer matches the site.
    cert.entries[at].kind = CertKind::SpecRegion;
    validate_tier2(&base, &t2, &cert, &facts)
        .expect_err("a mutated certificate kind must be refused");
}

#[test]
fn a_corrupted_binding_fact_fails_the_analysis_audit() {
    // The analysis half: facts that do not reproduce under a fresh run
    // are refused before they ever reach the compiler.
    let src = "konst x y = x\nmain = konst 1 2";
    let mut data = DataEnv::new();
    let prog = desugar_program(&parse_program(src).expect("parses"), &mut data).expect("desugars");
    let mut claimed = analyze_program(&prog, &data).binding_facts(&prog.binds);
    claimed[0].demands = vec![true, true];
    let err = audit_binding_facts(&prog, &data, &claimed).expect_err("refused");
    assert!(err.to_string().contains("not reproducible"), "{err}");
}

#[test]
fn strictness_facts_license_call_speculation_on_real_programs() {
    // The acceptance claim: a call site the WHNF-only rule rejects is
    // now licensed by the interprocedural demand fact for `sq`.
    let report =
        compile_and_validate("sq x = x * x\nmain = let y = sq 5 in y + 1").expect("validates");
    assert!(report.spec_call >= 1, "{report:?}");
}

/// Every demanded position must surface an exceptional argument in the
/// final answer — under both deterministic order policies and on both
/// the tree backend and the validated tier-2 backend.
#[test]
fn demanded_positions_are_differentially_sound() {
    let src = "\
sq x = x * x
addmul a b = a * b + a
choose c a b = case c of { 0 -> a + 0; n -> b + 0 }
konst x y = x + 0
viaCall y = sq y
";
    let mut data = DataEnv::new();
    let prog = desugar_program(&parse_program(src).expect("parses"), &mut data).expect("desugars");
    let facts = analyze_program(&prog, &data).binding_facts(&prog.binds);
    let mut sessions = Vec::new();
    for order in [OrderPolicy::LeftToRight, OrderPolicy::RightToLeft] {
        let mut tree = Session::new();
        tree.options.machine.order = order;
        tree.load(src).expect("loads");
        let mut t2 = Session::new();
        t2.options.machine.order = order;
        t2.options.backend = Backend::Compiled;
        t2.options.tier = Tier::Two;
        t2.options.validate_tier2 = true;
        t2.load(src).expect("loads");
        sessions.push(tree);
        sessions.push(t2);
    }
    let mut demanded_checked = 0usize;
    for fact in &facts {
        for (i, demanded) in fact.demands.iter().enumerate() {
            if !demanded {
                continue;
            }
            let call = {
                let mut s = fact.name.to_string();
                for j in 0..fact.demands.len() {
                    s.push_str(if j == i { " (raise Overflow)" } else { " 1" });
                }
                s
            };
            for session in &sessions {
                let out = session.eval(&call).expect("evaluates");
                assert!(
                    out.exception.is_some(),
                    "`{call}`: demanded position {i} swallowed the raise \
                     (rendered {})",
                    out.rendered
                );
            }
            demanded_checked += 1;
        }
    }
    assert!(demanded_checked >= 5, "the fixture must prove real demands");
    // The converse control: `konst`'s second parameter is never
    // demanded, so laziness must swallow the raise everywhere.
    for session in &sessions {
        let out = session.eval("konst 1 (raise Overflow)").expect("evaluates");
        assert_eq!(out.exception, None, "konst demanded its lazy argument");
        assert_eq!(out.rendered, "1");
    }
}
