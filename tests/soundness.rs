//! Cross-layer soundness: the machine (the §3.3 implementation) must agree
//! with the denotational semantics (§4) — equal values on normal results,
//! and a representative *from the set* on exceptional ones. This is the
//! paper's central implementation-correctness claim, checked over a fixed
//! corpus here and over random terms in `properties.rs`.

use std::rc::Rc;

use urk_denot::{show_denot, Denot, DenotEvaluator, Env};
use urk_machine::{MEnv, Machine, MachineConfig, OrderPolicy, Outcome};
use urk_syntax::{desugar_expr, parse_expr_src, DataEnv};

/// Closed terms exercising every corner of the semantics.
const CORPUS: &[&str] = &[
    // Values.
    "42",
    "1 + 2 * 3 - 4",
    "7 / 2 + 7 % 2",
    "'x'",
    "\"hello\"",
    "[1, 2, 3]",
    "(1, (2, 3))",
    "Just (Just 0)",
    // Laziness.
    r"(\x -> 3) (1/0)",
    "let x = raise Overflow in 42",
    "case 1 : raise Overflow of { x : xs -> x; [] -> 0 }",
    "fst (1, 1/0)",
    // Exceptions.
    "1/0",
    "raise Overflow",
    r#"raise (UserError "Urk")"#,
    r#"(1/0) + raise (UserError "Urk")"#,
    "case raise Overflow of { True -> 1; False -> 2 }",
    "case Nothing of { Just n -> n }",
    "raise (raise DivideByZero)",
    "seq (1/0) 2",
    "seq 2 (1/0)",
    r#"mapException (\e -> Overflow) (1/0)"#,
    "unsafeIsException (1/0)",
    "unsafeIsException [1]",
    "case unsafeGetException (1/0) of { OK v -> 0; Bad e -> 1 }",
    "case unsafeGetException 9 of { OK v -> v; Bad e -> 0 }",
    // The seq cut-off shape from the strictness regression.
    "let m = raise DivideByZero in seq (raise Overflow) ((case 0 < m of { True -> 0; False -> m }) + 0)",
    // Arithmetic edge cases.
    "9223372036854775807 + 1",
    "negate (0 - 9223372036854775807)",
    "chr 97",
    "ord 'a' + 1",
    // Recursion.
    "let f = \\n -> if n == 0 then 1 else n * f (n - 1) in f 10",
    "let { isEven = \\n -> if n == 0 then True else isOdd (n - 1)
         ; isOdd = \\n -> if n == 0 then False else isEven (n - 1) }
     in isEven 10",
    // Structures with buried exceptions.
    "case (1/0, 5) of { (a, b) -> b }",
    "case (1/0, 5) of { (a, b) -> a }",
];

fn fst_is_case(src: &str) -> String {
    // `fst` is Prelude; rewrite the corpus entry inline.
    src.replace("fst (1, 1/0)", "case (1, 1/0) of { (a, b) -> a }")
}

#[test]
fn machine_agrees_with_the_denotational_semantics_on_the_corpus() {
    for raw in CORPUS {
        let src = fst_is_case(raw);
        let data = DataEnv::new();
        let core =
            Rc::new(desugar_expr(&parse_expr_src(&src).expect("parses"), &data).expect("desugars"));

        // Denotational result.
        let ev = DenotEvaluator::new(&data);
        let denot = ev.eval_closed(&core);

        // Machine result (catching, to observe the representative).
        for policy in [OrderPolicy::LeftToRight, OrderPolicy::RightToLeft] {
            let mut m = Machine::new(MachineConfig {
                order: policy,
                ..MachineConfig::default()
            });
            let out = m
                .eval(core.clone(), &MEnv::empty(), true)
                .expect("within limits");
            match (&denot, out) {
                (Denot::Ok(_), Outcome::Value(n)) => {
                    let machine_render = m.render(n, 16);
                    let denot_render = show_denot(&ev, &denot, 16);
                    // Renderings differ only in how buried exceptions are
                    // spelled; normalize.
                    let d = denot_render.replace("(Bad {", "(raise {");
                    if denot_render.contains("Bad {") {
                        // A buried exceptional field: check the spine only.
                        assert_eq!(
                            machine_render.split_whitespace().next(),
                            denot_render.split_whitespace().next(),
                            "on `{src}`"
                        );
                    } else {
                        assert_eq!(machine_render, d, "on `{src}` under {policy:?}");
                    }
                }
                (Denot::Bad(set), Outcome::Caught(exn)) => {
                    assert!(
                        set.contains(&exn),
                        "machine chose {exn} outside the denotational set {set} on `{src}`"
                    );
                }
                (d, o) => panic!("divergent layers on `{src}`: denot={d:?} machine={o:?}"),
            }
        }
    }
}

#[test]
fn order_policies_never_change_normal_results() {
    for raw in CORPUS {
        let src = fst_is_case(raw);
        let data = DataEnv::new();
        let core =
            Rc::new(desugar_expr(&parse_expr_src(&src).expect("parses"), &data).expect("desugars"));
        let mut renders = Vec::new();
        for policy in [
            OrderPolicy::LeftToRight,
            OrderPolicy::RightToLeft,
            OrderPolicy::Seeded(99),
        ] {
            let mut m = Machine::new(MachineConfig {
                order: policy,
                ..MachineConfig::default()
            });
            let out = m
                .eval(core.clone(), &MEnv::empty(), true)
                .expect("within limits");
            if let Outcome::Value(n) = out {
                renders.push(m.render(n, 8));
            }
        }
        assert!(
            renders.windows(2).all(|w| w[0] == w[1]),
            "normal results must be order-independent on `{src}`: {renders:?}"
        );
    }
}

#[test]
fn machine_representative_is_deterministic_per_policy() {
    let src = r#"(1/0) + (raise Overflow + raise (UserError "Urk"))"#;
    let data = DataEnv::new();
    let core =
        Rc::new(desugar_expr(&parse_expr_src(src).expect("parses"), &data).expect("desugars"));
    let run = |policy| {
        let mut m = Machine::new(MachineConfig {
            order: policy,
            ..MachineConfig::default()
        });
        match m.eval(core.clone(), &MEnv::empty(), true).expect("ok") {
            Outcome::Caught(e) => e,
            other => panic!("{other:?}"),
        }
    };
    for policy in [
        OrderPolicy::LeftToRight,
        OrderPolicy::RightToLeft,
        OrderPolicy::Seeded(5),
    ] {
        assert_eq!(run(policy), run(policy), "same policy, same representative");
    }
}

#[test]
fn denotation_is_invariant_under_the_machine_policy_knob() {
    // The denotational evaluator has no policy; this checks the *sets*
    // computed for asymmetric terms are symmetric, via a third party: the
    // machine representative under both orders must be in the one set.
    let src = r#"(raise Overflow + 1) * (1 + raise (UserError "Urk"))"#;
    let data = DataEnv::new();
    let core =
        Rc::new(desugar_expr(&parse_expr_src(src).expect("parses"), &data).expect("desugars"));
    let ev = DenotEvaluator::new(&data);
    let Denot::Bad(set) = ev.eval_closed(&core) else {
        panic!("exceptional")
    };
    for policy in [OrderPolicy::LeftToRight, OrderPolicy::RightToLeft] {
        let mut m = Machine::new(MachineConfig {
            order: policy,
            ..MachineConfig::default()
        });
        let Outcome::Caught(e) = m.eval(core.clone(), &MEnv::empty(), true).expect("ok") else {
            panic!("raises")
        };
        assert!(set.contains(&e));
    }
}

#[test]
fn env_binding_shapes_agree_between_layers() {
    // Shared top-level programs: denotational env vs machine env.
    let prog_src = "double x = x + x\nquad x = double (double x)";
    let mut data = DataEnv::new();
    let prog = urk_syntax::desugar_program(
        &urk_syntax::parse_program(prog_src).expect("parses"),
        &mut data,
    )
    .expect("desugars");
    let query =
        Rc::new(desugar_expr(&parse_expr_src("quad 4").expect("parses"), &data).expect("desugars"));

    let ev = DenotEvaluator::new(&data);
    let denv = ev.bind_recursive(&prog.binds, &Env::empty());
    let d = ev.eval(&query, &denv);
    assert_eq!(show_denot(&ev, &d, 4), "16");

    let mut m = Machine::new(MachineConfig::default());
    let menv = m.bind_recursive(&prog.binds, &MEnv::empty());
    let Outcome::Value(n) = m.eval(query, &menv, false).expect("ok") else {
        panic!()
    };
    assert_eq!(m.render(n, 4), "16");
}
