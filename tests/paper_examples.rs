//! End-to-end checks of every worked example in the paper, run through the
//! public `urk` API. Section references are to *"A Semantics for Imprecise
//! Exceptions"* (PLDI 1999).

use urk::{BlackholeMode, Exception, OrderPolicy, Session};

fn session() -> Session {
    Session::new()
}

// ----------------------------------------------------------------------
// §2.1 — exceptions as values, explicit encoding
// ----------------------------------------------------------------------

#[test]
fn explicit_exval_encoding_works_in_the_unextended_language() {
    // The paper's ExVal pattern, written by hand in Urk itself.
    let mut s = session();
    s.load(
        "safeDiv a b = if b == 0 then Bad DivideByZero else OK (a / b)\n\
         useIt a b = case safeDiv a b of { OK v -> v; Bad ex -> 0 - 1 }",
    )
    .expect("loads");
    assert_eq!(s.eval("useIt 10 2").expect("evals").rendered, "5");
    assert_eq!(s.eval("useIt 10 0").expect("evals").rendered, "-1");
}

// ----------------------------------------------------------------------
// §2.2 — error halts execution; built-in failures are catchable now
// ----------------------------------------------------------------------

#[test]
fn error_urk_raises_user_error() {
    let s = session();
    let out = s.eval(r#"error "Urk""#).expect("evals");
    assert_eq!(out.exception, Some(Exception::UserError("Urk".into())));
}

#[test]
fn head_of_empty_list_is_catchable_pattern_match_failure() {
    let mut s = session();
    s.load(
        r#"main = do
  v <- getException (head [])
  case v of
    OK x                     -> putStr "impossible"
    Bad (PatternMatchFail f) -> putStr (strAppend "no match in: " f)
    Bad e                    -> putStr "other""#,
    )
    .expect("loads");
    let out = s.run_main("").expect("runs");
    assert_eq!(out.trace.output(), "no match in: head");
}

// ----------------------------------------------------------------------
// §3.2 — propagation through lazy structures (zipWith)
// ----------------------------------------------------------------------

#[test]
fn zipwith_three_shapes_of_exceptional_result() {
    let s = session();
    // Directly exceptional.
    assert_eq!(
        s.eval("zipWith (+) [] [1]").expect("evals").exception,
        Some(Exception::UserError("Unequal lists".into()))
    );
    // Exception at the end of the spine.
    assert_eq!(
        s.eval("zipWith (+) [1] [1, 2]").expect("evals").rendered,
        "Cons 2 (raise UserError \"Unequal lists\")"
    );
    // Fully-defined spine, exceptional element.
    assert_eq!(
        s.eval("zipWith (/) [1, 2] [1, 0]").expect("evals").rendered,
        "Cons 1 (Cons (raise DivideByZero) Nil)"
    );
}

#[test]
fn seq_forces_structures_per_section_3_2() {
    let s = session();
    // The spine constructor shields the exception...
    assert_eq!(
        s.eval("seq (zipWith (/) [1] [0]) 5")
            .expect("evals")
            .rendered,
        "5"
    );
    // ...until forceList flushes it out.
    assert_eq!(
        s.eval("seq (forceList (zipWith (/) [1] [0])) 5")
            .expect("evals")
            .exception,
        Some(Exception::DivideByZero)
    );
}

// ----------------------------------------------------------------------
// §3.4 — the commutativity problem and the set-based answer
// ----------------------------------------------------------------------

#[test]
fn urk_indeed_the_denotation_has_both_exceptions() {
    let s = session();
    let set = s
        .exception_set(r#"(1/0) + error "Urk""#)
        .expect("evals")
        .expect("exceptional");
    assert!(set.contains(&Exception::DivideByZero));
    assert!(set.contains(&Exception::UserError("Urk".into())));
    // And the flipped term denotes the same set.
    let flipped = s
        .exception_set(r#"error "Urk" + (1/0)"#)
        .expect("evals")
        .expect("exceptional");
    assert_eq!(set, flipped);
}

// ----------------------------------------------------------------------
// §3.5 — getException in IO; different "optimisation settings"
// ----------------------------------------------------------------------

#[test]
fn representative_changes_with_policy_but_stays_in_the_set() {
    let term = r#"(1/0) + error "Urk""#;
    let mut s = session();
    let set = s.exception_set(term).expect("evals").expect("exceptional");
    let mut seen = Vec::new();
    for policy in [
        OrderPolicy::LeftToRight,
        OrderPolicy::RightToLeft,
        OrderPolicy::Seeded(1),
        OrderPolicy::Seeded(2),
    ] {
        s.options.machine.order = policy;
        let e = s.eval(term).expect("evals").exception.expect("raises");
        assert!(set.contains(&e), "{e} must be in {set}");
        seen.push(e);
    }
    assert!(
        seen.contains(&Exception::DivideByZero)
            && seen.iter().any(|e| matches!(e, Exception::UserError(_))),
        "both representatives should be observable across policies: {seen:?}"
    );
}

#[test]
fn get_exception_performed_twice_makes_independent_choices() {
    // §3.5's beta-reduction example, through the semantic runner: over
    // seeds, (v1, v2) takes all four combinations.
    let mut s = session();
    s.load(
        r#"main = do
  v1 <- getException ((1/0) + error "Urk")
  v2 <- getException ((1/0) + error "Urk")
  return (v1, v2)"#,
    )
    .expect("loads");
    let mut outcomes = std::collections::BTreeSet::new();
    for seed in 0..64 {
        let out = s.run_main_semantic("", seed).expect("runs");
        let urk::SemIoResult::Done(v) = out.result else {
            panic!("{:?}", out.result)
        };
        outcomes.insert(v);
    }
    assert_eq!(outcomes.len(), 4, "{outcomes:?}");
}

// ----------------------------------------------------------------------
// §4 — loop, and case-switching
// ----------------------------------------------------------------------

#[test]
fn loop_plus_error_denotes_bottom() {
    let mut s = session();
    s.options.denot.fuel = 50_000;
    let set = s
        .exception_set(r#"loop + error "Urk""#)
        .expect("evals")
        .expect("exceptional");
    assert!(set.is_all(), "loop + error denotes ⊥ = all exceptions");
}

#[test]
fn pair_case_switching_denotes_the_same_set() {
    let s = session();
    let lhs = s
        .exception_set(
            "case raise Overflow of { (a, b) ->
               case raise DivideByZero of { (p, q) -> a + p } }",
        )
        .expect("evals")
        .expect("exceptional");
    let rhs = s
        .exception_set(
            "case raise DivideByZero of { (p, q) ->
               case raise Overflow of { (a, b) -> a + p } }",
        )
        .expect("evals")
        .expect("exceptional");
    assert_eq!(lhs, rhs);
    assert!(lhs.contains(&Exception::Overflow));
    assert!(lhs.contains(&Exception::DivideByZero));
}

// ----------------------------------------------------------------------
// §4.4 — uncaught exceptions are reported
// ----------------------------------------------------------------------

#[test]
fn uncaught_exception_from_main_is_reported() {
    let mut s = session();
    s.load(r#"main = putStr (showInt (head []))"#)
        .expect("loads");
    let out = s.run_main("").expect("runs");
    assert!(matches!(
        out.result,
        urk::IoResult::Uncaught(Exception::PatternMatchFail(_))
    ));
}

// ----------------------------------------------------------------------
// §5.1 — asynchronous exceptions
// ----------------------------------------------------------------------

#[test]
fn control_c_reaches_get_exception() {
    let mut s = session();
    s.options.machine.event_schedule = vec![(10_000, Exception::Interrupt)];
    s.load(
        r#"main = do
  v <- getException (sum [1 .. 100000])
  case v of
    OK n          -> putStr "finished"
    Bad Interrupt -> putStr "ControlC"
    Bad e         -> putStr "other""#,
    )
    .expect("loads");
    let out = s.run_main("").expect("runs");
    assert_eq!(out.trace.output(), "ControlC");
}

// ----------------------------------------------------------------------
// §5.2 — detectable bottoms
// ----------------------------------------------------------------------

#[test]
fn black_hole_detection_is_permitted_but_not_required() {
    let mut s = session();
    s.load("black = black + 1").expect("loads");
    // Detecting implementation: NonTermination.
    s.options.machine.blackholes = BlackholeMode::Detect;
    let out = s.eval("black").expect("evals");
    assert_eq!(out.exception, Some(Exception::NonTermination));
    // Non-detecting implementation: spins until a limit.
    s.options.machine.blackholes = BlackholeMode::Loop;
    s.options.machine.max_steps = 5_000;
    assert!(matches!(s.eval("black"), Err(urk::Error::Machine { .. })));
}

// ----------------------------------------------------------------------
// §5.4 — mapException and unsafeIsException
// ----------------------------------------------------------------------

#[test]
fn map_exception_catches_all_and_rewrites() {
    let s = session();
    // The paper's example: raise UserError "Urk" instead of anything else.
    let out = s
        .eval(r#"mapException (\x -> UserError "Urk") (1/0)"#)
        .expect("evals");
    assert_eq!(out.exception, Some(Exception::UserError("Urk".into())));
    // It is pure: no IO monad involved, and normal values untouched.
    assert_eq!(
        s.eval(r#"1 + mapException (\x -> UserError "Urk") 41"#)
            .expect("evals")
            .rendered,
        "42"
    );
}

#[test]
fn unsafe_is_exception_on_div_plus_loop() {
    // §5.4's isException ((1/0) + loop): True one way, divergent the other.
    let mut s = session();
    s.options.machine.blackholes = BlackholeMode::Loop;
    s.options.machine.max_steps = 200_000;
    s.options.machine.order = OrderPolicy::LeftToRight;
    let src = "let infy = infy in unsafeIsException ((1/0) + infy)";
    assert_eq!(s.eval(src).expect("terminates").rendered, "True");
    s.options.machine.order = OrderPolicy::RightToLeft;
    assert!(matches!(s.eval(src), Err(urk::Error::Machine { .. })));
}

// ----------------------------------------------------------------------
// §6 — raising without the IO monad, handling near the top
// ----------------------------------------------------------------------

#[test]
fn raising_needs_no_io_and_handling_sits_at_the_top() {
    let mut s = session();
    s.load(
        r#"validate n = if n < 0 then error "negative" else n
total xs = sum (map validate xs)
main = do
  v <- getException (total [1, 2, 0 - 3])
  case v of
    OK n  -> putStr (showInt n)
    Bad e -> putStr "rejected""#,
    )
    .expect("loads");
    let out = s.run_main("").expect("runs");
    assert_eq!(out.trace.output(), "rejected");
}
