//! The compiled-backend differential battery: the flat-code executor must
//! be observationally indistinguishable from the tree-walker on every
//! corpus the repo already trusts, and both must stay inside the
//! denotational exception set (§4.5 refinement).
//!
//! Four layers of evidence:
//!
//! * the soundness corpus and the paper's worked examples evaluate to
//!   byte-identical renderings and identical representative exceptions on
//!   both backends, under both deterministic order policies;
//! * every exceptional outcome — from either backend — is a member of the
//!   denoted set, so agreement is not two matching wrong answers;
//! * the chaos corpus holds §5.1's invariants (soundness under injected
//!   faults, clean heap audit, oracle-consistent re-eval) when the faulted
//!   machine is executing flat code;
//! * vendored-proptest random well-typed core terms agree compiled vs
//!   tree-walked at the machine level, with denot-set membership.

use std::rc::Rc;
use std::sync::Arc;

use proptest::prelude::*;

use urk::{Backend, EvalPool, Options, PoolConfig, Session};
use urk_denot::{Denot, DenotEvaluator};
use urk_machine::{compile_program, MEnv, Machine, MachineConfig, OrderPolicy, Outcome};
use urk_syntax::core::{Alt, Expr, PrimOp};
use urk_syntax::{DataEnv, Symbol};

/// The closed-term corpus from `tests/soundness.rs`: every corner of the
/// semantics — values, laziness, exceptions, `seq`, `mapException`, the
/// unsafe observers, overflow, recursion, buried exceptions.
const CORPUS: &[&str] = &[
    "42",
    "1 + 2 * 3 - 4",
    "7 / 2 + 7 % 2",
    "'x'",
    "\"hello\"",
    "[1, 2, 3]",
    "(1, (2, 3))",
    "Just (Just 0)",
    r"(\x -> 3) (1/0)",
    "let x = raise Overflow in 42",
    "case 1 : raise Overflow of { x : xs -> x; [] -> 0 }",
    "fst (1, 1/0)",
    "1/0",
    "raise Overflow",
    r#"raise (UserError "Urk")"#,
    r#"(1/0) + raise (UserError "Urk")"#,
    "case raise Overflow of { True -> 1; False -> 2 }",
    "case Nothing of { Just n -> n }",
    "raise (raise DivideByZero)",
    "seq (1/0) 2",
    "seq 2 (1/0)",
    r#"mapException (\e -> Overflow) (1/0)"#,
    "unsafeIsException (1/0)",
    "unsafeIsException [1]",
    "case unsafeGetException (1/0) of { OK v -> 0; Bad e -> 1 }",
    "case unsafeGetException 9 of { OK v -> v; Bad e -> 0 }",
    "let m = raise DivideByZero in seq (raise Overflow) ((case 0 < m of { True -> 0; False -> m }) + 0)",
    "9223372036854775807 + 1",
    "negate (0 - 9223372036854775807)",
    "chr 97",
    "ord 'a' + 1",
    "let f = \\n -> if n == 0 then 1 else n * f (n - 1) in f 10",
    "let { isEven = \\n -> if n == 0 then True else isOdd (n - 1)
         ; isOdd = \\n -> if n == 0 then False else isEven (n - 1) }
     in isEven 10",
    "case (1/0, 5) of { (a, b) -> b }",
    "case (1/0, 5) of { (a, b) -> a }",
];

/// The chaos corpus from `tests/chaos.rs`: distinct denotational shapes
/// for the fault plans to race against.
const CHAOS_PROGRAMS: &[(&str, &str)] = &[
    (
        "fib",
        "let f = \\n -> if n < 2 then n else f (n - 1) + f (n - 2) in f 14",
    ),
    (
        "sum-buried-thunk",
        "let s = (let g = \\n -> if n == 0 then 0 else n + g (n - 1) in g 250) in s + 1",
    ),
    (
        "list-length",
        "let { upto = \\n -> if n == 0 then [] else n : upto (n - 1)
             ; len = \\xs -> case xs of { [] -> 0; y : ys -> 1 + len ys } }
         in len (upto 200)",
    ),
    (
        "divide-by-zero-at-depth",
        "let g = \\n -> if n == 0 then 1 / 0 else n + g (n - 1) in g 120",
    ),
    (
        "order-dependent-set",
        r#"(1/0) + (raise (UserError "Urk") + raise Overflow)"#,
    ),
    (
        "match-failure-at-depth",
        "let g = \\n -> if n == 0 then (case [] of { y : ys -> y }) else n + g (n - 1) in g 100",
    ),
];

/// A tree session and a compiled session with identical options.
fn backend_pair(order: OrderPolicy) -> (Session, Session) {
    let mut tree = Session::new();
    tree.options.machine.order = order;
    let mut compiled = Session::new();
    compiled.options.machine.order = order;
    compiled.options.backend = Backend::Compiled;
    (tree, compiled)
}

/// Asserts the two sessions agree on `src`, and that any exceptional
/// outcome is a member of the denoted set.
fn assert_agree(tree: &Session, compiled: &Session, src: &str) {
    let a = tree
        .eval(src)
        .unwrap_or_else(|e| panic!("{src}: tree: {e}"));
    let b = compiled
        .eval(src)
        .unwrap_or_else(|e| panic!("{src}: compiled: {e}"));
    assert_eq!(a.rendered, b.rendered, "{src}: rendered outcome diverged");
    assert_eq!(
        a.exception, b.exception,
        "{src}: representative exception diverged"
    );
    assert_eq!(b.stats.backend.name(), "compiled", "{src}");
    if let Some(exn) = &b.exception {
        let set = compiled
            .exception_set(src)
            .expect("denotes")
            .unwrap_or_else(|| panic!("{src}: machine raised {exn} but the denotation is Ok"));
        assert!(
            set.contains(exn),
            "{src}: compiled chose {exn} outside the denoted set {set}"
        );
    }
}

#[test]
fn the_soundness_corpus_agrees_under_both_order_policies() {
    for order in [OrderPolicy::LeftToRight, OrderPolicy::RightToLeft] {
        let (tree, compiled) = backend_pair(order);
        for src in CORPUS {
            assert_agree(&tree, &compiled, src);
        }
    }
}

#[test]
fn the_chaos_corpus_agrees_when_evaluated_normally() {
    let (tree, compiled) = backend_pair(OrderPolicy::LeftToRight);
    for (name, src) in CHAOS_PROGRAMS {
        let a = tree.eval(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let b = compiled.eval(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(a.rendered, b.rendered, "{name}");
        assert_eq!(a.exception, b.exception, "{name}");
    }
}

#[test]
fn paper_example_programs_agree_through_loaded_definitions() {
    // Loaded top-level definitions exercise the global-reference path of
    // the compiled format (the knot tied through `COp::Global`).
    let program = "safeDiv a b = if b == 0 then Bad DivideByZero else OK (a / b)\n\
                   useIt a b = case safeDiv a b of { OK v -> v; Bad ex -> 0 - 1 }\n\
                   sumTo n = if n == 0 then 0 else n + sumTo (n - 1)";
    let (mut tree, mut compiled) = backend_pair(OrderPolicy::LeftToRight);
    tree.load(program).expect("loads");
    compiled.load(program).expect("loads");
    for src in [
        "useIt 10 2",
        "useIt 10 0",
        "sumTo 100",
        "zipWith (+) [] [1]",
        "zipWith (+) [1] [1, 2]",
        "zipWith (/) [1, 2] [1, 0]",
        "seq (zipWith (/) [1] [0]) 5",
        "seq (forceList (zipWith (/) [1] [0])) 5",
        "take 5 (iterate (\\x -> x * 2) 1)",
        "head []",
        "map (\\x -> x * x) [1, 2, 3]",
    ] {
        assert_agree(&tree, &compiled, src);
    }
}

#[test]
fn the_chaos_corpus_holds_the_invariants_on_the_compiled_backend() {
    let mut session = Session::new();
    session.options.backend = Backend::Compiled;
    let mut injected_runs = 0u32;
    let mut runs = 0u32;
    for (name, src) in CHAOS_PROGRAMS {
        for seed in 0..12u64 {
            let r = session
                .chaos_check(src, seed)
                .unwrap_or_else(|e| panic!("{name}: front-end error: {e}"));
            assert!(
                r.sound,
                "{name} seed {seed}: unsound — outcome {} not in oracle {} ∪ {:?}",
                r.outcome,
                r.oracle,
                r.plan.injectable()
            );
            assert!(
                r.heap_consistent,
                "{name} seed {seed}: heap audit failed after interrupted compiled run ({})",
                r.outcome
            );
            assert!(
                r.reeval_ok,
                "{name} seed {seed}: compiled re-evaluation after disarming disagrees with {}",
                r.oracle
            );
            runs += 1;
            if r.faults_fired > 0 {
                injected_runs += 1;
            }
        }
    }
    assert!(
        injected_runs >= runs / 3,
        "too few compiled runs actually injected faults: {injected_runs}/{runs}"
    );
}

#[test]
fn first_compiled_eval_pays_for_lowering_and_later_ones_do_not() {
    let mut session = Session::new();
    session.options.backend = Backend::Compiled;
    let first = session.eval("1 + 2").expect("evals");
    assert!(
        first.stats.compile_ops > 0 && first.stats.compile_micros > 0,
        "the eval that triggers lowering must carry its cost: {:?}",
        first.stats
    );
    // Later evals still lower their own query, but the program image
    // (the Prelude — hundreds of ops) is reused, not recompiled.
    let second = session.eval("3 + 4").expect("evals");
    assert!(
        second.stats.compile_ops > 0 && second.stats.compile_ops < first.stats.compile_ops / 10,
        "later evals must reuse the cached image: first {} ops, second {} ops",
        first.stats.compile_ops,
        second.stats.compile_ops
    );
}

#[test]
fn pools_on_both_backends_agree_with_one_shared_image() {
    let sources: &[&str] = &["double x = x + x\nsquare x = x * x"];
    let exprs: Vec<String> = (0..8)
        .map(|i| format!("double (square {i}) + {i}"))
        .chain(["zipWith (/) [1, 2] [1, 0]".to_string(), "1/0".to_string()])
        .collect();
    let run = |backend| {
        let pool = EvalPool::start(
            sources,
            Options {
                backend,
                ..Options::default()
            },
            PoolConfig {
                workers: 3,
                cache_cap: 64,
                ..PoolConfig::default()
            },
        )
        .expect("pool starts");
        pool.eval_batch(&exprs)
    };
    let tree = run(Backend::Tree);
    let compiled = run(Backend::Compiled);
    for ((src, a), b) in exprs.iter().zip(&tree).zip(&compiled) {
        let a = a.as_ref().expect("tree evals");
        let b = b.as_ref().expect("compiled evals");
        assert_eq!(a.rendered, b.rendered, "{src}");
        assert_eq!(a.exception, b.exception, "{src}");
        assert_eq!(b.stats.backend.name(), "compiled", "{src}");
    }
}

// ----------------------------------------------------------------------
// Random well-typed terms, compiled vs tree-walked at the machine level.
// ----------------------------------------------------------------------

const POOL: [&str; 4] = ["pa", "pb", "pc", "pd"];

/// Generates a closed Int-typed expression (the `tests/properties.rs`
/// generator): recursion-free, so every term terminates, but `raise`,
/// division and `error` flow everywhere.
fn gen_int(depth: u32, scope: Vec<Symbol>) -> BoxedStrategy<Expr> {
    let var_leaf: BoxedStrategy<Expr> = if scope.is_empty() {
        Just(Expr::Int(7)).boxed()
    } else {
        proptest::sample::select(scope.clone())
            .prop_map(Expr::Var)
            .boxed()
    };
    let leaf = prop_oneof![
        (0i64..100).prop_map(Expr::Int),
        Just(Expr::raise(Expr::con("Overflow", []))),
        Just(Expr::raise(Expr::con("DivideByZero", []))),
        Just(Expr::error("Urk")),
        var_leaf,
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = move |scope: Vec<Symbol>| gen_int(depth - 1, scope);
    let s0 = scope.clone();
    let s1 = scope.clone();
    let s2 = scope.clone();
    let s3 = scope.clone();
    let s4 = scope.clone();
    let s5 = scope.clone();
    prop_oneof![
        3 => leaf,
        4 => (sub(s0.clone()), sub(s0.clone()), prop_oneof![
                Just(PrimOp::Add), Just(PrimOp::Sub), Just(PrimOp::Mul),
                Just(PrimOp::Div), Just(PrimOp::Mod)
             ])
            .prop_map(|(a, b, op)| Expr::prim(op, [a, b])),
        1 => (sub(s1.clone()), sub(s1.clone()))
            .prop_map(|(a, b)| Expr::prim(PrimOp::Seq, [a, b])),
        2 => (sub(s2.clone()), sub(s2.clone()), sub(s2.clone()), sub(s2.clone()))
            .prop_map(|(a, b, t, f)| {
                Expr::case(
                    Expr::prim(PrimOp::IntLt, [a, b]),
                    vec![
                        Alt::con("True", vec![], t),
                        Alt::con("False", vec![], f),
                    ],
                )
            }),
        2 => (0..POOL.len(), sub(s3.clone())).prop_flat_map(move |(i, rhs)| {
                let v = Symbol::intern(POOL[i]);
                let mut scope2 = s3.clone();
                scope2.push(v);
                sub(scope2).prop_map(move |body| Expr::let_(v, rhs.clone(), body))
             }),
        1 => (0..POOL.len(), sub(s4.clone())).prop_flat_map(move |(i, arg)| {
                let v = Symbol::intern(POOL[i]);
                let mut scope2 = s4.clone();
                scope2.push(v);
                sub(scope2).prop_map(move |body| {
                    Expr::app(Expr::lam(v, body), arg.clone())
                })
             }),
        1 => (0..POOL.len(), sub(s5.clone()), proptest::bool::ANY)
            .prop_flat_map(move |(i, payload, just)| {
                let v = Symbol::intern(POOL[i]);
                let mut scope2 = s5.clone();
                scope2.push(v);
                let s5b = s5.clone();
                (sub(scope2), sub(s5b)).prop_map(move |(just_rhs, nothing_rhs)| {
                    let scrut = if just {
                        Expr::con("Just", [payload.clone()])
                    } else {
                        Expr::con("Nothing", [])
                    };
                    Expr::case(
                        scrut,
                        vec![
                            Alt::con("Just", vec![v], just_rhs),
                            Alt::con("Nothing", vec![], nothing_rhs),
                        ],
                    )
                })
            }),
    ]
    .boxed()
}

fn render_outcome(m: &mut Machine, out: Outcome) -> String {
    match out {
        Outcome::Value(n) => m.render(n, 16),
        Outcome::Caught(e) | Outcome::Uncaught(e) => format!("(raise {e})"),
    }
}

fn tree_result(e: &Rc<Expr>, policy: OrderPolicy) -> (String, Option<urk_syntax::Exception>) {
    let mut m = Machine::new(MachineConfig {
        order: policy,
        ..MachineConfig::default()
    });
    let out = m.eval(e.clone(), &MEnv::empty(), true).expect("terminates");
    let exn = match &out {
        Outcome::Caught(e) | Outcome::Uncaught(e) => Some(e.clone()),
        Outcome::Value(_) => None,
    };
    (render_outcome(&mut m, out), exn)
}

fn compiled_result(e: &Rc<Expr>, policy: OrderPolicy) -> (String, Option<urk_syntax::Exception>) {
    let mut m = Machine::new(MachineConfig {
        order: policy,
        ..MachineConfig::default()
    });
    m.link_code(Arc::new(compile_program(&[])));
    let out = m.eval_code_expr(e, true).expect("terminates");
    let exn = match &out {
        Outcome::Caught(e) | Outcome::Uncaught(e) => Some(e.clone()),
        Outcome::Value(_) => None,
    };
    (render_outcome(&mut m, out), exn)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The tentpole's validation property: for random well-typed terms
    /// and every deterministic order policy, the compiled executor and
    /// the tree-walker produce identical outcomes, and any exception is
    /// inside the denoted set.
    #[test]
    fn compiled_execution_agrees_with_the_tree_walker(e in gen_int(4, Vec::new())) {
        let e = Rc::new(e);
        let data = DataEnv::new();
        let denot = DenotEvaluator::new(&data).eval_closed(&e);
        for policy in [OrderPolicy::LeftToRight, OrderPolicy::RightToLeft, OrderPolicy::Seeded(11)] {
            let (tr, te) = tree_result(&e, policy);
            let (cr, ce) = compiled_result(&e, policy);
            prop_assert_eq!(&tr, &cr, "rendered outcome diverged under {:?}", policy);
            prop_assert_eq!(&te, &ce, "exception diverged under {:?}", policy);
            if let Some(exn) = &ce {
                let Denot::Bad(set) = &denot else {
                    return Err(TestCaseError::fail(format!(
                        "machine raised {exn} but the denotation is Ok"
                    )));
                };
                prop_assert!(set.contains(exn),
                    "compiled chose {} outside the denoted set {}", exn, set);
            }
        }
    }
}
