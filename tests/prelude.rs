//! Golden tests for the Prelude: every function's inferred type and
//! behaviour, including how each interacts with exceptional values.

use urk::{Exception, Session};

fn s() -> Session {
    Session::new()
}

#[track_caller]
fn eval(session: &Session, src: &str) -> String {
    session.eval(src).expect("evals").rendered
}

#[test]
fn prelude_types_are_the_expected_schemes() {
    let session = s();
    let cases = [
        ("id", "a -> a"),
        ("const", "a -> b -> a"),
        ("flip", "(a -> b -> c) -> b -> a -> c"),
        ("not", "Bool -> Bool"),
        ("otherwise", "Bool"),
        ("fst", "Pair a b -> a"),
        ("snd", "Pair a b -> b"),
        ("error", "Str -> a"),
        ("head", "[a] -> a"),
        ("tail", "[a] -> [a]"),
        ("null", "[a] -> Bool"),
        ("length", "[a] -> Int"),
        ("append", "[a] -> [a] -> [a]"),
        ("map", "(a -> b) -> [a] -> [b]"),
        ("filter", "(a -> Bool) -> [a] -> [a]"),
        ("foldr", "(a -> b -> b) -> b -> [a] -> b"),
        ("foldl", "(a -> b -> a) -> a -> [b] -> a"),
        ("reverse", "[a] -> [a]"),
        ("concat", "[[a]] -> [a]"),
        ("concatMap", "(a -> [b]) -> [a] -> [b]"),
        ("take", "Int -> [a] -> [a]"),
        ("drop", "Int -> [a] -> [a]"),
        ("replicate", "Int -> a -> [a]"),
        ("iterate", "(a -> a) -> a -> [a]"),
        ("repeat", "a -> [a]"),
        ("zipWith", "(a -> b -> c) -> [a] -> [b] -> [c]"),
        ("zip", "[a] -> [b] -> [Pair a b]"),
        ("sum", "[Int] -> Int"),
        ("product", "[Int] -> Int"),
        ("max", "Int -> Int -> Int"),
        ("min", "Int -> Int -> Int"),
        ("abs", "Int -> Int"),
        ("even", "Int -> Bool"),
        ("odd", "Int -> Bool"),
        ("elem", "Int -> [Int] -> Bool"),
        ("enumFromTo", "Int -> Int -> [Int]"),
        ("lookup", "Int -> [Pair Int a] -> Maybe a"),
        ("fromMaybe", "a -> Maybe a -> a"),
        ("maybe", "a -> (b -> a) -> Maybe b -> a"),
        ("insert", "Int -> [Int] -> [Int]"),
        ("sort", "[Int] -> [Int]"),
        ("all", "(a -> Bool) -> [a] -> Bool"),
        ("any", "(a -> Bool) -> [a] -> Bool"),
        ("forceList", "[a] -> Bool"),
        ("concatStr", "[Str] -> Str"),
        ("loop", "a"),
    ];
    for (name, expected) in cases {
        assert_eq!(
            session
                .type_of_binding(name)
                .unwrap_or_else(|| panic!("{name} unbound")),
            expected,
            "type of {name}"
        );
    }
}

#[test]
fn list_functions_behave() {
    let session = s();
    assert_eq!(eval(&session, "length [1, 2, 3]"), "3");
    assert_eq!(
        eval(&session, "append [1] [2, 3]"),
        "Cons 1 (Cons 2 (Cons 3 Nil))"
    );
    assert_eq!(
        eval(&session, "reverse [1, 2, 3]"),
        "Cons 3 (Cons 2 (Cons 1 Nil))"
    );
    assert_eq!(
        eval(&session, "concat [[1], [], [2, 3]]"),
        "Cons 1 (Cons 2 (Cons 3 Nil))"
    );
    assert_eq!(eval(&session, "take 2 [9, 8, 7]"), "Cons 9 (Cons 8 Nil)");
    assert_eq!(eval(&session, "drop 2 [9, 8, 7]"), "Cons 7 Nil");
    assert_eq!(
        eval(&session, "replicate 3 'x'"),
        "Cons 'x' (Cons 'x' (Cons 'x' Nil))"
    );
    assert_eq!(
        eval(&session, "filter even [1 .. 6]"),
        "Cons 2 (Cons 4 (Cons 6 Nil))"
    );
    assert_eq!(eval(&session, "elem 3 [1 .. 5]"), "True");
    assert_eq!(eval(&session, "elem 9 [1 .. 5]"), "False");
    assert_eq!(
        eval(&session, "sort [3, 1, 2, 1]"),
        "Cons 1 (Cons 1 (Cons 2 (Cons 3 Nil)))"
    );
    assert_eq!(eval(&session, "sum [1 .. 100]"), "5050");
    assert_eq!(eval(&session, "product [1 .. 5]"), "120");
    assert_eq!(eval(&session, "null []"), "True");
    assert_eq!(eval(&session, "null [0]"), "False");
}

#[test]
fn folds_and_higher_order() {
    let session = s();
    assert_eq!(eval(&session, r"foldr (\a b -> a + b) 0 [1, 2, 3]"), "6");
    assert_eq!(eval(&session, r"foldl (\a b -> a - b) 10 [1, 2, 3]"), "4");
    assert_eq!(
        eval(&session, r"map (flip (-) 1) [5, 6]"),
        "Cons 4 (Cons 5 Nil)"
    );
    assert_eq!(eval(&session, r"all even [2, 4]"), "True");
    assert_eq!(eval(&session, r"any odd [2, 4]"), "False");
    assert_eq!(
        eval(&session, r"concatMap (\x -> [x, x]) [1, 2]"),
        "Cons 1 (Cons 1 (Cons 2 (Cons 2 Nil)))"
    );
    assert_eq!(eval(&session, r"(id . const 3) 9"), "3");
}

#[test]
fn maybe_and_pairs() {
    let session = s();
    assert_eq!(eval(&session, "lookup 2 [(1, 'a'), (2, 'b')]"), "Just 'b'");
    assert_eq!(eval(&session, "lookup 9 [(1, 'a')]"), "Nothing");
    assert_eq!(eval(&session, "fromMaybe 0 (Just 5)"), "5");
    assert_eq!(eval(&session, "fromMaybe 0 Nothing"), "0");
    assert_eq!(eval(&session, r"maybe 0 (\x -> x + 1) (Just 5)"), "6");
    assert_eq!(eval(&session, "fst (1, 2) + snd (3, 4)"), "5");
    assert_eq!(
        eval(&session, "zip [1, 2] ['a', 'b']"),
        "Cons (Pair 1 'a') (Cons (Pair 2 'b') Nil)"
    );
}

#[test]
fn laziness_in_the_prelude() {
    let session = s();
    // Infinite structures, finite demands.
    assert_eq!(
        eval(&session, "take 3 (repeat 1)"),
        "Cons 1 (Cons 1 (Cons 1 Nil))"
    );
    assert_eq!(eval(&session, r"head (iterate (\x -> x + 1) 0)"), "0");
    // const discards a diverging-ish argument.
    assert_eq!(eval(&session, "const 5 (error \"never\")"), "5");
    // map doesn't force elements.
    assert_eq!(eval(&session, r"length (map (\x -> x / 0) [1, 2, 3])"), "3");
}

#[test]
fn exceptions_flow_through_prelude_functions() {
    let session = s();
    // head/tail of [] raise PatternMatchFail (the paper's §2 example).
    let out = session.eval("head []").expect("evals");
    assert!(matches!(
        out.exception,
        Some(Exception::PatternMatchFail(_))
    ));
    let out = session.eval("tail []").expect("evals");
    assert!(matches!(
        out.exception,
        Some(Exception::PatternMatchFail(_))
    ));
    // sum forces everything: a buried division blows up the total.
    let out = session.eval("sum [1, 1/0, 3]").expect("evals");
    assert_eq!(out.exception, Some(Exception::DivideByZero));
    // but length doesn't look at elements:
    assert_eq!(eval(&session, "length [1, 1/0, 3]"), "3");
    // error has the paper's definition.
    let out = session.eval(r#"error "Urk""#).expect("evals");
    assert_eq!(out.exception, Some(Exception::UserError("Urk".into())));
}

#[test]
fn strings_and_chars() {
    let session = s();
    assert_eq!(eval(&session, r#"concatStr ["a", "b", "c"]"#), "\"abc\"");
    assert_eq!(eval(&session, "unwordsInt [1, 2]"), "\"1 2 \"");
    assert_eq!(eval(&session, "max 3 9 + min 3 9"), "12");
    assert_eq!(eval(&session, "abs (0 - 5)"), "5");
}

#[test]
fn prelude_survives_the_optimizer() {
    let mut session = s();
    let report = session.optimize().expect("optimizes");
    assert!(report.total_rewrites() > 0);
    // Everything above still behaves.
    assert_eq!(eval(&session, "sum (map (\\x -> x * x) [1 .. 10])"), "385");
    assert_eq!(eval(&session, "sort [2, 1]"), "Cons 1 (Cons 2 Nil)");
    assert_eq!(eval(&session, "take 2 (repeat 0)"), "Cons 0 (Cons 0 Nil)");
    let out = session.eval("head []").expect("evals");
    assert!(matches!(
        out.exception,
        Some(Exception::PatternMatchFail(_))
    ));
}
