//! The tier-2 differential battery: the analysis-licensed
//! superinstruction image must be observationally indistinguishable from
//! the tree-walker *and* the tier-1 image on every corpus the repo
//! trusts, under every order policy, chaos plan, and interrupt sweep —
//! while actually being faster (the perf claim lives in
//! `benches/codegen.rs` and `BENCH_codegen.json`; this file proves the
//! speed is not bought with wrong answers).
//!
//! Layers of evidence:
//!
//! * the soundness corpus and the paper's worked examples agree across
//!   all three engines under both deterministic orders, with every
//!   exceptional outcome a member of the denoted set (§3.5 refinement);
//! * the seeded order stays in per-seed lockstep across tiers, so the
//!   §3.5 "pick any member" draw stream is preserved by fusion;
//! * the bench workloads agree and the tier-2 gauges (`fused_steps`,
//!   `ic_hits`) prove the optimisations actually fired — agreement via
//!   the unoptimised path would be vacuous;
//! * the chaos corpus holds §5.1's invariants when the faulted machine
//!   executes the tier-2 image, and a deterministic interrupt sweep
//!   races delivery against a deliberately tiny nursery;
//! * a corrupted licence (a fact claiming a wrong constant) produces an
//!   observably wrong answer — proving the differential comparison is
//!   load-bearing, and that unlicensed speculation (propagating instead
//!   of storing a speculative raise) would be caught the same way.

use std::sync::Arc;

use urk::{Backend, EvalPool, Options, PoolConfig, Session, Tier};
use urk_bench::{compile, lower, lower_t2, pipeline_workload, run, run_flat, workloads, Workload};
use urk_machine::{
    compile_program, tier2_optimize, FactVal, GlobalFact, Machine, MachineConfig, OrderPolicy,
    Outcome, Tier2Facts,
};
use urk_syntax::{desugar_program, parse_program, DataEnv, Exception};

/// The closed-term corpus from `tests/soundness.rs` (same list the
/// tier-1 battery in `tests/compiled.rs` pins).
const CORPUS: &[&str] = &[
    "42",
    "1 + 2 * 3 - 4",
    "7 / 2 + 7 % 2",
    "'x'",
    "\"hello\"",
    "[1, 2, 3]",
    "(1, (2, 3))",
    "Just (Just 0)",
    r"(\x -> 3) (1/0)",
    "let x = raise Overflow in 42",
    "case 1 : raise Overflow of { x : xs -> x; [] -> 0 }",
    "fst (1, 1/0)",
    "1/0",
    "raise Overflow",
    r#"raise (UserError "Urk")"#,
    r#"(1/0) + raise (UserError "Urk")"#,
    "case raise Overflow of { True -> 1; False -> 2 }",
    "case Nothing of { Just n -> n }",
    "raise (raise DivideByZero)",
    "seq (1/0) 2",
    "seq 2 (1/0)",
    r#"mapException (\e -> Overflow) (1/0)"#,
    "unsafeIsException (1/0)",
    "unsafeIsException [1]",
    "case unsafeGetException (1/0) of { OK v -> 0; Bad e -> 1 }",
    "case unsafeGetException 9 of { OK v -> v; Bad e -> 0 }",
    "let m = raise DivideByZero in seq (raise Overflow) ((case 0 < m of { True -> 0; False -> m }) + 0)",
    "9223372036854775807 + 1",
    "chr 97",
    "ord 'a' + 1",
    "let f = \\n -> if n == 0 then 1 else n * f (n - 1) in f 10",
    "case (1/0, 5) of { (a, b) -> b }",
    "case (1/0, 5) of { (a, b) -> a }",
];

/// The chaos corpus from `tests/chaos.rs`.
const CHAOS_PROGRAMS: &[(&str, &str)] = &[
    (
        "fib",
        "let f = \\n -> if n < 2 then n else f (n - 1) + f (n - 2) in f 14",
    ),
    (
        "sum-buried-thunk",
        "let s = (let g = \\n -> if n == 0 then 0 else n + g (n - 1) in g 250) in s + 1",
    ),
    (
        "divide-by-zero-at-depth",
        "let g = \\n -> if n == 0 then 1 / 0 else n + g (n - 1) in g 120",
    ),
    (
        "order-dependent-set",
        r#"(1/0) + (raise (UserError "Urk") + raise Overflow)"#,
    ),
    (
        "match-failure-at-depth",
        "let g = \\n -> if n == 0 then (case [] of { y : ys -> y }) else n + g (n - 1) in g 100",
    ),
];

/// Tree, tier-1, and tier-2 sessions with identical options otherwise.
fn engine_triple(order: OrderPolicy) -> (Session, Session, Session) {
    let mut tree = Session::new();
    tree.options.machine.order = order;
    let mut t1 = Session::new();
    t1.options.machine.order = order;
    t1.options.backend = Backend::Compiled;
    let mut t2 = Session::new();
    t2.options.machine.order = order;
    t2.options.backend = Backend::Compiled;
    t2.options.tier = Tier::Two;
    (tree, t1, t2)
}

/// Asserts all three engines agree on `src`, the tier-2 run is tagged as
/// tier 2, and any exceptional outcome is inside the denoted set.
fn assert_three_way(tree: &Session, t1: &Session, t2: &Session, src: &str) {
    let a = tree
        .eval(src)
        .unwrap_or_else(|e| panic!("{src}: tree: {e}"));
    let b = t1
        .eval(src)
        .unwrap_or_else(|e| panic!("{src}: tier 1: {e}"));
    let c = t2
        .eval(src)
        .unwrap_or_else(|e| panic!("{src}: tier 2: {e}"));
    assert_eq!(a.rendered, b.rendered, "{src}: tree vs tier 1");
    assert_eq!(a.rendered, c.rendered, "{src}: tree vs tier 2");
    assert_eq!(a.exception, c.exception, "{src}: representative exception");
    assert_eq!(c.stats.tier.name(), "2", "{src}: stats must carry the tier");
    assert_eq!(b.stats.tier.name(), "1", "{src}");
    if let Some(exn) = &c.exception {
        let set = t2
            .exception_set(src)
            .expect("denotes")
            .unwrap_or_else(|| panic!("{src}: tier 2 raised {exn} but the denotation is Ok"));
        assert!(
            set.contains(exn),
            "{src}: tier 2 chose {exn} outside the denoted set {set}"
        );
    }
}

#[test]
fn the_soundness_corpus_agrees_across_engines_under_both_orders() {
    for order in [OrderPolicy::LeftToRight, OrderPolicy::RightToLeft] {
        let (tree, t1, t2) = engine_triple(order);
        for src in CORPUS {
            assert_three_way(&tree, &t1, &t2, src);
        }
    }
}

#[test]
fn paper_examples_agree_through_loaded_definitions_at_tier_2() {
    // Loaded definitions are where the tier-2 ops actually live (query
    // extensions lower at tier 1), so these exercise `Fused`, `Spec`,
    // and `AppG` through the global table.
    let program = "safeDiv a b = if b == 0 then Bad DivideByZero else OK (a / b)\n\
                   useIt a b = case safeDiv a b of { OK v -> v; Bad ex -> 0 - 1 }\n\
                   sumTo n = if n == 0 then 0 else n + sumTo (n - 1)";
    let (mut tree, mut t1, mut t2) = engine_triple(OrderPolicy::LeftToRight);
    tree.load(program).expect("loads");
    t1.load(program).expect("loads");
    t2.load(program).expect("loads");
    for src in [
        "useIt 10 2",
        "useIt 10 0",
        "sumTo 100",
        "zipWith (/) [1, 2] [1, 0]",
        "seq (forceList (zipWith (/) [1] [0])) 5",
        "take 5 (iterate (\\x -> x * 2) 1)",
        "head []",
        "map (\\x -> x * x) [1, 2, 3]",
    ] {
        assert_three_way(&tree, &t1, &t2, src);
    }
}

#[test]
fn seeded_orders_stay_in_lockstep_across_all_three_engines() {
    // §3.5's seeded draw stream must survive fusion: the pass disables
    // prim-region speculation under Seeded and region-evaluates
    // chosen-first, so each seed picks the same member everywhere.
    let src = r#"(1/0) + (raise (UserError "a") + raise Overflow)"#;
    for seed in 0..16u64 {
        let (tree, t1, t2) = engine_triple(OrderPolicy::Seeded(seed));
        let a = tree.eval(src).expect("tree evals");
        let b = t1.eval(src).expect("tier 1 evals");
        let c = t2.eval(src).expect("tier 2 evals");
        assert_eq!(a.rendered, b.rendered, "seed {seed}: tree vs tier 1");
        assert_eq!(a.rendered, c.rendered, "seed {seed}: tree vs tier 2");
    }
}

#[test]
fn bench_workloads_agree_and_the_tier2_gauges_prove_the_claim() {
    let mut all = workloads();
    all.push(pipeline_workload());
    for w in &all {
        let c = compile(w);
        let (tree, _) = run(&c, MachineConfig::default());
        let code1 = lower(&c);
        let (t1, s1) = run_flat(&c, &code1, MachineConfig::default());
        let code2 = lower_t2(&c);
        assert!(code2.is_tier2());
        code2.verify().expect("tier-2 image verifies");
        let (t2, s2) = run_flat(&c, &code2, MachineConfig::default());
        assert_eq!(tree, w.expected, "workload {}", w.name);
        assert_eq!(t1, w.expected, "workload {}", w.name);
        assert_eq!(t2, w.expected, "workload {}", w.name);
        // The gauges: agreement is only meaningful if the tier-2 ops ran.
        assert!(
            s2.fused_steps > 0,
            "workload {}: no fused regions executed: {s2:?}",
            w.name
        );
        assert!(
            s2.ic_hits > 0,
            "workload {}: inline caches never hit: {s2:?}",
            w.name
        );
        assert!(
            s2.ic_hits > s2.ic_misses,
            "workload {}: monomorphic call sites must be cache-friendly",
            w.name
        );
        // Fused regions collapse step sequences, so the tier-2 image
        // must take strictly fewer machine steps.
        assert!(
            s2.steps < s1.steps,
            "workload {}: tier 2 took {} steps, tier 1 {}",
            w.name,
            s2.steps,
            s1.steps
        );
    }
}

#[test]
fn the_chaos_corpus_holds_the_invariants_on_the_tier2_image() {
    let mut session = Session::new();
    session.options.backend = Backend::Compiled;
    session.options.tier = Tier::Two;
    let mut injected_runs = 0u32;
    let mut runs = 0u32;
    for (name, src) in CHAOS_PROGRAMS {
        for seed in 0..10u64 {
            let r = session
                .chaos_check(src, seed)
                .unwrap_or_else(|e| panic!("{name}: front-end error: {e}"));
            assert!(
                r.sound,
                "{name} seed {seed}: unsound under tier 2 — outcome {} not in oracle {} ∪ {:?}",
                r.outcome,
                r.oracle,
                r.plan.injectable()
            );
            assert!(
                r.heap_consistent,
                "{name} seed {seed}: heap audit failed after faulted tier-2 run ({})",
                r.outcome
            );
            assert!(
                r.reeval_ok,
                "{name} seed {seed}: tier-2 re-evaluation after disarming disagrees with {}",
                r.oracle
            );
            runs += 1;
            if r.faults_fired > 0 {
                injected_runs += 1;
            }
        }
    }
    assert!(
        injected_runs >= runs / 3,
        "too few tier-2 runs actually injected faults: {injected_runs}/{runs}"
    );
}

#[test]
fn interrupt_sweeps_race_delivery_against_a_tiny_nursery() {
    // An allocating workload on the tier-2 image with a nursery small
    // enough that minor collections run constantly, sweeping a
    // deterministic Interrupt across the run: §5.1 demands every landing
    // point either completes or catches, audits clean, and the same
    // machine re-evaluates correctly afterwards.
    let w = Workload {
        query: "pipe 60".into(),
        ..pipeline_workload()
    };
    let c = compile(&w);
    let code = lower_t2(&c);
    let base = MachineConfig {
        nursery_size: 64,
        gc_threshold: 256,
        ..MachineConfig::default()
    };
    let (undisturbed, baseline) = run_flat(&c, &code, base.clone());
    assert!(
        baseline.minor_gcs > 0,
        "the sweep must actually race minor GC: {baseline:?}"
    );
    let horizon = baseline.steps;
    let stride = (horizon / 40).max(1);
    let mut interrupted = 0u32;
    for at in (1..horizon).step_by(stride as usize) {
        let mut m = Machine::new(MachineConfig {
            event_schedule: vec![(at, Exception::Interrupt)],
            ..base.clone()
        });
        m.link_code(Arc::clone(&code));
        let out = m
            .eval_code_expr(&c.query, true)
            .unwrap_or_else(|e| panic!("step {at}: machine error {e}"));
        match out {
            Outcome::Value(n) => assert_eq!(m.render(n, 16), undisturbed, "step {at}"),
            Outcome::Caught(Exception::Interrupt) => interrupted += 1,
            other => panic!("step {at}: unjustified outcome {other:?}"),
        }
        let audit = m.audit_heap();
        assert!(audit.is_consistent(), "step {at}: {audit}");
        // The schedule is exhausted; the same machine must recover.
        let re = m
            .eval_code_expr(&c.query, true)
            .unwrap_or_else(|e| panic!("step {at}: re-eval error {e}"));
        match re {
            Outcome::Value(n) => assert_eq!(m.render(n, 16), undisturbed, "step {at}: re-eval"),
            other => panic!("step {at}: re-eval produced {other:?}"),
        }
        let audit = m.audit_heap();
        assert!(audit.is_consistent(), "step {at}: after re-eval: {audit}");
    }
    assert!(
        interrupted > 5,
        "the sweep never landed mid-run ({interrupted} interrupts)"
    );
}

#[test]
fn speculative_raises_are_stored_not_propagated() {
    // §3.3's discipline at the speculation site: `main` denotes {42} —
    // the poisoned binding is never demanded. An unlicensed
    // implementation that *propagates* the speculative raise would
    // answer `(raise DivideByZero)` and this differential would catch
    // it; the fused_steps gauge proves the speculation actually ran.
    let mut data = DataEnv::new();
    let prog = desugar_program(
        &parse_program(
            "main = let x = 1/0 in 42\n\
             demand = let y = 2/0 in y + 1",
        )
        .expect("parses"),
        &mut data,
    )
    .expect("desugars");
    let base = compile_program(&prog.binds);
    let t2 = Arc::new(tier2_optimize(&base, &Tier2Facts::empty()));
    let eval = |query: &str| {
        let mut m = Machine::new(MachineConfig::default());
        m.link_code(Arc::clone(&t2));
        let e =
            urk_syntax::desugar_expr(&urk_syntax::parse_expr_src(query).expect("parses"), &data)
                .expect("desugars");
        let out = m.eval_code_expr(&e, true).expect("no machine error");
        let rendered = match out {
            Outcome::Value(n) => m.render(n, 16),
            Outcome::Caught(e) | Outcome::Uncaught(e) => format!("(raise {e})"),
        };
        (rendered, m.stats().clone())
    };
    let (undemanded, stats) = eval("main");
    assert_eq!(undemanded, "42", "a stored speculative raise is invisible");
    assert!(
        stats.fused_steps > 0,
        "speculation must have run: {stats:?}"
    );
    let (demanded, _) = eval("demand");
    assert_eq!(
        demanded, "(raise DivideByZero)",
        "a demanded poisoned binding raises the stored member"
    );
}

#[test]
fn a_corrupted_licence_is_caught_by_the_differential_battery() {
    // Facts are a licence, not a proof: the constant-substitution pass
    // emits the *fact's* value, so a corrupted analysis produces an
    // observably wrong image. This is the acceptance sabotage for the
    // licence path — the same comparison every test above runs is what
    // catches it.
    let src = "k = 42\nmain = k + 1";
    let mut data = DataEnv::new();
    let prog = desugar_program(&parse_program(src).expect("parses"), &mut data).expect("desugars");
    let base = compile_program(&prog.binds);
    let honest = Tier2Facts {
        globals: vec![
            GlobalFact {
                whnf_safe: true,
                value: Some(FactVal::Int(42)),
                demands: Vec::new(),
            },
            GlobalFact::default(),
        ],
    };
    let corrupted = Tier2Facts {
        globals: vec![
            GlobalFact {
                whnf_safe: true,
                value: Some(FactVal::Int(7)),
                demands: Vec::new(),
            },
            GlobalFact::default(),
        ],
    };
    let eval = |code: Arc<urk::Code>| {
        let mut m = Machine::new(MachineConfig::default());
        m.link_code(code);
        let e =
            urk_syntax::desugar_expr(&urk_syntax::parse_expr_src("main").expect("parses"), &data)
                .expect("desugars");
        match m.eval_code_expr(&e, false).expect("no machine error") {
            Outcome::Value(n) => m.render(n, 16),
            other => panic!("unexpected {other:?}"),
        }
    };
    let good = eval(Arc::new(tier2_optimize(&base, &honest)));
    assert_eq!(good, "43", "an honest licence preserves the answer");
    let bad = eval(Arc::new(tier2_optimize(&base, &corrupted)));
    assert_eq!(
        bad, "8",
        "the corrupted fact's constant must flow to the answer (making \
         the licence load-bearing and the differential check decisive)"
    );
    assert_ne!(good, bad, "the battery's comparison catches the sabotage");
}

#[test]
fn pools_at_tier_2_agree_with_the_tree_backend_on_one_shared_image() {
    let sources: &[&str] = &["double x = x + x\nsquare x = x * x"];
    let exprs: Vec<String> = (0..8)
        .map(|i| format!("double (square {i}) + {i}"))
        .chain(["zipWith (/) [1, 2] [1, 0]".to_string(), "1/0".to_string()])
        .collect();
    let run = |backend, tier| {
        let pool = EvalPool::start(
            sources,
            Options {
                backend,
                tier,
                ..Options::default()
            },
            PoolConfig {
                workers: 3,
                cache_cap: 64,
                ..PoolConfig::default()
            },
        )
        .expect("pool starts");
        pool.eval_batch(&exprs)
    };
    let tree = run(Backend::Tree, Tier::One);
    let t2 = run(Backend::Compiled, Tier::Two);
    for ((src, a), b) in exprs.iter().zip(&tree).zip(&t2) {
        let a = a.as_ref().expect("tree evals");
        let b = b.as_ref().expect("tier 2 evals");
        assert_eq!(a.rendered, b.rendered, "{src}");
        assert_eq!(a.exception, b.exception, "{src}");
        assert_eq!(b.stats.tier.name(), "2", "{src}");
    }
}

#[test]
fn tier_switches_invalidate_the_session_image() {
    let mut s = Session::new();
    s.options.backend = Backend::Compiled;
    s.load("inc x = x + 1").expect("loads");
    let first = s.eval("inc 1").expect("evals");
    assert_eq!(first.rendered, "2");
    assert_eq!(first.stats.tier.name(), "1");
    s.options.tier = Tier::Two;
    let second = s.eval("inc 2").expect("evals");
    assert_eq!(second.rendered, "3");
    assert_eq!(second.stats.tier.name(), "2");
    assert!(
        second.stats.compile_ops > 0,
        "the tier switch must re-lower the program: {:?}",
        second.stats
    );
    s.options.tier = Tier::One;
    let third = s.eval("inc 3").expect("evals");
    assert_eq!(third.rendered, "4");
    assert_eq!(third.stats.tier.name(), "1");
}
