//! The §4.4 concurrency extension: `forkIO`/`yield` under the cooperative
//! round-robin scheduler, and how imprecise exceptions interact with
//! threads.

use urk::{Exception, IoResult, Session};
use urk_io::ThreadResult;

#[test]
fn forked_threads_interleave_with_main() {
    let mut s = Session::new();
    s.load(
        r#"chatter c n = if n == 0 then return 0
                        else putChar c >> chatter c (n - 1)
main = do
  t <- forkIO (chatter 'b' 3)
  chatter 'a' 3
  putChar '.'
  putChar '.'
  return t"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    // One action per quantum: outputs strictly alternate while both live
    // (the forked thread enters the ready queue ahead of the re-enqueued
    // main thread, so it goes first).
    assert_eq!(out.trace.output(), "bababa..", "{}", out.trace);
    assert!(matches!(out.main, IoResult::Done(ref v) if v == "1"));
}

#[test]
fn forked_thread_exception_does_not_kill_main() {
    let mut s = Session::new();
    s.load(
        r#"main = do
  forkIO (putStr (showInt (1/0)))
  yield
  putStr "main survived"
  return ()"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    assert_eq!(out.trace.output(), "main survived");
    assert!(matches!(out.main, IoResult::Done(_)));
    // The forked thread died on DivideByZero and is recorded.
    assert!(out.threads.iter().any(|(tid, r)| {
        *tid == 1 && matches!(r, ThreadResult::Uncaught(Exception::DivideByZero))
    }));
}

#[test]
fn get_exception_works_inside_threads() {
    let mut s = Session::new();
    s.load(
        r#"worker = do
  v <- getException (1/0)
  case v of
    OK n  -> putStr "no"
    Bad e -> putStr "thread recovered"
main = do
  forkIO worker
  yield
  yield
  yield
  return ()"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    assert_eq!(out.trace.output(), "thread recovered");
}

#[test]
fn threads_share_poisoned_thunks() {
    // A thunk poisoned in one thread re-raises the same representative in
    // another (§3.3's overwrite, observed across threads).
    let mut s = Session::new();
    s.load(
        r#"shared = (1/0) + error "Urk"
probe tag = do
  v <- getException shared
  case v of
    Bad DivideByZero  -> putStr (strAppend tag "D")
    Bad (UserError m) -> putStr (strAppend tag "U")
    _                 -> putStr "?"
main = do
  forkIO (probe "t")
  probe "m"
  yield
  return ()"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    // Both threads must report the same member (poisoning).
    let o = out.trace.output();
    assert!(
        o == "mDtD" || o == "tDmD" || o == "mUtU" || o == "tUmU",
        "{o}"
    );
}

#[test]
fn main_exit_kills_remaining_threads() {
    let mut s = Session::new();
    s.load(
        r#"forever = putChar 'x' >> forever
main = do
  forkIO forever
  yield
  yield
  return 99"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    assert!(matches!(out.main, IoResult::Done(ref v) if v == "99"));
    assert!(out
        .threads
        .iter()
        .any(|(tid, r)| *tid == 1 && matches!(r, ThreadResult::Killed)));
    // It got a couple of quanta before main exited.
    assert!(!out.trace.output().is_empty());
}

#[test]
fn fork_returns_distinct_thread_ids_and_traces_them() {
    let mut s = Session::new();
    s.load(
        r#"main = do
  a <- forkIO (return 0)
  b <- forkIO (return 0)
  yield
  return (a, b)"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    assert!(matches!(out.main, IoResult::Done(ref v) if v == "Pair 1 2"));
    let forks: Vec<String> = out
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e, urk::Event::Forked(_)))
        .map(|e| e.to_string())
        .collect();
    assert_eq!(forks, vec!["fork[1]", "fork[2]"]);
}

#[test]
fn types_of_fork_and_yield() {
    let s = Session::new();
    assert_eq!(s.type_of("forkIO (return 'a')").expect("types"), "IO Int");
    assert_eq!(s.type_of("yield").expect("types"), "IO Unit");
    // forkIO demands an IO action.
    assert!(s.type_of("forkIO 3").is_err());
}

// ----------------------------------------------------------------------
// MVars (Concurrent Haskell's communication cells)
// ----------------------------------------------------------------------

#[test]
fn mvar_types_check() {
    let s = Session::new();
    assert_eq!(s.type_of("newMVar 3").expect("types"), "IO (MVar Int)");
    assert_eq!(s.type_of("newEmptyMVar").expect("types"), "IO (MVar a)");
    assert_eq!(
        s.type_of(r"newMVar 'x' >>= \m -> takeMVar m")
            .expect("types"),
        "IO Char"
    );
    assert_eq!(
        s.type_of(r"newEmptyMVar >>= \m -> putMVar m 5")
            .expect("types"),
        "IO Unit"
    );
    // putMVar must match the cell's element type.
    assert!(s.type_of(r"newMVar 'x' >>= \m -> putMVar m 5").is_err());
}

#[test]
fn mvar_take_put_round_trip_single_thread() {
    let mut s = Session::new();
    s.load(
        r#"main = do
  m <- newMVar 41
  v <- takeMVar m
  putMVar m (v + 1)
  w <- takeMVar m
  putStr (showInt w)"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    assert_eq!(out.trace.output(), "42");
}

#[test]
fn producer_consumer_through_an_mvar() {
    let mut s = Session::new();
    s.load(
        r#"produce m n = if n == 0 then return ()
                        else putMVar m n >> produce m (n - 1)
consume m n = if n == 0 then return ()
              else do
                v <- takeMVar m
                putStr (showInt v)
                consume m (n - 1)
main = do
  m <- newEmptyMVar
  forkIO (produce m 4)
  consume m 4"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    // One-slot channel: values arrive in order.
    assert_eq!(out.trace.output(), "4321");
    assert!(matches!(out.main, IoResult::Done(_)));
}

#[test]
fn take_blocks_until_another_thread_puts() {
    let mut s = Session::new();
    s.load(
        r#"main = do
  m <- newEmptyMVar
  forkIO (yield >> yield >> putMVar m 7)
  v <- takeMVar m
  putStr (showInt v)"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    assert_eq!(out.trace.output(), "7");
}

#[test]
fn blocked_forever_is_reported_like_ghc() {
    let mut s = Session::new();
    s.load("main = newEmptyMVar >>= \\m -> takeMVar m")
        .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    assert!(matches!(
        out.main,
        IoResult::Uncaught(Exception::BlockedIndefinitely)
    ));
}

#[test]
fn put_blocks_on_a_full_mvar() {
    let mut s = Session::new();
    s.load(
        r#"main = do
  m <- newMVar 1
  forkIO (takeMVar m >>= \v -> putStr (showInt v))
  putMVar m 2
  v <- takeMVar m
  putStr (showInt v)"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    // Main's put blocks until the forked take empties the cell.
    assert_eq!(out.trace.output(), "12");
}

#[test]
fn mvar_as_a_mutex_serializes_critical_sections() {
    let mut s = Session::new();
    s.load(
        r#"critical m c = do
  u <- takeMVar m
  putChar c
  putChar c
  putMVar m ()
main = do
  m <- newMVar ()
  forkIO (critical m 'a')
  critical m 'b'
  yield
  yield
  yield
  return ()"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    // Whoever takes the lock first prints both its characters before the
    // other enters.
    let o = out.trace.output();
    assert!(o == "aabb" || o == "bbaa", "{o}");
}

#[test]
fn prelude_mvar_helpers() {
    let mut s = Session::new();
    s.load(
        r#"main = do
  m <- newMVar 20
  modifyMVar m (* 2)
  v <- readMVar m
  w <- readMVar m
  putStr (showInt (v + w + 2))"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    assert_eq!(out.trace.output(), "82");
}

#[test]
fn optimizer_does_not_disturb_concurrent_programs() {
    let mut s = Session::new();
    s.load(
        r#"produce m n = if n == 0 then return () else putMVar m n >> produce m (n - 1)
consume m n acc = if n == 0 then return acc
                  else takeMVar m >>= \v -> consume m (n - 1) (acc + v)
main = do
  m <- newEmptyMVar
  forkIO (produce m 5)
  total <- consume m 5 0
  putStr (showInt total)"#,
    )
    .expect("loads");
    let before = s.run_main_concurrent("").expect("runs").trace.output();
    s.optimize().expect("optimizes");
    let after = s.run_main_concurrent("").expect("runs").trace.output();
    assert_eq!(before, after);
    assert_eq!(after, "15");
}

// ----------------------------------------------------------------------
// throwTo / killThread (§5.1 directed at the §4.4 threads)
// ----------------------------------------------------------------------

#[test]
fn throw_to_kills_a_thread_not_listening() {
    let mut s = Session::new();
    s.load(
        r#"forever = putChar '.' >> forever
main = do
  t <- forkIO forever
  yield
  yield
  throwTo t (UserError "stop")
  yield
  yield
  putStr "done"
  return ()"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    assert!(out.trace.output().ends_with("done"));
    assert!(out.threads.iter().any(|(tid, r)| {
        *tid == 1 && matches!(r, ThreadResult::Uncaught(Exception::UserError(_)))
    }));
}

#[test]
fn throw_to_is_catchable_at_a_get_exception_point() {
    // The §5.1 rule: getException v --?x--> return (Bad x). A thread
    // sitting at a getException when the exception lands recovers.
    let mut s = Session::new();
    s.load(
        r#"worker m = do
  v <- getException (sum [1 .. 10])
  case v of
    OK n          -> putMVar m 0
    Bad Interrupt -> putMVar m 1
    Bad e         -> putMVar m 2
main = do
  m <- newEmptyMVar
  t <- forkIO (yield >> worker m)
  killThread t
  r <- takeMVar m
  putStr (showInt r)"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    assert_eq!(out.trace.output(), "1", "{}", out.trace);
}

#[test]
fn throw_to_wakes_a_blocked_thread() {
    let mut s = Session::new();
    s.load(
        r#"main = do
  m <- newEmptyMVar
  t <- forkIO (takeMVar m >>= \v -> putStr "never")
  yield
  throwTo t Timeout
  yield
  yield
  putStr "main done"
  return ()"#,
    )
    .expect("loads");
    let out = s.run_main_concurrent("").expect("runs");
    assert_eq!(out.trace.output(), "main done");
    assert!(out
        .threads
        .iter()
        .any(|(tid, r)| { *tid == 1 && matches!(r, ThreadResult::Uncaught(Exception::Timeout)) }));
}
