//! The static-analysis soundness battery.
//!
//! The whole-program exception-effect analysis (`urk-analysis`) promises
//! a *conservative* prediction: whatever exception either machine backend
//! actually raises — and whatever the denotational semantics says the
//! expression's set is — must be inside the statically predicted set.
//! This file enforces that differentially:
//!
//! * over the soundness corpus, on both backends and both deterministic
//!   order policies: denoted set ⊆ predicted set, and every machine
//!   representative ∈ predicted set;
//! * over ≥256 vendored-proptest random core terms, machine-checked on
//!   the tree and compiled executors (the compiled runs also pass every
//!   arena through `Code::verify`, which panics in debug builds on any
//!   structural defect — so this battery doubles as the verifier's
//!   accept-side property);
//! * the analysis-licensed optimizer rewrites fire on programs built to
//!   need proofs, and validate as §4.5 identity-or-refinement;
//! * `Code::verify` accepts every compiler-emitted arena for the corpus
//!   programs (the reject side lives in the machine crate's sabotage
//!   tests).

use std::rc::Rc;
use std::sync::Arc;

use proptest::prelude::*;

use urk::{Backend, Session};
use urk_analysis::analyze_program;
use urk_denot::{Denot, DenotEvaluator, ExnSet};
use urk_machine::{compile_program, MEnv, Machine, MachineConfig, OrderPolicy, Outcome};
use urk_syntax::core::{Alt, CoreProgram, Expr, PrimOp};
use urk_syntax::{DataEnv, Symbol};

/// The closed-term corpus from `tests/soundness.rs` / `tests/compiled.rs`.
const CORPUS: &[&str] = &[
    "42",
    "1 + 2 * 3 - 4",
    "7 / 2 + 7 % 2",
    "'x'",
    "\"hello\"",
    "[1, 2, 3]",
    "(1, (2, 3))",
    "Just (Just 0)",
    r"(\x -> 3) (1/0)",
    "let x = raise Overflow in 42",
    "case 1 : raise Overflow of { x : xs -> x; [] -> 0 }",
    "fst (1, 1/0)",
    "1/0",
    "raise Overflow",
    r#"raise (UserError "Urk")"#,
    r#"(1/0) + raise (UserError "Urk")"#,
    "case raise Overflow of { True -> 1; False -> 2 }",
    "case Nothing of { Just n -> n }",
    "raise (raise DivideByZero)",
    "seq (1/0) 2",
    "seq 2 (1/0)",
    r#"mapException (\e -> Overflow) (1/0)"#,
    "unsafeIsException (1/0)",
    "unsafeIsException [1]",
    "case unsafeGetException (1/0) of { OK v -> 0; Bad e -> 1 }",
    "case unsafeGetException 9 of { OK v -> v; Bad e -> 0 }",
    "9223372036854775807 + 1",
    "chr 97",
    "ord 'a' + 1",
    "let f = \\n -> if n == 0 then 1 else n * f (n - 1) in f 10",
    "case (1/0, 5) of { (a, b) -> b }",
    "case (1/0, 5) of { (a, b) -> a }",
];

/// `smaller ⊆ bigger`, with ⊥ (`All`) as the top of the inclusion order.
fn assert_subset(smaller: &ExnSet, bigger: &ExnSet, ctx: &str) {
    if bigger.is_all() {
        return;
    }
    let members = smaller
        .members()
        .unwrap_or_else(|| panic!("{ctx}: actual set is ⊥ but the prediction {bigger} is finite"));
    for e in &members {
        assert!(
            bigger.contains(e),
            "{ctx}: actual member {e} escapes the predicted set {bigger}"
        );
    }
}

/// Predicted sets over-approximate the denotation and cover every
/// machine representative, for the whole corpus, on both backends and
/// both deterministic order policies.
#[test]
fn corpus_predictions_cover_denotation_and_both_backends() {
    for order in [OrderPolicy::LeftToRight, OrderPolicy::RightToLeft] {
        for backend in [Backend::Tree, Backend::Compiled] {
            let mut session = Session::new();
            session.options.machine.order = order;
            session.options.backend = backend;
            for src in CORPUS {
                let predicted = session.predicted_exceptions(src).expect("analyzes");
                if let Some(denoted) = session.exception_set(src).expect("denotes") {
                    assert_subset(&denoted, &predicted, src);
                }
                let out = session.eval(src).expect("evaluates");
                if let Some(exn) = &out.exception {
                    assert!(
                        predicted.contains(exn),
                        "{src}: {} machine raised {exn} outside the predicted set {predicted}",
                        backend.name(),
                    );
                }
            }
        }
    }
}

/// Summaries keep the guarantee through loaded top-level definitions
/// (saturated calls, recursion pinned to ⊥, higher-order arguments).
#[test]
fn loaded_programs_keep_predictions_conservative() {
    let program = "safeDiv a b = if b == 0 then Bad DivideByZero else OK (a / b)\n\
                   useIt a b = case safeDiv a b of { OK v -> v; Bad ex -> 0 - 1 }\n\
                   sumTo n = if n == 0 then 0 else n + sumTo (n - 1)\n\
                   partial m = case m of { Just x -> x }";
    for backend in [Backend::Tree, Backend::Compiled] {
        let mut session = Session::new();
        session.options.backend = backend;
        session.load(program).expect("loads");
        for src in [
            "useIt 10 2",
            "useIt 10 0",
            "sumTo 50",
            "partial (Just 3)",
            "partial Nothing",
            "zipWith (+) [] [1]",
            "seq (forceList (zipWith (/) [1] [0])) 5",
            "head []",
        ] {
            let predicted = session.predicted_exceptions(src).expect("analyzes");
            if let Some(denoted) = session.exception_set(src).expect("denotes") {
                assert_subset(&denoted, &predicted, src);
            }
            let out = session.eval(src).expect("evaluates");
            if let Some(exn) = &out.exception {
                assert!(
                    predicted.contains(exn),
                    "{src}: machine raised {exn} outside the predicted set {predicted}"
                );
            }
        }
    }
}

/// The optimizer's analysis-licensed rewrites fire on a program that
/// needs proofs to rewrite, and every query validates as §4.5
/// identity-or-refinement through the session pipeline.
#[test]
fn licensed_rewrites_fire_and_validate_through_the_session() {
    let mut session = Session::new();
    session
        .load(
            "deadIs x = case unsafeIsException (1 / 0) of { True -> 1; False -> x }\n\
             getOk = case unsafeGetException (2 + 3) of { OK v -> v + 1; Bad e -> 0 }\n\
             pruned = let k = 1 in case k of { 1 -> 10; 2 -> 20 }",
        )
        .expect("loads");
    let report = session
        .optimize_validated(&["deadIs 7", "getOk", "pruned", "deadIs (1/0)"])
        .expect("optimizes");
    assert!(report.validated(), "{:?}", report.validation);
    let fired: Vec<&str> = report
        .rewrites
        .iter()
        .filter(|(name, n)| name.starts_with("licensed-") && *n > 0)
        .map(|(name, _)| name.as_str())
        .collect();
    assert!(
        fired.contains(&"licensed-is-exn") && fired.contains(&"licensed-get-exn"),
        "licensed observer folds should fire: {:?}",
        report.rewrites
    );
    // The optimised program still answers identically.
    assert_eq!(session.eval("deadIs 7").expect("evals").rendered, "1");
    assert_eq!(session.eval("getOk").expect("evals").rendered, "6");
    assert_eq!(session.eval("pruned").expect("evals").rendered, "10");
}

/// `Code::verify` accepts every compiler-emitted arena: the session
/// programs used across this battery, plus every per-query extension
/// (checked by the debug-build hook on each compiled evaluation).
#[test]
fn verify_accepts_every_compiler_emitted_arena() {
    let mut session = Session::new();
    session
        .load("double x = x + x\npartial m = case m of { Just x -> x }")
        .expect("loads");
    session
        .compiled_code()
        .verify()
        .expect("the session program compiles to a well-formed arena");
    // And after optimisation rewrites the program:
    session.optimize().expect("optimizes");
    session
        .compiled_code()
        .verify()
        .expect("the optimised program compiles to a well-formed arena");
}

// ----------------------------------------------------------------------
// Random closed core terms (the `tests/compiled.rs` generator).
// ----------------------------------------------------------------------

const POOL: [&str; 4] = ["pa", "pb", "pc", "pd"];

/// Generates a closed Int-typed expression: recursion-free, so every
/// term terminates, but `raise`, division and `error` flow everywhere.
fn gen_int(depth: u32, scope: Vec<Symbol>) -> BoxedStrategy<Expr> {
    let var_leaf: BoxedStrategy<Expr> = if scope.is_empty() {
        Just(Expr::Int(7)).boxed()
    } else {
        proptest::sample::select(scope.clone())
            .prop_map(Expr::Var)
            .boxed()
    };
    let leaf = prop_oneof![
        (0i64..100).prop_map(Expr::Int),
        Just(Expr::raise(Expr::con("Overflow", []))),
        Just(Expr::raise(Expr::con("DivideByZero", []))),
        Just(Expr::error("Urk")),
        var_leaf,
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = move |scope: Vec<Symbol>| gen_int(depth - 1, scope);
    let s0 = scope.clone();
    let s1 = scope.clone();
    let s2 = scope.clone();
    let s3 = scope.clone();
    let s4 = scope.clone();
    let s5 = scope.clone();
    prop_oneof![
        3 => leaf,
        4 => (sub(s0.clone()), sub(s0.clone()), prop_oneof![
                Just(PrimOp::Add), Just(PrimOp::Sub), Just(PrimOp::Mul),
                Just(PrimOp::Div), Just(PrimOp::Mod)
             ])
            .prop_map(|(a, b, op)| Expr::prim(op, [a, b])),
        1 => (sub(s1.clone()), sub(s1.clone()))
            .prop_map(|(a, b)| Expr::prim(PrimOp::Seq, [a, b])),
        2 => (sub(s2.clone()), sub(s2.clone()), sub(s2.clone()), sub(s2.clone()))
            .prop_map(|(a, b, t, f)| {
                Expr::case(
                    Expr::prim(PrimOp::IntLt, [a, b]),
                    vec![
                        Alt::con("True", vec![], t),
                        Alt::con("False", vec![], f),
                    ],
                )
            }),
        2 => (0..POOL.len(), sub(s3.clone())).prop_flat_map(move |(i, rhs)| {
                let v = Symbol::intern(POOL[i]);
                let mut scope2 = s3.clone();
                scope2.push(v);
                sub(scope2).prop_map(move |body| Expr::let_(v, rhs.clone(), body))
             }),
        1 => (0..POOL.len(), sub(s4.clone())).prop_flat_map(move |(i, arg)| {
                let v = Symbol::intern(POOL[i]);
                let mut scope2 = s4.clone();
                scope2.push(v);
                sub(scope2).prop_map(move |body| {
                    Expr::app(Expr::lam(v, body), arg.clone())
                })
             }),
        1 => (0..POOL.len(), sub(s5.clone()), proptest::bool::ANY)
            .prop_flat_map(move |(i, payload, just)| {
                let v = Symbol::intern(POOL[i]);
                let mut scope2 = s5.clone();
                scope2.push(v);
                let s5b = s5.clone();
                (sub(scope2), sub(s5b)).prop_map(move |(just_rhs, nothing_rhs)| {
                    let scrut = if just {
                        Expr::con("Just", [payload.clone()])
                    } else {
                        Expr::con("Nothing", [])
                    };
                    Expr::case(
                        scrut,
                        vec![
                            Alt::con("Just", vec![v], just_rhs),
                            Alt::con("Nothing", vec![], nothing_rhs),
                        ],
                    )
                })
            }),
    ]
    .boxed()
}

fn machine_exception(
    e: &Rc<Expr>,
    compiled: bool,
    policy: OrderPolicy,
) -> Option<urk_syntax::Exception> {
    let mut m = Machine::new(MachineConfig {
        order: policy,
        ..MachineConfig::default()
    });
    let out = if compiled {
        // In debug builds the link/compile hooks also run `Code::verify`
        // over the base arena and every query extension.
        m.link_code(Arc::new(compile_program(&[])));
        m.eval_code_expr(e, true).expect("terminates")
    } else {
        m.eval(e.clone(), &MEnv::empty(), true).expect("terminates")
    };
    match out {
        Outcome::Caught(e) | Outcome::Uncaught(e) => Some(e),
        Outcome::Value(_) => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline soundness property, ≥256 random closed terms: the
    /// statically predicted set contains the denoted set and whatever
    /// representative either backend raises, under both deterministic
    /// order policies.
    #[test]
    fn random_terms_stay_inside_the_predicted_set(e in gen_int(4, vec![])) {
        let data = DataEnv::new();
        let e = Rc::new(e);
        let analysis = analyze_program(&CoreProgram::default(), &data);
        let predicted = analysis.predicted_set(&e, &data);

        let ev = DenotEvaluator::new(&data);
        if let Denot::Bad(denoted) = ev.eval_closed(&e) {
            if !predicted.is_all() {
                let members = denoted.members()
                    .unwrap_or_else(|| panic!("denoted ⊥ under finite prediction {predicted}"));
                for exn in &members {
                    prop_assert!(
                        predicted.contains(exn),
                        "denoted member {exn} escapes the predicted set {predicted}",
                    );
                }
            }
        }

        for policy in [OrderPolicy::LeftToRight, OrderPolicy::RightToLeft] {
            for compiled in [false, true] {
                if let Some(exn) = machine_exception(&e, compiled, policy) {
                    prop_assert!(
                        predicted.contains(&exn),
                        "{} machine raised {exn} outside the predicted set {predicted}",
                        if compiled { "compiled" } else { "tree" },
                    );
                }
            }
        }
    }
}
