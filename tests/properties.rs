//! Property-based tests over randomly generated well-typed core terms.
//!
//! The generator produces closed, `Int`-typed, recursion-free expressions
//! that freely mix arithmetic, lets, lambdas, `case`, `seq` and `raise` —
//! so every term terminates, but exceptional values flow everywhere. The
//! properties are the paper's headline guarantees:
//!
//! * the machine agrees with the denotational semantics, and its reported
//!   exception is always a member of the denoted set (§3.3/§3.5);
//! * `+` and `*` commute denotationally (§3.4);
//! * the catalogue transformations are identities or refinements (§4.5);
//! * denotations are monotone in fuel (§4.2's ascending chain);
//! * `parse ∘ pretty` is the identity up to alpha on core terms.

use std::rc::Rc;

use proptest::prelude::*;

use urk_denot::{compare_denots, denot_leq, show_denot, Denot, DenotConfig, DenotEvaluator};
use urk_machine::{MEnv, Machine, MachineConfig, OrderPolicy, Outcome};
use urk_syntax::core::{Alt, Expr, PrimOp};
use urk_syntax::{desugar_expr, parse_expr_src, pretty, DataEnv, Symbol};
use urk_transform::{
    apply_everywhere, BetaReduce, CaseOfCase, CaseOfKnownCon, CaseOfLiteral, CommutePrimArgs,
    DeadLetElim, InlineLet, Transform,
};

const POOL: [&str; 4] = ["pa", "pb", "pc", "pd"];

/// Generates a closed Int-typed expression; `scope` lists in-scope
/// Int-typed variables.
fn gen_int(depth: u32, scope: Vec<Symbol>) -> BoxedStrategy<Expr> {
    let var_leaf: BoxedStrategy<Expr> = if scope.is_empty() {
        Just(Expr::Int(7)).boxed()
    } else {
        proptest::sample::select(scope.clone())
            .prop_map(Expr::Var)
            .boxed()
    };
    let leaf = prop_oneof![
        (0i64..100).prop_map(Expr::Int),
        Just(Expr::raise(Expr::con("Overflow", []))),
        Just(Expr::raise(Expr::con("DivideByZero", []))),
        Just(Expr::error("Urk")),
        var_leaf,
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = move |scope: Vec<Symbol>| gen_int(depth - 1, scope);
    let s0 = scope.clone();
    let s1 = scope.clone();
    let s2 = scope.clone();
    let s3 = scope.clone();
    let s4 = scope.clone();
    let s5 = scope.clone();
    prop_oneof![
        3 => leaf,
        // Arithmetic.
        4 => (sub(s0.clone()), sub(s0.clone()), prop_oneof![
                Just(PrimOp::Add), Just(PrimOp::Sub), Just(PrimOp::Mul),
                Just(PrimOp::Div), Just(PrimOp::Mod)
             ])
            .prop_map(|(a, b, op)| Expr::prim(op, [a, b])),
        // seq.
        1 => (sub(s1.clone()), sub(s1.clone()))
            .prop_map(|(a, b)| Expr::prim(PrimOp::Seq, [a, b])),
        // if on a comparison.
        2 => (sub(s2.clone()), sub(s2.clone()), sub(s2.clone()), sub(s2.clone()))
            .prop_map(|(a, b, t, f)| {
                Expr::case(
                    Expr::prim(PrimOp::IntLt, [a, b]),
                    vec![
                        Alt::con("True", vec![], t),
                        Alt::con("False", vec![], f),
                    ],
                )
            }),
        // let.
        2 => (0..POOL.len(), sub(s3.clone())).prop_flat_map(move |(i, rhs)| {
                let v = Symbol::intern(POOL[i]);
                let mut scope2 = s3.clone();
                scope2.push(v);
                sub(scope2).prop_map(move |body| Expr::let_(v, rhs.clone(), body))
             }),
        // Beta redex.
        1 => (0..POOL.len(), sub(s4.clone())).prop_flat_map(move |(i, arg)| {
                let v = Symbol::intern(POOL[i]);
                let mut scope2 = s4.clone();
                scope2.push(v);
                sub(scope2).prop_map(move |body| {
                    Expr::app(Expr::lam(v, body), arg.clone())
                })
             }),
        // case on a Maybe value.
        1 => (0..POOL.len(), sub(s5.clone()), proptest::bool::ANY)
            .prop_flat_map(move |(i, payload, just)| {
                let v = Symbol::intern(POOL[i]);
                let mut scope2 = s5.clone();
                scope2.push(v);
                let s5b = s5.clone();
                (sub(scope2), sub(s5b)).prop_map(move |(just_rhs, nothing_rhs)| {
                    let scrut = if just {
                        Expr::con("Just", [payload.clone()])
                    } else {
                        Expr::con("Nothing", [])
                    };
                    Expr::case(
                        scrut,
                        vec![
                            Alt::con("Just", vec![v], just_rhs),
                            Alt::con("Nothing", vec![], nothing_rhs),
                        ],
                    )
                })
            }),
    ]
    .boxed()
}

fn closed_int_expr() -> BoxedStrategy<Expr> {
    gen_int(4, Vec::new())
}

fn machine_result(e: &Rc<Expr>, policy: OrderPolicy) -> Outcome {
    let mut m = Machine::new(MachineConfig {
        order: policy,
        ..MachineConfig::default()
    });
    m.eval(e.clone(), &MEnv::empty(), true).expect("terminates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The implementation-soundness property: for every policy, a normal
    /// machine result equals the denotation and an exceptional one is a
    /// member of the denoted set.
    #[test]
    fn machine_sound_wrt_denotational_semantics(e in closed_int_expr()) {
        let e = Rc::new(e);
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        let denot = ev.eval_closed(&e);
        for policy in [OrderPolicy::LeftToRight, OrderPolicy::RightToLeft, OrderPolicy::Seeded(11)] {
            match (&denot, machine_result(&e, policy)) {
                (Denot::Ok(urk_denot::Value::Int(n)), Outcome::Value(node)) => {
                    let mut m2 = Machine::new(MachineConfig {
                        order: policy,
                        ..MachineConfig::default()
                    });
                    let Outcome::Value(node2) = m2.eval(e.clone(), &MEnv::empty(), true).expect("terminates") else {
                        unreachable!()
                    };
                    prop_assert_eq!(m2.render(node2, 4), n.to_string());
                    let _ = node;
                }
                (Denot::Bad(set), Outcome::Caught(exn)) => {
                    prop_assert!(set.contains(&exn),
                        "machine chose {} outside {}", exn, set);
                }
                (d, o) => prop_assert!(false, "layer mismatch: {:?} vs {:?}", d, o),
            }
        }
    }

    /// §3.4: + and * commute denotationally, whatever the operands do.
    #[test]
    fn addition_and_multiplication_commute(
        a in closed_int_expr(),
        b in closed_int_expr(),
        mul in proptest::bool::ANY,
    ) {
        let op = if mul { PrimOp::Mul } else { PrimOp::Add };
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        let l = ev.eval_closed(&Rc::new(Expr::prim(op, [a.clone(), b.clone()])));
        let r = ev.eval_closed(&Rc::new(Expr::prim(op, [b, a])));
        prop_assert_eq!(compare_denots(&ev, &l, &r, 6), urk_denot::Verdict::Equal);
    }

    /// §4.5: every catalogue transformation is an identity or refinement.
    #[test]
    fn transformations_are_valid_rewrites(e in closed_int_expr()) {
        let transforms: Vec<Box<dyn Transform>> = vec![
            Box::new(BetaReduce),
            Box::new(InlineLet),
            Box::new(DeadLetElim),
            Box::new(CaseOfKnownCon),
            Box::new(CaseOfLiteral),
            Box::new(CommutePrimArgs),
            Box::new(CaseOfCase),
        ];
        let data = DataEnv::new();
        for t in &transforms {
            let (out, n) = apply_everywhere(t.as_ref(), &e);
            if n == 0 { continue; }
            let ev = DenotEvaluator::new(&data);
            let dl = ev.eval_closed(&Rc::new(e.clone()));
            let dr = ev.eval_closed(&Rc::new(out));
            let v = compare_denots(&ev, &dl, &dr, 6);
            prop_assert!(v.is_valid_rewrite(),
                "{} produced {:?} on {}", t.name(), v, pretty(&e));
        }
    }

    /// §4.2: denotations form an ascending chain in fuel.
    #[test]
    fn fuel_monotonicity(e in closed_int_expr()) {
        let e = Rc::new(e);
        let data = DataEnv::new();
        let mut prev: Option<Denot> = None;
        for fuel in [4u64, 16, 64, 1024, 1_000_000] {
            let ev = DenotEvaluator::with_config(&data, DenotConfig {
                fuel, ..DenotConfig::default()
            });
            let d = ev.eval_closed(&e);
            if let Some(p) = &prev {
                prop_assert!(denot_leq(&ev, p, &d, 6),
                    "fuel {} downgraded {} to {}", fuel,
                    show_denot(&ev, p, 6), show_denot(&ev, &d, 6));
            }
            prev = Some(d);
        }
    }

    /// The pretty-printer emits valid surface syntax that desugars back to
    /// the same core term (up to alpha).
    #[test]
    fn parse_pretty_roundtrip(e in closed_int_expr()) {
        let printed = pretty(&e);
        let data = DataEnv::new();
        let reparsed = parse_expr_src(&printed)
            .unwrap_or_else(|err| panic!("pretty output failed to parse: {err}\n{printed}"));
        let core = desugar_expr(&reparsed, &data)
            .unwrap_or_else(|err| panic!("pretty output failed to desugar: {err}\n{printed}"));
        prop_assert!(core.alpha_eq(&e),
            "roundtrip changed the term:\n  original: {}\n  reparsed: {}",
            pretty(&e), pretty(&core));
    }

    /// The whole optimisation pipeline is a valid rewrite on random terms.
    #[test]
    fn optimizer_pipeline_is_a_valid_rewrite(e in closed_int_expr()) {
        use urk_syntax::core::CoreProgram;
        let main = Symbol::intern("main$prop");
        let prog = CoreProgram {
            binds: vec![(main, Rc::new(e))],
            sigs: Vec::new(),
        };
        let opt = urk_transform::Optimizer::new();
        let (out, _) = opt.optimize(&prog);
        let data = DataEnv::new();
        let ev = DenotEvaluator::new(&data);
        let before = {
            let env = ev.bind_recursive(&prog.binds, &urk_denot::Env::empty());
            ev.eval(&Rc::new(Expr::Var(main)), &env)
        };
        let after = {
            let env = ev.bind_recursive(&out.binds, &urk_denot::Env::empty());
            ev.eval(&Rc::new(Expr::Var(main)), &env)
        };
        let v = compare_denots(&ev, &before, &after, 6);
        prop_assert!(v.is_valid_rewrite(), "pipeline produced {:?}", v);
    }

    /// Denotational evaluation is deterministic.
    #[test]
    fn denotation_is_deterministic(e in closed_int_expr()) {
        let e = Rc::new(e);
        let data = DataEnv::new();
        let ev1 = DenotEvaluator::new(&data);
        let ev2 = DenotEvaluator::new(&data);
        let a = show_denot(&ev1, &ev1.eval_closed(&e), 8);
        let b = show_denot(&ev2, &ev2.eval_closed(&e), 8);
        prop_assert_eq!(a, b);
    }
}
