//! The generational-heap battery: minor/major collection interleavings
//! raced against evaluation and §5.1 asynchronous delivery, on both
//! backends, with the heap audited after every episode.
//!
//! What is being proven:
//!
//! * **evacuation preserves semantics** — a copying minor collection may
//!   fire at any machine step (forced by a chaos plan, or organically by
//!   nursery pressure) and the outcome still refines the denotational
//!   oracle, on the tree walker and the compiled executor alike;
//! * **§5.1 survives evacuation** — an interrupt delivered at any step,
//!   immediately after a forced collection, still restores every
//!   in-flight thunk resumably: the post-episode audit finds no stranded
//!   black holes, no stale forwarding pointers, no remembered-set gaps,
//!   and re-evaluation on the same machine agrees with the oracle;
//! * **the audit checks** — a `sabotage_forwarding` plan plants a stale
//!   `Forwarded` cell after each forced collection, and the generational
//!   audit must fail (while execution itself stays sound: the planted
//!   cell is unreachable).

use std::rc::Rc;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use urk_io::{chaos_run_with_plan, chaos_run_with_plan_compiled, ChaosReport};
use urk_machine::{compile_program, Code, FaultPlan, MEnv, Machine, MachineConfig, Outcome};
use urk_syntax::core::Expr;
use urk_syntax::{
    desugar_expr, desugar_program, parse_expr_src, parse_program, DataEnv, Exception, Symbol,
};

/// A small program whose queries keep update frames on the stack for whole
/// inner loops (so trims and collections race real in-flight thunks).
const PROGRAM: &str = "\
gsum n = if n == 0 then 0 else n + gsum (n - 1)
gmk n = if n == 0 then [] else n : gmk (n - 1)
glen xs = case xs of { [] -> 0; y : ys -> 1 + glen ys }
gdiv a b = a / b
";

/// The query corpus: a pure value with a buried shared thunk, list churn
/// (lots of short-lived nursery cells), and an order-dependent raise.
const QUERIES: &[(&str, &str)] = &[
    ("buried-thunk", "let s = gsum 150 in s + 1"),
    ("list-churn", "glen (gmk 120) + gsum 40"),
    ("raise-at-depth", "gsum 60 + gdiv 1 0"),
];

struct Ctx {
    data: DataEnv,
    binds: Vec<(Symbol, Rc<Expr>)>,
    code: Arc<Code>,
}

fn ctx() -> Ctx {
    let surface = parse_program(PROGRAM).expect("program parses");
    let mut data = DataEnv::new();
    let prog = desugar_program(&surface, &mut data).expect("program desugars");
    let code = Arc::new(compile_program(&prog.binds));
    Ctx {
        data,
        binds: prog.binds,
        code,
    }
}

fn query(ctx: &Ctx, src: &str) -> Rc<Expr> {
    Rc::new(desugar_expr(&parse_expr_src(src).expect("parses"), &ctx.data).expect("desugars"))
}

/// A config that keeps both collectors busy: a nursery small enough that
/// organic minor collections fire inside every query, and a major
/// threshold the list-churn query crosses.
fn pressured() -> MachineConfig {
    MachineConfig {
        nursery_size: 128,
        gc_threshold: 1_500,
        ..MachineConfig::default()
    }
}

fn run_both(ctx: &Ctx, q: &Rc<Expr>, plan: &FaultPlan) -> [(&'static str, ChaosReport); 2] {
    let tree = chaos_run_with_plan(
        &ctx.data,
        &ctx.binds,
        q,
        &pressured(),
        400_000,
        plan.clone(),
    );
    let compiled = chaos_run_with_plan_compiled(
        &ctx.data,
        &ctx.binds,
        &ctx.code,
        q,
        &pressured(),
        400_000,
        plan.clone(),
    );
    [("tree", tree), ("compiled", compiled)]
}

#[test]
fn seeded_collection_interleavings_hold_the_invariants_on_both_backends() {
    // Random interleavings of forced minor and major collections (with an
    // occasional interrupt in the middle), derived from a seed: every
    // schedule must leave a clean heap and an oracle-consistent machine.
    let ctx = ctx();
    let horizon = 8_000u64;
    for (name, src) in QUERIES {
        let q = query(&ctx, src);
        for seed in 0..12u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut force_minor_at: Vec<u64> = (0..rng.gen_range(1..6u32))
                .map(|_| rng.gen_range(1..horizon))
                .collect();
            force_minor_at.sort_unstable();
            let mut force_gc_at: Vec<u64> = (0..rng.gen_range(0..3u32))
                .map(|_| rng.gen_range(1..horizon))
                .collect();
            force_gc_at.sort_unstable();
            let injections = if rng.gen_bool(0.5) {
                vec![(rng.gen_range(1..horizon), Exception::Interrupt)]
            } else {
                vec![]
            };
            let plan = FaultPlan {
                seed,
                horizon,
                injections,
                force_gc_at,
                force_minor_at,
                ..FaultPlan::default()
            };
            for (backend, r) in run_both(&ctx, &q, &plan) {
                assert!(
                    r.passed(),
                    "{name} seed {seed} on {backend}: sound={} heap={} reeval={} \
                     outcome={} oracle={} plan={:?}",
                    r.sound,
                    r.heap_consistent,
                    r.reeval_ok,
                    r.outcome,
                    r.oracle,
                    r.plan
                );
            }
        }
    }
}

#[test]
fn interrupt_delivery_sweep_races_evacuation_at_every_step() {
    // The PR 7 delivery-sweep pattern, aimed at the copying collector: at
    // *every* step index of the episode, force a minor collection and
    // deliver an interrupt at that same step — the §5.1 trim then runs
    // over a freshly evacuated stack and must restore every in-flight
    // thunk through the new tenured copies.
    let ctx = ctx();
    let q = query(&ctx, "let s = gsum 40 in s + glen (gmk 25)");

    // Calibrate the sweep to the episode's actual length.
    let mut base = Machine::new(pressured());
    let menv = base.bind_recursive(&ctx.binds, &MEnv::empty());
    let out = base.eval(q.clone(), &menv, true).expect("baseline runs");
    assert!(matches!(out, Outcome::Value(_)), "{out:?}");
    let steps = base.stats().steps.min(512);
    assert!(steps > 50, "sweep needs a real episode, got {steps} steps");

    for at in 1..=steps {
        let plan = FaultPlan {
            horizon: steps + 64,
            injections: vec![(at, Exception::Interrupt)],
            force_minor_at: vec![at],
            ..FaultPlan::default()
        };
        for (backend, r) in run_both(&ctx, &q, &plan) {
            assert!(
                r.passed(),
                "step {at} on {backend}: sound={} heap={} reeval={} outcome={} oracle={}",
                r.sound,
                r.heap_consistent,
                r.reeval_ok,
                r.outcome,
                r.oracle
            );
        }
    }
}

#[test]
fn organic_nursery_pressure_promotes_and_audits_clean() {
    // No chaos at all: a tiny nursery makes the run loop itself schedule
    // minor collections, and the gauges must show the generational heap
    // actually working — minors fired, survivors promoted, and the
    // between-episode audit clean on both backends.
    let ctx = ctx();
    let q = query(&ctx, "glen (gmk 400) + gsum 200");
    for compiled in [false, true] {
        let mut m = Machine::new(pressured());
        let out = if compiled {
            m.link_code(Arc::clone(&ctx.code));
            m.eval_code_expr(&q, true).expect("runs")
        } else {
            let menv = m.bind_recursive(&ctx.binds, &MEnv::empty());
            m.eval(q.clone(), &menv, true).expect("runs")
        };
        let Outcome::Value(n) = out else {
            panic!("backend compiled={compiled}: {out:?}")
        };
        assert_eq!(m.render(n, 16), "20500", "compiled={compiled}");
        let stats = m.stats();
        assert!(
            stats.minor_gcs >= 1,
            "compiled={compiled}: nursery pressure fired no minor collection: {stats:?}"
        );
        assert!(
            stats.nodes_promoted > 0,
            "compiled={compiled}: no survivors promoted: {stats:?}"
        );
        assert_eq!(
            stats.gc_runs,
            stats.minor_gcs + stats.major_gcs,
            "compiled={compiled}: gc_runs must tally both generations"
        );
        let audit = m.audit_heap();
        assert!(
            audit.is_consistent(),
            "compiled={compiled}: post-episode audit failed: {audit:?}"
        );
    }
}

fn sabotage_plan() -> FaultPlan {
    FaultPlan {
        horizon: 8_000,
        force_minor_at: vec![120],
        sabotage_forwarding: true,
        ..FaultPlan::default()
    }
}

#[test]
fn sabotaged_forwarding_fails_the_audit_on_both_backends() {
    // The checker checks: a deliberately stranded forwarding pointer must
    // be flagged by the generational audit. Execution stays sound (the
    // planted cell is unreachable) — only the heap-consistency verdict
    // may fall.
    let ctx = ctx();
    let q = query(&ctx, "let s = gsum 150 in s + 1");
    for (backend, r) in run_both(&ctx, &q, &sabotage_plan()) {
        assert!(
            !r.heap_consistent,
            "{backend}: planted stale forwarding must fail the audit: {r:?}"
        );
        assert!(
            r.sound,
            "{backend}: the planted cell is unreachable, execution must stay sound: {r:?}"
        );
    }
}

#[test]
fn the_same_plan_without_sabotage_passes() {
    // The control: identical fault schedule, honest evacuation.
    let ctx = ctx();
    let q = query(&ctx, "let s = gsum 150 in s + 1");
    let plan = FaultPlan {
        sabotage_forwarding: false,
        ..sabotage_plan()
    };
    for (backend, r) in run_both(&ctx, &q, &plan) {
        assert!(r.passed(), "{backend}: {r:?}");
    }
}
