//! Regression battery over the checked-in fuzz corpus.
//!
//! Every `corpus/*.urk` case was admitted for coverage novelty by a past
//! fuzz campaign — each one is a shape (raises buried under laziness,
//! order-dependent exception sets, partial matches, deep recursion) that
//! once exercised a distinct machine path. This suite promotes the whole
//! corpus to a standing differential battery: each case must evaluate
//! identically on the tree and compiled backends under both deterministic
//! order policies, and the outcome must refine the denotational semantics
//! (§3.5: a raised exception is a member of the denoted set; a value is
//! *the* denoted value).
//!
//! The corpus is auto-discovered, so newly admitted cases join the
//! battery without edits here.

use std::fs;
use std::path::PathBuf;

use urk::{Backend, OrderPolicy, Session};

fn corpus_cases() -> Vec<(PathBuf, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .expect("corpus dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "urk"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let src = fs::read_to_string(&p).expect("read case");
            (p, src)
        })
        .collect()
}

/// A loaded session pair (tree, compiled) with the given order policy.
fn backend_pair(src: &str, order: OrderPolicy) -> (Session, Session) {
    let mut tree = Session::new();
    tree.options.machine.order = order;
    tree.load(src).expect("corpus case loads on tree session");
    let mut compiled = Session::new();
    compiled.options.machine.order = order;
    compiled.options.backend = Backend::Compiled;
    compiled
        .load(src)
        .expect("corpus case loads on compiled session");
    (tree, compiled)
}

/// Machine and oracle spell buried exceptional fields differently
/// (`raise {...}` vs `Bad {...}`); compare spines only in that case, full
/// renderings otherwise — the same normalization the chaos driver and the
/// fuzz oracle use.
fn renders_agree(machine: &str, denot: &str) -> bool {
    if denot.contains("Bad {") {
        machine.split_whitespace().next() == denot.split_whitespace().next()
    } else {
        machine == denot.replace("(Bad {", "(raise {")
    }
}

#[test]
fn every_corpus_case_agrees_across_backends_and_orders() {
    let cases = corpus_cases();
    assert!(
        cases.len() >= 30,
        "expected the checked-in corpus, found {} cases",
        cases.len()
    );
    for (path, src) in &cases {
        let name = path.file_name().unwrap().to_string_lossy();
        for order in [OrderPolicy::LeftToRight, OrderPolicy::RightToLeft] {
            let (tree, compiled) = backend_pair(src, order);
            let a = tree
                .eval("counterexample")
                .unwrap_or_else(|e| panic!("{name} ({order:?}): tree: {e}"));
            let b = compiled
                .eval("counterexample")
                .unwrap_or_else(|e| panic!("{name} ({order:?}): compiled: {e}"));
            assert_eq!(
                a.rendered, b.rendered,
                "{name} ({order:?}): rendered outcome diverged"
            );
            assert_eq!(
                a.exception, b.exception,
                "{name} ({order:?}): representative exception diverged"
            );

            // Refinement against the denotational oracle.
            match &a.exception {
                Some(exn) => {
                    let set = tree
                        .exception_set("counterexample")
                        .unwrap_or_else(|e| panic!("{name}: denotation: {e}"))
                        .unwrap_or_else(|| {
                            panic!(
                                "{name} ({order:?}): machine raised {exn} but the denotation is Ok"
                            )
                        });
                    assert!(
                        set.contains(exn),
                        "{name} ({order:?}): {exn} outside the denoted set {set}"
                    );
                }
                None => {
                    let oracle = tree
                        .denot_show("counterexample", 32)
                        .unwrap_or_else(|e| panic!("{name}: denotation: {e}"));
                    assert!(
                        renders_agree(&a.rendered, &oracle),
                        "{name} ({order:?}): machine value {} disagrees with oracle {oracle}",
                        a.rendered
                    );
                }
            }
        }
    }
}

#[test]
fn corpus_outcomes_are_stable_across_repeated_evaluation() {
    // Same session, evaluated twice: generational collections between
    // episodes must never change an answer (thunks promoted by the first
    // evaluation are reused by the second).
    for (path, src) in &corpus_cases() {
        let name = path.file_name().unwrap().to_string_lossy();
        let (tree, compiled) = backend_pair(src, OrderPolicy::LeftToRight);
        for s in [&tree, &compiled] {
            let first = s
                .eval("counterexample")
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let second = s
                .eval("counterexample")
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(first.rendered, second.rendered, "{name}: unstable value");
            assert_eq!(
                first.exception, second.exception,
                "{name}: unstable exception"
            );
        }
    }
}
