//! Umbrella crate for the reproduction suite of *"A Semantics for Imprecise
//! Exceptions"* (Peyton Jones, Reid, Hoare, Marlow, Henderson — PLDI 1999).
//!
//! The real library lives in the workspace crates; this root package exists
//! to host the repository-level integration tests (`tests/`) and runnable
//! examples (`examples/`). See [`urk`] for the public API.

pub use urk;
