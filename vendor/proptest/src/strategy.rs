//! The [`Strategy`] trait and combinators: how test inputs are generated.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of test values. Unlike upstream proptest there is no value
/// tree or shrinking; a strategy simply produces a value from the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing function.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A weighted union of strategies (built by `prop_oneof!`).
pub struct Union<T> {
    entries: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(entries: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!entries.is_empty(), "prop_oneof! needs at least one entry");
        let total = entries.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { entries, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as usize) as u64;
        for (w, s) in &self.entries {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String strategies from a small regex-like pattern language: literal
/// characters, `[a-cxy]` character classes, and `{n}` / `{m,n}` repetition
/// suffixes. `"[a-c]{1,3}"` yields 1–3 chars drawn from {a, b, c}.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug)]
enum Atom {
    Lit(char),
    Class(Vec<char>),
}

fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let mut out = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = if c == '[' {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            while let Some(d) = chars.next() {
                if d == ']' {
                    break;
                }
                if d == '-' {
                    // Range: previous char up to the next one.
                    if let (Some(lo), Some(&hi)) = (prev, chars.peek()) {
                        chars.next();
                        let mut x = lo;
                        while x < hi {
                            x = char::from_u32(x as u32 + 1).expect("char range");
                            set.push(x);
                        }
                        prev = None;
                        continue;
                    }
                }
                set.push(d);
                prev = Some(d);
            }
            assert!(!set.is_empty(), "empty character class in pattern");
            Atom::Class(set)
        } else {
            Atom::Lit(c)
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repetition lower bound"),
                    n.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        out.push((atom, min, max));
    }
    out
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, min, max) in parse_pattern(pattern) {
        let n = min
            + if max > min {
                rng.below(max - min + 1)
            } else {
                0
            };
        for _ in 0..n {
            match &atom {
                Atom::Lit(c) => out.push(*c),
                Atom::Class(set) => out.push(set[rng.below(set.len())]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(0xfeed, 1)
    }

    #[test]
    fn just_yields_the_value() {
        assert_eq!(Just(42).generate(&mut rng()), 42);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let x = (3i64..10).generate(&mut r);
            assert!((3..10).contains(&x));
            let y = (0usize..4).generate(&mut r);
            assert!(y < 4);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (0i64..5).prop_map(|n| n * 2).prop_flat_map(|n| Just(n + 1));
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 1 && (1..=9).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut r = rng();
        let s = Union::new(vec![(1, Just(0).boxed()), (9, Just(1).boxed())]);
        let ones: usize = (0..1000).map(|_| s.generate(&mut r) as usize).sum();
        assert!(ones > 800, "expected ~900 ones, got {ones}");
    }

    #[test]
    fn char_class_patterns_generate_within_the_class() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-c]{1,3}".generate(&mut r);
            assert!((1..=3).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s}");
        }
    }

    #[test]
    fn literal_patterns_pass_through() {
        assert_eq!("abc".generate(&mut rng()), "abc");
    }
}
