//! The deterministic case runner behind the `proptest!` macro.

use std::any::Any;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// How many cases to generate and run per property.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// A failed test case (not a panic of the whole test binary — the runner
/// attaches the generated inputs before panicking).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError(msg)
    }

    /// Converts a caught panic payload into a case failure.
    pub fn from_panic(payload: Box<dyn Any + Send>) -> TestCaseError {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "test body panicked".to_string()
        };
        TestCaseError(format!("panic: {msg}"))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a over a test's full path: the per-test base seed.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A small deterministic RNG (splitmix64 stream seeded per case).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for case `case` of the test with base seed `seed`.
    pub fn new(seed: u64, case: u64) -> TestRng {
        TestRng {
            state: seed ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// Panics with a readable report of the failing case and its inputs.
pub fn report_failure(
    test: &str,
    case: u32,
    error: &TestCaseError,
    inputs: &[(&'static str, String)],
) -> ! {
    let mut msg = format!("property {test} failed at case #{case}: {error}\n");
    for (name, value) in inputs {
        msg.push_str(&format!("  {name} = {value}\n"));
    }
    msg.push_str("(deterministic runner: re-running the test reproduces this case)");
    panic!("{msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::new(fnv1a("x"), 3);
        let mut b = TestRng::new(fnv1a("x"), 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::new(fnv1a("x"), 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::new(1, 1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn panic_payloads_become_case_errors() {
        let e = TestCaseError::from_panic(Box::new("boom"));
        assert!(e.0.contains("boom"));
        let e = TestCaseError::from_panic(Box::new(String::from("bang")));
        assert!(e.0.contains("bang"));
    }
}
