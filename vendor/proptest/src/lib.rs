//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of proptest's API its property tests use:
//! the [`strategy::Strategy`] combinators (`prop_map`, `prop_flat_map`,
//! `boxed`), `Just`, ranges and tuples as strategies, `prop_oneof!` with
//! optional weights, [`sample::select`], [`bool::ANY`],
//! [`collection::btree_set`], simple `"[a-c]{1,3}"`-style string
//! strategies, and the [`proptest!`] / [`prop_assert!`] macro family.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: every test function derives its case seeds from a
//!   stable hash of its own name, so runs are reproducible and CI-stable.
//!   On failure the full `Debug` rendering of every generated input is
//!   printed (upstream would shrink first; we print the unshrunk case).
//! * **No shrinking / no persistence**: `*.proptest-regressions` files are
//!   kept for provenance, and the failure cases they describe are pinned
//!   as explicit unit tests instead of being replayed from seeds.

pub mod strategy;
pub mod test_runner;

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy selecting one element of a fixed, non-empty vector.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Selects a uniformly random element of `options`.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy for an unbiased `bool`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for `BTreeSet`s with sizes drawn from a range.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates a `BTreeSet` by drawing `size` elements (duplicates
    /// collapse, as in upstream proptest).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = self.size.end - self.size.start;
            let n = self.size.start + if span == 0 { 0 } else { rng.below(span) };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with its inputs printed) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Builds a weighted union of strategies. Entries are either `strategy`
/// (weight 1) or `weight => strategy` with a literal weight.
#[macro_export]
macro_rules! prop_oneof {
    (@munch ($vec:ident)) => {};
    (@munch ($vec:ident) $w:literal => $s:expr) => {
        $vec.push(($w as u32, $crate::strategy::Strategy::boxed($s)));
    };
    (@munch ($vec:ident) $w:literal => $s:expr, $($rest:tt)*) => {
        $crate::prop_oneof!(@munch ($vec) $w => $s);
        $crate::prop_oneof!(@munch ($vec) $($rest)*);
    };
    (@munch ($vec:ident) $s:expr) => {
        $vec.push((1u32, $crate::strategy::Strategy::boxed($s)));
    };
    (@munch ($vec:ident) $s:expr, $($rest:tt)*) => {
        $crate::prop_oneof!(@munch ($vec) $s);
        $crate::prop_oneof!(@munch ($vec) $($rest)*);
    };
    ($($entries:tt)+) => {{
        let mut entries = ::std::vec::Vec::new();
        $crate::prop_oneof!(@munch (entries) $($entries)+);
        $crate::strategy::Union::new(entries)
    }};
}

/// Defines property tests. Each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)) => {};
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let __config: $crate::test_runner::Config = $cfg;
            // Build each strategy once; names shadow to the generated
            // values inside the loop.
            $(let $arg = $crate::strategy::Strategy::boxed($strat);)+
            let __seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::new(__seed, __case as u64);
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                let __inputs: ::std::vec::Vec<(&'static str, ::std::string::String)> =
                    vec![$((stringify!($arg), format!("{:#?}", &$arg))),+];
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    )) {
                        ::std::result::Result::Ok(r) => r,
                        ::std::result::Result::Err(payload) => ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::from_panic(payload),
                        ),
                    };
                if let ::std::result::Result::Err(e) = __outcome {
                    $crate::test_runner::report_failure(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                        &e,
                        &__inputs,
                    );
                }
            }
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::Config::default()) $($rest)*);
    };
}
