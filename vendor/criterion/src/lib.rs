//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of Criterion's API its benches use:
//! benchmark groups with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each bench warms up for the configured warm-up
//! time, then runs `sample_size` samples, each sized so one sample takes
//! roughly `measurement_time / sample_size`. The harness reports the
//! median, min, and max per-iteration time on stdout in a stable
//! `bench: <group>/<name> ... median <t>` format that
//! `scripts`/`EXPERIMENTS.md` can scrape. When invoked with `--test`
//! (as `cargo test` does for bench targets), every bench body runs
//! exactly once so the suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a bench name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The per-bench timing driver handed to bench closures.
pub struct Bencher {
    /// Number of iterations to run per measured sample.
    iters_per_sample: u64,
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
    /// Collected per-iteration times (nanoseconds), one per sample.
    results: Vec<f64>,
}

impl Bencher {
    /// Runs the routine, timing it as configured.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: also discovers how many iterations fit in a sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let sample_budget = self.measurement.as_secs_f64() / self.samples as f64;
        self.iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.results
                .push(elapsed * 1e9 / self.iters_per_sample as f64);
        }
    }
}

fn fmt_time(nanos: f64) -> String {
    if nanos < 1e3 {
        format!("{nanos:.1} ns")
    } else if nanos < 1e6 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1e9 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into_id(), |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.into_id(), |b| f(b, input));
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            test_mode: self.criterion.test_mode,
            results: Vec::new(),
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        if self.criterion.test_mode {
            println!("bench: {full} ... ok (test mode, 1 iteration)");
            return;
        }
        let mut r = b.results;
        r.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = r[r.len() / 2];
        let (min, max) = (r[0], r[r.len() - 1]);
        println!(
            "bench: {full} ... median {} (min {}, max {}, {} samples x {} iters)",
            fmt_time(median),
            fmt_time(min),
            fmt_time(max),
            r.len(),
            b.iters_per_sample,
        );
    }

    pub fn finish(&mut self) {}
}

/// The harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo test` runs harness-less bench binaries with `--test`;
        // `cargo bench` passes `--bench`. Only the former changes behaviour.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.benchmark_group(id.clone()).bench_function("", f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn group_runs_quickly_in_test_mode() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0u32;
        let mut group = c.benchmark_group("g");
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        assert_eq!(ran, 1);
    }
}
