//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *small subset* of `rand`'s API it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_bool` / `gen_range` / `gen`. The generator is a
//! deterministic `splitmix64`-seeded `xoshiro256**`, which matches the
//! statistical quality class of the real `SmallRng` (also a xoshiro
//! variant); streams differ from upstream `rand`, which no caller relies
//! on (seeds only select reproducible pseudo-random *policies*).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift uniform mapping; bias is < 2^-64 per draw,
                // far below what any policy choice here can observe.
                let r = ((rng() as u128 * span) >> 64) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng() as u128 * span) >> 64) as i128;
                (start as i128 + r) as $t
            }
        }
    )+};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values with an unconstrained uniform distribution (for [`Rng::gen`]).
pub trait Standard: Sized {
    fn standard(word: u64) -> Self;
}

impl Standard for bool {
    fn standard(word: u64) -> bool {
        word & 1 == 1
    }
}

impl Standard for u64 {
    fn standard(word: u64) -> u64 {
        word
    }
}

impl Standard for u32 {
    fn standard(word: u64) -> u32 {
        (word >> 32) as u32
    }
}

impl Standard for f64 {
    fn standard(word: u64) -> f64 {
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level convenience methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::standard(self.next_u64()) < p
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(&mut || self.next_u64())
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(0..13);
            assert!(x < 13);
            let y: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
